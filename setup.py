"""Setuptools entry point.

The canonical project metadata lives in ``pyproject.toml``; this shim exists
so that editable installs keep working on minimal environments that lack the
``wheel`` package (offline machines cannot build PEP 660 editable wheels).
"""

from setuptools import setup

setup()
