"""Result and configuration types shared by the analysis procedures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.instance import Instance
from repro.core.runs import Run
from repro.exceptions import AnalysisError


@dataclass(frozen=True)
class ExplorationLimits:
    """Resource bounds for the explicit-state explorers.

    The general completability / semi-soundness problems are undecidable
    (Theorem 4.1), so any terminating procedure for the unrestricted fragments
    must be bounded.  These limits control the bounded explorer; when a limit
    is hit the affected analysis reports ``decided=False`` instead of
    guessing.

    Attributes:
        max_states: maximum number of distinct states (isomorphism classes of
            instances) to visit.
        max_instance_nodes: successors larger than this number of nodes are
            not expanded (``None`` = unlimited).
        max_sibling_copies: additions creating more than this many same-label
            siblings under a single node are not explored (``None`` =
            unlimited).  For positive access rules a bound derived from the
            completion formula is sufficient for completeness (Theorem 5.2's
            witness argument); the dispatchers set it accordingly.
    """

    max_states: int = 20_000
    max_instance_nodes: Optional[int] = 60
    max_sibling_copies: Optional[int] = None

    def allows_instance_size(self, size: int) -> bool:
        """Whether an instance with *size* nodes may still be expanded."""
        return self.max_instance_nodes is None or size <= self.max_instance_nodes


@dataclass
class AnalysisResult:
    """Outcome of a completability or semi-soundness analysis.

    Attributes:
        problem: ``"completability"`` or ``"semisoundness"``.
        decided: whether the procedure reached a definite answer.  Bounded
            procedures report ``False`` when they hit their limits.
        answer: the decision (``None`` when undecided).
        procedure: name of the procedure that produced the result (matches
            :func:`repro.core.fragments.recommended_procedures`).
        witness_run: for a positive completability answer, a complete run; for
            a negative semi-soundness answer, a run leading to an
            incompletable instance.
        counterexample: for a negative semi-soundness answer, the reachable
            instance from which the form cannot be completed.
        stats: free-form statistics (states explored, saturation steps, …).
    """

    problem: str
    decided: bool
    answer: Optional[bool]
    procedure: str
    witness_run: Optional[Run] = None
    counterexample: Optional[Instance] = None
    stats: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        """Truthiness is the answer; raises when the analysis was undecided."""
        if not self.decided or self.answer is None:
            raise AnalysisError(
                f"the {self.problem} analysis did not reach a decision; inspect "
                "`.decided` before using the result as a boolean"
            )
        return self.answer

    def require_decided(self) -> bool:
        """Return the answer, raising :class:`AnalysisError` if undecided."""
        return bool(self)

    def describe(self) -> str:
        """One-line human-readable summary."""
        if not self.decided:
            status = "undecided (limits reached)"
        else:
            status = "yes" if self.answer else "no"
        return f"{self.problem} [{self.procedure}]: {status}"
