"""Invariant checking via completability queries (Section 3.5).

The paper notes that completability "is not only interesting as a correctness
requirement but also important for deciding invariants": whether some state
satisfying a formula ``ψ`` is ever reachable is exactly the completability of
the guarded form with completion formula ``ψ``.  For example, checking
completability for ``d[a ∧ r]`` asks whether a decision field can ever contain
both an approval and a rejection.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.completability import decide_completability, delegate_to_request
from repro.analysis.results import AnalysisResult, ExplorationLimits
from repro.core.formulas.ast import Formula, Not
from repro.core.formulas.parser import parse_formula
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.engine import StateStore
from repro.exceptions import RequestError


def can_reach(
    guarded_form: Optional[GuardedForm] = None,
    condition: "Formula | str | None" = None,
    start: Optional[Instance] = None,
    limits: Optional[ExplorationLimits] = None,
    frontier: Optional[str] = None,
    store: Optional[StateStore] = None,
    resume: bool = False,
    stop_on_complete: bool = False,
    workers: int = 1,
    resident_budget: Optional[int] = None,
    step_limit: Optional[int] = None,
    request=None,
) -> AnalysisResult:
    """Whether some reachable instance satisfies *condition* (at the root).

    Implemented as completability of the guarded form with *condition* as its
    completion formula; the result's witness run leads to a satisfying
    instance when the answer is positive.  The probe form has its own
    completion formula, so it gets its own exploration engine; *frontier*
    selects the engine's search order (``"guided"`` chases *condition*).

    A persistent *store* is bound to the *probe* form (the completion formula
    is part of a store's identity), so reuse a store per queried condition;
    *resume* picks up an interrupted probe exploration, and
    *stop_on_complete* opts into returning on the first satisfying state
    instead of exhausting the budget.

    Alternatively pass a single ``request`` of kind ``"reach"`` (its
    ``formula`` field carries *condition*); the call then delegates to
    :func:`repro.service.dispatch.run_analysis`.
    """
    if request is not None:
        if condition is not None:
            raise RequestError(
                "can_reach takes either a condition (with keyword arguments) "
                "or request=, not both"
            )
        return delegate_to_request("can_reach", "reach", request, guarded_form)
    if guarded_form is None or condition is None:
        raise RequestError("can_reach needs a guarded form and condition, or request=")
    probe = guarded_form.with_completion(
        parse_formula(condition), name=f"{guarded_form.name} [reach probe]"
    )
    result = decide_completability(
        probe,
        start=start,
        limits=limits,
        frontier=frontier,
        store=store,
        resume=resume,
        stop_on_complete=stop_on_complete,
        workers=workers,
        resident_budget=resident_budget,
        step_limit=step_limit,
    )
    result.stats["query"] = "can_reach"
    return result


def always_holds(
    guarded_form: Optional[GuardedForm] = None,
    invariant: "Formula | str | None" = None,
    start: Optional[Instance] = None,
    limits: Optional[ExplorationLimits] = None,
    frontier: Optional[str] = None,
    store: Optional[StateStore] = None,
    resume: bool = False,
    stop_on_complete: bool = False,
    workers: int = 1,
    resident_budget: Optional[int] = None,
    step_limit: Optional[int] = None,
    request=None,
) -> AnalysisResult:
    """Whether *invariant* holds at the root of **every** reachable instance.

    This is the complement of :func:`can_reach` applied to the negated
    invariant.  The returned result keeps the reachability witness (a run to
    a violating instance) as its ``witness_run`` when the invariant fails.
    *stop_on_complete* lets the underlying reachability probe return on the
    first violating state (the verdict is unchanged; only the exploration
    effort and the reported stats shrink).

    Alternatively pass a single ``request`` of kind ``"invariant"`` (its
    ``formula`` field carries *invariant*); the call then delegates to
    :func:`repro.service.dispatch.run_analysis`.
    """
    if request is not None:
        if invariant is not None:
            raise RequestError(
                "always_holds takes either an invariant (with keyword "
                "arguments) or request=, not both"
            )
        return delegate_to_request("always_holds", "invariant", request, guarded_form)
    if guarded_form is None or invariant is None:
        raise RequestError(
            "always_holds needs a guarded form and invariant, or request="
        )
    violation = can_reach(
        guarded_form,
        Not(parse_formula(invariant)),
        start,
        limits,
        frontier=frontier,
        store=store,
        resume=resume,
        stop_on_complete=stop_on_complete,
        workers=workers,
        resident_budget=resident_budget,
        step_limit=step_limit,
    )
    answer: Optional[bool]
    if violation.decided:
        answer = not violation.answer
    else:
        answer = None
    return AnalysisResult(
        problem="invariant",
        decided=violation.decided,
        answer=answer,
        procedure=violation.procedure,
        witness_run=violation.witness_run,
        stats={"query": "always_holds", **violation.stats},
    )
