"""State-space exploration: graph types and compatibility shims.

The actual exploration lives in :mod:`repro.engine` — a unified
:class:`~repro.engine.ExplorationEngine` with hash-consed shape interning
(state keys are O(1)-comparable ints, successor shapes are derived
incrementally from the parent shape plus the applied update), memoized guard
evaluation shared across every exploration on the same engine, and pluggable
frontier strategies (BFS / DFS / completion-guided).  This module keeps three
things:

* the two graph types the rest of the library (and its tests) consume:
  :class:`Depth1StateGraph` for the canonical label-set states of depth-1
  forms (Lemma 4.3, the executable counterpart of Theorem 4.6 /
  Corollary 4.7) and :class:`StateGraph` for isomorphism-deduplicated
  bounded exploration of deeper forms (necessarily truncated in general —
  Theorem 4.1);

* the historic entry points :func:`explore_depth1` and
  :func:`explore_bounded`, now thin shims that run a fresh engine and return
  the same graphs as before;

* the original, straight-line explorers as :func:`legacy_explore_depth1` and
  :func:`legacy_explore_bounded` — kept as executable reference
  implementations that the engine parity tests compare against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.analysis.results import ExplorationLimits
from repro.core.canonical import canonical_depth1_state, depth1_state_to_instance
from repro.core.guarded_form import Addition, Deletion, GuardedForm, Update
from repro.core.instance import Instance
from repro.core.runs import Run
from repro.core.tree import Shape

#: A depth-1 canonical state: the set of labels present below the root.
Depth1State = frozenset


@dataclass(frozen=True)
class Depth1Transition:
    """A transition between depth-1 canonical states."""

    kind: str  # "add" or "del"
    label: str
    source: Depth1State
    target: Depth1State


@dataclass
class Depth1StateGraph:
    """The complete reachable canonical-state graph of a depth-1 guarded form."""

    guarded_form: GuardedForm
    initial: Depth1State
    states: set = field(default_factory=set)
    transitions: dict = field(default_factory=dict)  # state -> list[Depth1Transition]

    def successors(self, state: Depth1State) -> list[Depth1Transition]:
        """Outgoing transitions of *state*."""
        return self.transitions.get(state, [])

    def reachable_from(self, start: Depth1State) -> set:
        """All states reachable from *start* inside the graph."""
        seen = {start}
        frontier = deque([start])
        while frontier:
            state = frontier.popleft()
            for transition in self.successors(state):
                if transition.target not in seen:
                    seen.add(transition.target)
                    frontier.append(transition.target)
        return seen

    def backward_closure(self, targets: set) -> set:
        """All states from which some state in *targets* is reachable."""
        predecessors: dict[Depth1State, set] = {}
        for state, transitions in self.transitions.items():
            for transition in transitions:
                predecessors.setdefault(transition.target, set()).add(state)
        closure = set(targets)
        frontier = deque(targets)
        while frontier:
            state = frontier.popleft()
            for predecessor in predecessors.get(state, ()):
                if predecessor not in closure:
                    closure.add(predecessor)
                    frontier.append(predecessor)
        return closure

    def satisfying_states(self, predicate: Callable[[Instance], bool]) -> set:
        """States whose materialised instance satisfies *predicate*."""
        schema = self.guarded_form.schema
        return {
            state
            for state in self.states
            if predicate(depth1_state_to_instance(schema, state))
        }

    def path_to(self, target: Depth1State) -> Optional[list[Depth1Transition]]:
        """A shortest transition path from the initial state to *target*."""
        if target == self.initial:
            return []
        parents: dict[Depth1State, Depth1Transition] = {}
        frontier = deque([self.initial])
        seen = {self.initial}
        while frontier:
            state = frontier.popleft()
            for transition in self.successors(state):
                if transition.target in seen:
                    continue
                seen.add(transition.target)
                parents[transition.target] = transition
                if transition.target == target:
                    return self._unwind(parents, target)
                frontier.append(transition.target)
        return None

    def _unwind(self, parents: dict, target: Depth1State) -> list[Depth1Transition]:
        path: list[Depth1Transition] = []
        state = target
        while state != self.initial:
            transition = parents[state]
            path.append(transition)
            state = transition.source
        path.reverse()
        return path

    def run_to(self, target: Depth1State) -> Optional[Run]:
        """A run of the guarded form (started from the canonical initial
        instance) whose final instance has canonical state *target*."""
        path = self.path_to(target)
        if path is None:
            return None
        schema = self.guarded_form.schema
        start = depth1_state_to_instance(schema, self.initial)
        run = Run(self.guarded_form, [], start=start)
        current = start.copy()
        for transition in path:
            if transition.kind == "add":
                update: Update = Addition(current.root.node_id, transition.label)
            else:
                node = next(
                    child
                    for child in current.root.children
                    if child.label == transition.label
                )
                update = Deletion(node.node_id)
            run.updates.append(update)
            current = self.guarded_form.apply_unchecked(current, update, in_place=True)
        return run


def explore_depth1(guarded_form: GuardedForm, start: Optional[Instance] = None) -> Depth1StateGraph:
    """Build the complete canonical-state graph of a depth-1 guarded form.

    Compatibility shim: runs a fresh :class:`~repro.engine.ExplorationEngine`.
    Analyses that explore the same form repeatedly should construct the
    engine themselves and reuse it, so guard evaluations are shared.

    Raises:
        ValueError: when the schema has depth greater than 1.
    """
    from repro.engine import ExplorationEngine

    return ExplorationEngine(guarded_form).explore_depth1(start=start)


def legacy_explore_depth1(
    guarded_form: GuardedForm, start: Optional[Instance] = None
) -> Depth1StateGraph:
    """Reference implementation of :func:`explore_depth1` (pre-engine).

    Kept for the engine parity tests; evaluates every guard formula from
    scratch and hard-codes BFS.
    """
    if guarded_form.schema_depth() > 1:
        raise ValueError(
            "explore_depth1 only applies to depth-1 guarded forms; use "
            "explore_bounded for deeper schemas"
        )
    schema = guarded_form.schema
    start_instance = start if start is not None else guarded_form.initial_instance()
    initial = canonical_depth1_state(start_instance)
    graph = Depth1StateGraph(guarded_form, initial)

    frontier = deque([initial])
    graph.states.add(initial)
    while frontier:
        state = frontier.popleft()
        instance = depth1_state_to_instance(schema, state)
        transitions: list[Depth1Transition] = []
        root = instance.root
        for schema_child in schema.root.children:
            label = schema_child.label
            if guarded_form.is_addition_allowed(instance, root, label):
                target = Depth1State(state | {label})
                if target != state:
                    transitions.append(Depth1Transition("add", label, state, target))
        for child in root.children:
            if guarded_form.is_deletion_allowed(instance, child):
                target = Depth1State(state - {child.label})
                transitions.append(Depth1Transition("del", child.label, state, target))
        graph.transitions[state] = transitions
        for transition in transitions:
            if transition.target not in graph.states:
                graph.states.add(transition.target)
                frontier.append(transition.target)
    return graph


# --------------------------------------------------------------------------- #
# bounded exploration for arbitrary depth
# --------------------------------------------------------------------------- #


@dataclass
class StateGraph:
    """A (possibly truncated) explicit-state graph over instance shapes.

    States are isomorphism classes of instances, keyed by
    :meth:`~repro.core.tree.LabelledTree.shape`; for each state a concrete
    representative instance is kept so formulas can be evaluated and runs can
    be reconstructed.
    """

    guarded_form: GuardedForm
    initial_key: Shape
    representatives: dict = field(default_factory=dict)  # Shape -> Instance
    transitions: dict = field(default_factory=dict)  # Shape -> list[(Update, Shape)]
    parents: dict = field(default_factory=dict)  # Shape -> (parent Shape, Update)
    truncated_by_states: bool = False
    truncated_by_size: bool = False
    truncated_by_copies: bool = False
    skipped_successors: int = 0

    @property
    def truncated(self) -> bool:
        """Whether any state or successor was skipped for any reason."""
        return self.truncated_by_states or self.truncated_by_size or self.truncated_by_copies

    @property
    def states(self) -> set:
        """All state keys in the graph."""
        return set(self.representatives)

    def instance_of(self, key: Shape) -> Instance:
        """The representative instance of a state."""
        return self.representatives[key].copy()

    def satisfying_states(self, predicate: Callable[[Instance], bool]) -> set:
        """States whose representative satisfies *predicate*."""
        return {
            key
            for key, instance in self.representatives.items()
            if predicate(instance)
        }

    def backward_closure(self, targets: set) -> set:
        """States from which some state in *targets* is reachable within the
        explored graph."""
        predecessors: dict[Shape, set] = {}
        for source, edges in self.transitions.items():
            for _, target in edges:
                predecessors.setdefault(target, set()).add(source)
        closure = set(targets)
        frontier = deque(targets)
        while frontier:
            state = frontier.popleft()
            for predecessor in predecessors.get(state, ()):
                if predecessor not in closure:
                    closure.add(predecessor)
                    frontier.append(predecessor)
        return closure

    def run_to(self, key: Shape) -> Run:
        """A run from the exploration's start instance to the state *key*."""
        updates: list[Update] = []
        current = key
        while current != self.initial_key:
            parent, update = self.parents[current]
            updates.append(update)
            current = parent
        updates.reverse()
        return Run(self.guarded_form, updates, start=self.representatives[self.initial_key].copy())

    def iter_states(self) -> Iterator[tuple[Shape, Instance]]:
        """Iterate over (key, representative) pairs."""
        return iter(self.representatives.items())


def explore_bounded(
    guarded_form: GuardedForm,
    start: Optional[Instance] = None,
    limits: Optional[ExplorationLimits] = None,
) -> StateGraph:
    """Bounded exploration of the reachable instances of a guarded form.

    States are deduplicated by isomorphism.  The exploration honours the
    supplied :class:`~repro.analysis.results.ExplorationLimits`; the returned
    graph's ``truncated`` flag is set when *any* state or successor was
    skipped, in which case the graph is an under-approximation of the
    reachable space.

    Compatibility shim: runs a fresh :class:`~repro.engine.ExplorationEngine`
    and returns its graph as a legacy :class:`StateGraph` (keys are shapes;
    the engine itself works on interned int state ids).
    """
    from repro.engine import ExplorationEngine

    return ExplorationEngine(guarded_form, limits=limits).explore(start=start).to_state_graph()


def legacy_explore_bounded(
    guarded_form: GuardedForm,
    start: Optional[Instance] = None,
    limits: Optional[ExplorationLimits] = None,
) -> StateGraph:
    """Reference implementation of :func:`explore_bounded` (pre-engine).

    Kept for the engine parity tests; recomputes every successor shape by a
    full tree walk and evaluates every guard formula from scratch.
    """
    limits = limits or ExplorationLimits()
    start_instance = start if start is not None else guarded_form.initial_instance()
    initial_key = start_instance.shape()
    graph = StateGraph(guarded_form, initial_key)
    graph.representatives[initial_key] = start_instance.copy()

    frontier = deque([initial_key])
    while frontier:
        key = frontier.popleft()
        instance = graph.representatives[key]
        edges: list[tuple[Update, Shape]] = []
        for update in guarded_form.enabled_updates(instance):
            if isinstance(update, Addition):
                if not limits.allows_instance_size(instance.size() + 1):
                    graph.truncated_by_size = True
                    graph.skipped_successors += 1
                    continue
                if limits.max_sibling_copies is not None:
                    parent = instance.node(update.parent_id)
                    copies = len(parent.children_with_label(update.label))
                    if copies >= limits.max_sibling_copies:
                        graph.truncated_by_copies = True
                        graph.skipped_successors += 1
                        continue
            successor = guarded_form.apply_unchecked(instance, update)
            successor_key = successor.shape()
            if successor_key not in graph.representatives:
                if len(graph.representatives) >= limits.max_states:
                    graph.truncated_by_states = True
                    graph.skipped_successors += 1
                    continue
                graph.representatives[successor_key] = successor
                graph.parents[successor_key] = (key, update)
                frontier.append(successor_key)
            edges.append((update, successor_key))
        graph.transitions[key] = edges
    return graph
