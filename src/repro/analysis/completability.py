"""The form completability problem (Definition 3.13).

``decide_completability`` dispatches on the guarded form's fragment:

=====================================  ======================================
fragment                               procedure
=====================================  ======================================
``F(A+, φ+, ·)``                       :func:`completability_by_saturation`
                                       (polynomial — Theorem 5.5)
``F(·, ·, 1)``                         :func:`completability_depth1`
                                       (exact canonical-state search — the
                                       PSPACE procedure of Theorem 4.6)
everything else                        :func:`completability_bounded`
                                       (bounded explicit-state search; the
                                       problem is NP-complete for
                                       ``F(A+, φ−, k)`` — Theorems 5.1/5.2 —
                                       and undecidable for ``F(A−, ·, ≥2)`` —
                                       Theorem 4.1)
=====================================  ======================================

The exploration-based procedures run on the unified
:class:`~repro.engine.ExplorationEngine`; callers may pass an *engine* to
share its interned shapes and memoized guard evaluations across several
analyses of the same form (the semi-soundness procedure and the CLI do), and
a *frontier* strategy (``"bfs"``, ``"dfs"`` or ``"guided"``) to control the
exploration order.  Engine counters (guard-cache hits/misses, shape-intern
statistics, store read/write/flush counters) are surfaced under
``AnalysisResult.stats["engine"]``.

Bounded explorations can additionally be backed by a persistent
:class:`~repro.engine.store.StateStore` (*store*): interned shapes, canonical
representatives and guard values are written through to disk, and an
interrupted exploration can be picked up with *resume* instead of restarting
— see :mod:`repro.engine.store`.  *stop_on_complete* opts into early exit:
the bounded search returns as soon as a complete state is interned, which on
completable forms can skip most of the budget (negative and undecided
answers are unaffected — they only arise when no early exit happened).

For positive access rules the bounded search is *complete* when the sibling
copy bound is at least the size of the completion formula: the witness
argument of Theorem 5.2 (via Lemma 4.4) shows a completable form has a
complete run whose intermediate instances never need more same-label siblings
under one node than the completion formula can distinguish.  The dispatcher
sets the bound accordingly and reports the negative answer as decided; for
unrestricted access rules an exhausted bounded search is reported as
*undecided* unless it exhausted the reachable space outright.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.results import AnalysisResult, ExplorationLimits
from repro.core.fragments import classify
from repro.core.guarded_form import Addition, GuardedForm
from repro.core.instance import Instance
from repro.core.runs import Run
from repro.engine import ExplorationEngine, StateStore, engine_for
from repro.exceptions import AnalysisError, RequestError

_PROBLEM = "completability"


def delegate_to_request(dispatcher_name: str, kind: str, request, guarded_form):
    """The shared ``request=`` shim of the analysis dispatchers.

    Every dispatcher accepts either its classic keyword surface *or* a
    single :class:`~repro.service.AnalysisRequest`; with a request it
    becomes a thin shim over :func:`repro.service.dispatch.run_analysis` —
    the same dispatcher the HTTP API and the CLI go through, pinned
    equivalent to the kwargs path by the parity tests.  Mixing both
    surfaces, or handing a request whose ``kind`` names a different verb,
    is rejected outright.
    """
    if guarded_form is not None:
        raise RequestError(
            f"{dispatcher_name} takes either a guarded form (with keyword "
            "arguments) or request=, not both"
        )
    if request.kind != kind:
        raise RequestError(
            f"{dispatcher_name} expects a request of kind {kind!r}, got "
            f"{request.kind!r}"
        )
    from repro.service.dispatch import run_analysis

    return run_analysis(request)


def transition_count(graph) -> int:
    """Total transitions of an explored graph (any graph flavour)."""
    return sum(len(edges) for edges in graph.transitions.values())


def completability_by_saturation(
    guarded_form: GuardedForm, start: Optional[Instance] = None
) -> AnalysisResult:
    """Polynomial-time completability for positive rules and positive
    completion formulas (Theorem 5.5).

    The procedure adds as many edges as possible without ever creating a
    second same-label sibling under a node.  Positive access rules are
    monotone under additions, so a greedy order is as good as any; positive
    completion formulas are monotone too, so the saturated instance satisfies
    ``φ`` iff some reachable instance does.

    Raises:
        AnalysisError: when the guarded form is not in an ``F(A+, φ+, ·)``
            fragment (the argument above would be unsound).
    """
    if not guarded_form.has_positive_access_rules():
        raise AnalysisError(
            "saturation requires positive access rules (fragment A+)"
        )
    if not guarded_form.has_positive_completion():
        raise AnalysisError(
            "saturation requires a positive completion formula (fragment phi+)"
        )
    instance = (start or guarded_form.initial_instance()).copy()
    run = Run(guarded_form, [], start=instance.copy())
    steps = 0
    changed = True
    while changed:
        changed = False
        for node in list(instance.nodes()):
            schema_node = guarded_form.schema.node_at(node.label_path())
            for schema_child in schema_node.children:
                label = schema_child.label
                if node.has_child_with_label(label):
                    continue
                if guarded_form.is_addition_allowed(instance, node, label):
                    update = Addition(node.node_id, label)
                    run.updates.append(update)
                    guarded_form.apply_unchecked(instance, update, in_place=True)
                    steps += 1
                    changed = True
    completable = guarded_form.is_complete(instance)
    return AnalysisResult(
        problem=_PROBLEM,
        decided=True,
        answer=completable,
        procedure="positive_saturation",
        witness_run=run if completable else None,
        stats={"saturation_steps": steps, "saturated_size": instance.size()},
    )


def completability_depth1(
    guarded_form: GuardedForm,
    start: Optional[Instance] = None,
    frontier: Optional[str] = None,
    engine: Optional[ExplorationEngine] = None,
    store: Optional[StateStore] = None,
    workers: int = 1,
    resident_budget: Optional[int] = None,
) -> AnalysisResult:
    """Exact completability for depth-1 guarded forms (Theorem 4.6).

    Explores the full graph of reachable canonical states (label sets below
    the root, Lemma 4.3) and reports whether any of them satisfies the
    completion formula.  Always terminates; worst case ``2^n`` states, but
    the engine's support-projected guard cache shares formula evaluations
    across states that agree on the labels a rule can observe.  A persistent
    *store* carries the support-projected guard values across processes
    (depth-1 explorations are not checkpointed — their canonical states are
    cheap to re-enumerate).  *workers* is accepted for dispatch symmetry:
    canonical depth-1 states are label sets, far cheaper to expand than to
    ship to a worker process, so the exploration itself stays serial on a
    parallel engine too.
    """
    owns_engine = engine is None
    engine = engine_for(guarded_form, engine, frontier, store=store, workers=workers, resident_budget=resident_budget)
    try:
        graph = engine.explore_depth1(start=start, strategy=frontier)
        complete_states = engine.complete_depth1_states(graph)
        reachable = graph.reachable_from(graph.initial)
        witnesses = sorted(reachable & complete_states, key=sorted)
        answer = bool(witnesses)
        witness_run = graph.run_to(witnesses[0]) if witnesses else None
        return AnalysisResult(
            problem=_PROBLEM,
            decided=True,
            answer=answer,
            procedure="depth1_canonical_search",
            witness_run=witness_run,
            stats={
                "canonical_states": len(graph.states),
                "complete_states": len(complete_states & reachable),
                "transitions": transition_count(graph),
                "engine": engine.stats_snapshot(),
            },
        )
    finally:
        if owns_engine:
            engine.shutdown_workers()


def completability_bounded(
    guarded_form: GuardedForm,
    start: Optional[Instance] = None,
    limits: Optional[ExplorationLimits] = None,
    copy_bound_is_sufficient: bool = False,
    frontier: Optional[str] = None,
    engine: Optional[ExplorationEngine] = None,
    store: Optional[StateStore] = None,
    resume: bool = False,
    stop_on_complete: bool = False,
    workers: int = 1,
    resident_budget: Optional[int] = None,
    step_limit: Optional[int] = None,
) -> AnalysisResult:
    """Bounded explicit-state completability for arbitrary guarded forms.

    A positive answer (a reachable complete instance was found) is always
    exact.  A negative answer is exact when the exploration exhausted the
    reachable space; when only the sibling-copy bound truncated the search
    the negative answer is still exact provided *copy_bound_is_sufficient*
    (the dispatcher sets this for positive access rules with a bound derived
    from the completion formula, per Theorem 5.2's witness argument).
    Otherwise the result is reported as undecided.

    *store* persists the exploration (and *resume* continues a checkpointed
    one); *stop_on_complete* returns the positive answer as soon as a
    complete state is discovered instead of exhausting the budget.
    ``workers > 1`` expands frontier waves on a
    :class:`~repro.engine.parallel.ParallelExplorationEngine` worker pool;
    the explored graph — and hence the verdict — is bit-identical to the
    serial engine's.  *step_limit* bounds how many states this call may
    expand: on a store-backed engine the exploration checkpoints and raises
    :class:`~repro.exceptions.ExplorationInterrupted` when the budget runs
    out, and an identical call with *resume* continues — the service's
    slice-wise execution mode.
    """
    limits = limits or ExplorationLimits()
    owns_engine = engine is None
    engine = engine_for(guarded_form, engine, frontier, store=store, workers=workers, resident_budget=resident_budget)
    try:
        graph = engine.explore(
            start=start,
            limits=limits,
            strategy=frontier,
            stop_on_complete=stop_on_complete,
            resume=resume,
            step_limit=step_limit,
        )
        complete_states = engine.complete_ids(graph)
        stats = {
            "states_explored": len(graph.states),
            "transitions": transition_count(graph),
            "truncated": graph.truncated,
            "truncated_by_states": graph.truncated_by_states,
            "truncated_by_size": graph.truncated_by_size,
            "truncated_by_copies": graph.truncated_by_copies,
            "skipped_successors": graph.skipped_successors,
            "stopped_on_complete": graph.stopped_on_complete,
            "resumed": graph.resumed,
            "limits": limits,
            "engine": engine.stats_snapshot(),
        }
        if complete_states:
            key = min(complete_states)  # earliest-interned complete state
            return AnalysisResult(
                problem=_PROBLEM,
                decided=True,
                answer=True,
                procedure="bounded_exploration",
                witness_run=graph.run_to(key),
                stats=stats,
            )
        exhaustive = not graph.truncated
        only_copies = (
            graph.truncated_by_copies
            and not graph.truncated_by_states
            and not graph.truncated_by_size
        )
        negative_is_decided = exhaustive or (only_copies and copy_bound_is_sufficient)
        return AnalysisResult(
            problem=_PROBLEM,
            decided=negative_is_decided,
            answer=False if negative_is_decided else None,
            procedure="bounded_exploration",
            stats=stats,
        )
    finally:
        if owns_engine:
            engine.shutdown_workers()


def positive_rules_copy_bound(guarded_form: GuardedForm) -> int:
    """Sibling-copy bound sufficient for completeness under positive rules.

    The witness construction of Theorem 5.2 (through Lemma 4.4) bounds the
    branching of the witness tree by the size of the completion formula; a
    complete run never needs more same-label copies than that under a single
    node, and positive access rules never require extra copies to stay
    enabled (they are monotone).
    """
    return max(1, guarded_form.completion.size())


def decide_completability(
    guarded_form: Optional[GuardedForm] = None,
    start: Optional[Instance] = None,
    strategy: str = "auto",
    limits: Optional[ExplorationLimits] = None,
    frontier: Optional[str] = None,
    engine: Optional[ExplorationEngine] = None,
    store: Optional[StateStore] = None,
    resume: bool = False,
    stop_on_complete: bool = False,
    workers: int = 1,
    resident_budget: Optional[int] = None,
    step_limit: Optional[int] = None,
    request=None,
) -> AnalysisResult:
    """Decide completability, selecting a procedure from the fragment.

    Args:
        guarded_form: the guarded form to analyse.
        start: analyse completability *from this instance* instead of the
            initial instance (used by the semi-soundness procedures).
        strategy: ``"auto"`` (fragment-based dispatch) or one of
            ``"saturation"``, ``"depth1"``, ``"bounded"``.
        limits: exploration limits for the bounded procedure.
        frontier: frontier strategy for the exploration engine (``"bfs"``,
            ``"dfs"`` or ``"guided"``; default BFS).
        engine: an :class:`~repro.engine.ExplorationEngine` to reuse, sharing
            interned shapes and guard evaluations with previous analyses of
            the same form.
        store: a :class:`~repro.engine.store.StateStore` backing a freshly
            built engine (ignored when *engine* is supplied — that engine
            keeps its own store).  Only the bounded procedure checkpoints
            explorations; the saturation and depth-1 procedures still
            persist their guard evaluations through the store.
        resume: continue the bounded exploration from the checkpoint an
            identically parameterised earlier run saved in the store.
        stop_on_complete: let the bounded exploration return as soon as a
            complete state is found (early exit; default off, pinned by the
            parity tests).
        workers: number of frontier worker processes for the bounded
            procedure (``1`` — the default — keeps the serial engine; the
            parallel engine's answers are bit-identical, see
            :mod:`repro.engine.parallel`).
        step_limit: state-expansion budget per call for the bounded
            procedure (checkpoint + :class:`ExplorationInterrupted` when
            exhausted; resume to continue).
        request: a single :class:`~repro.service.AnalysisRequest` of kind
            ``"completability"`` carrying the whole configuration instead
            of the keyword surface; the call becomes a thin shim over
            :func:`repro.service.dispatch.run_analysis`.
    """
    if request is not None:
        return delegate_to_request(
            "decide_completability", "completability", request, guarded_form
        )
    if guarded_form is None:
        raise RequestError("decide_completability needs a guarded form or request=")
    if strategy == "saturation":
        return completability_by_saturation(guarded_form, start)
    if strategy == "depth1":
        return completability_depth1(
            guarded_form, start, frontier=frontier, engine=engine, store=store,
            workers=workers,
            resident_budget=resident_budget,
        )
    if strategy == "bounded":
        return completability_bounded(
            guarded_form,
            start,
            limits,
            frontier=frontier,
            engine=engine,
            store=store,
            resume=resume,
            stop_on_complete=stop_on_complete,
            workers=workers,
            resident_budget=resident_budget,
            step_limit=step_limit,
        )
    if strategy != "auto":
        raise AnalysisError(f"unknown completability strategy {strategy!r}")

    fragment = classify(guarded_form)
    if fragment.positive_access and fragment.positive_completion:
        return completability_by_saturation(guarded_form, start)
    if guarded_form.schema_depth() <= 1:
        return completability_depth1(
            guarded_form, start, frontier=frontier, engine=engine, store=store,
            workers=workers,
            resident_budget=resident_budget,
        )
    if fragment.positive_access:
        copy_bound = positive_rules_copy_bound(guarded_form)
        effective = limits or ExplorationLimits(max_sibling_copies=copy_bound)
        if effective.max_sibling_copies is None:
            effective = ExplorationLimits(
                max_states=effective.max_states,
                max_instance_nodes=effective.max_instance_nodes,
                max_sibling_copies=copy_bound,
            )
        return completability_bounded(
            guarded_form,
            start,
            effective,
            copy_bound_is_sufficient=True,
            frontier=frontier,
            engine=engine,
            store=store,
            resume=resume,
            stop_on_complete=stop_on_complete,
            workers=workers,
            resident_budget=resident_budget,
            step_limit=step_limit,
        )
    return completability_bounded(
        guarded_form,
        start,
        limits,
        frontier=frontier,
        engine=engine,
        store=store,
        resume=resume,
        stop_on_complete=stop_on_complete,
        workers=workers,
        resident_budget=resident_budget,
        step_limit=step_limit,
    )
