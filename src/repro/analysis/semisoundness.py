"""The form semi-soundness problem (Definition 3.14).

A guarded form is semi-sound when every reachable instance is still
completable.  ``decide_semisoundness`` dispatches on the fragment:

* depth-1 forms — :func:`semisoundness_depth1`: build the complete reachable
  canonical-state graph (Lemma 4.3) and check that every reachable state lies
  in the backward closure of the completion states.  This realises the
  PSPACE procedures of Corollary 4.7 and the coNP procedure of
  Corollary 5.7 (for positive/positive forms the graph is small because
  deletions are the only way to leave the monotone add-lattice).

* deeper forms — :func:`semisoundness_bounded`: bounded exploration of the
  reachable instances, then a completability check from every explored state.
  Negative answers require an exact incompletability verdict for the
  offending state; positive answers require the reachability exploration to
  have been exhaustive.  Anything else is undecided — unavoidable, since the
  problem is Π₂ᵏ-hard for positive rules (Theorem 5.3) and undecidable in
  general (Theorem 4.1).

Semi-soundness is where the shared :class:`~repro.engine.ExplorationEngine`
pays off most: the per-suspicious-state completability checks re-explore
regions the reachability sweep already visited, and the engine serves those
states' memoized expansions and guard evaluations from cache instead of
re-evaluating every access-rule formula.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.completability import (
    decide_completability,
    delegate_to_request,
    positive_rules_copy_bound,
    transition_count,
)
from repro.analysis.results import AnalysisResult, ExplorationLimits
from repro.core.canonical import depth1_state_to_instance
from repro.core.fragments import classify
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.engine import ExplorationEngine, StateStore, engine_for
from repro.exceptions import AnalysisError, RequestError

_PROBLEM = "semisoundness"


def semisoundness_depth1(
    guarded_form: GuardedForm,
    start: Optional[Instance] = None,
    frontier: Optional[str] = None,
    engine: Optional[ExplorationEngine] = None,
    store: Optional[StateStore] = None,
    workers: int = 1,
    resident_budget: Optional[int] = None,
) -> AnalysisResult:
    """Exact semi-soundness for depth-1 guarded forms.

    The reachable canonical states are enumerated once; the form is semi-sound
    iff every reachable state can reach a state satisfying the completion
    formula (a backward-closure computation on the same graph).  *workers* is
    accepted for dispatch symmetry; the canonical-state enumeration stays
    serial (see :func:`~repro.analysis.completability.completability_depth1`).
    """
    owns_engine = engine is None
    engine = engine_for(guarded_form, engine, frontier, store=store, workers=workers, resident_budget=resident_budget)
    try:
        graph = engine.explore_depth1(start=start, strategy=frontier)
        reachable = graph.reachable_from(graph.initial)
        complete_states = engine.complete_depth1_states(graph)
        can_complete = graph.backward_closure(complete_states & graph.states)
        stuck = sorted(reachable - can_complete, key=sorted)
        answer = not stuck
        counterexample = None
        witness_run = None
        if stuck:
            counterexample = depth1_state_to_instance(guarded_form.schema, stuck[0])
            witness_run = graph.run_to(stuck[0])
        return AnalysisResult(
            problem=_PROBLEM,
            decided=True,
            answer=answer,
            procedure="depth1_canonical_graph",
            witness_run=witness_run,
            counterexample=counterexample,
            stats={
                "canonical_states": len(graph.states),
                "transitions": transition_count(graph),
                "reachable_states": len(reachable),
                "incompletable_reachable_states": len(stuck),
                "engine": engine.stats_snapshot(),
            },
        )
    finally:
        if owns_engine:
            engine.shutdown_workers()


def semisoundness_bounded(
    guarded_form: GuardedForm,
    start: Optional[Instance] = None,
    limits: Optional[ExplorationLimits] = None,
    completability_limits: Optional[ExplorationLimits] = None,
    frontier: Optional[str] = None,
    engine: Optional[ExplorationEngine] = None,
    store: Optional[StateStore] = None,
    resume: bool = False,
    workers: int = 1,
    resident_budget: Optional[int] = None,
    step_limit: Optional[int] = None,
) -> AnalysisResult:
    """Bounded semi-soundness for guarded forms of arbitrary depth.

    The reachable space is explored up to *limits*; from every explored state
    the graph itself answers "can this state reach a complete state?", and
    states that cannot within the explored graph are re-checked with a
    dedicated completability analysis (so a negative verdict is based on an
    exact incompletability proof for the counterexample state).  Unless
    overridden, those per-state checks reuse the same *limits* so the total
    work stays proportional to the configured exploration budget — and they
    reuse the same engine, so they mostly replay memoized expansions.

    On a store-backed engine each exploration (the reachability sweep and
    every per-suspicious-state completability check) keeps its own
    checkpoint, keyed by its start shape; *resume* picks up whichever of
    them was interrupted.

    ``workers > 1`` runs every exploration — the reachability sweep *and*
    the per-suspicious-state completability checks, which share the one
    parallel engine and hence its staged worker results — on a frontier
    worker pool; verdicts and witnesses are bit-identical to serial runs.
    """
    limits = limits or ExplorationLimits()
    completability_limits = completability_limits or limits
    owns_engine = engine is None
    engine = engine_for(guarded_form, engine, frontier, store=store, workers=workers, resident_budget=resident_budget)
    try:
        graph = engine.explore(
            start=start,
            limits=limits,
            strategy=frontier,
            resume=resume,
            step_limit=step_limit,
        )
        complete_states = engine.complete_ids(graph)
        can_complete = graph.backward_closure(complete_states)
        suspicious = [state_id for state_id in graph.states if state_id not in can_complete]
        stats = {
            "states_explored": len(graph.states),
            "transitions": transition_count(graph),
            "truncated": graph.truncated,
            "suspicious_states": len(suspicious),
            "limits": limits,
        }

        for state_id in suspicious:
            instance = graph.instance_of(state_id)
            check = decide_completability(
                guarded_form,
                start=instance,
                limits=completability_limits,
                frontier=frontier,
                engine=engine,
                resume=resume,
            )
            if check.decided and check.answer is False:
                return AnalysisResult(
                    problem=_PROBLEM,
                    decided=True,
                    answer=False,
                    procedure="bounded_exploration",
                    witness_run=graph.run_to(state_id),
                    counterexample=instance,
                    stats={**stats, "engine": engine.stats_snapshot()},
                )

        stats["engine"] = engine.stats_snapshot()
        if not graph.truncated and not suspicious:
            return AnalysisResult(
                problem=_PROBLEM,
                decided=True,
                answer=True,
                procedure="bounded_exploration",
                stats=stats,
            )
        if not graph.truncated and suspicious:
            # every suspicious state turned out to be completable through states
            # outside the explored graph?  impossible when the graph is exhaustive
            # — the backward closure is exact — so being here means the per-state
            # completability checks were undecided.
            return AnalysisResult(
                problem=_PROBLEM,
                decided=False,
                answer=None,
                procedure="bounded_exploration",
                stats=stats,
            )
        return AnalysisResult(
            problem=_PROBLEM,
            decided=False,
            answer=None,
            procedure="bounded_exploration",
            stats=stats,
        )
    finally:
        if owns_engine:
            engine.shutdown_workers()


def decide_semisoundness(
    guarded_form: Optional[GuardedForm] = None,
    start: Optional[Instance] = None,
    strategy: str = "auto",
    limits: Optional[ExplorationLimits] = None,
    frontier: Optional[str] = None,
    engine: Optional[ExplorationEngine] = None,
    store: Optional[StateStore] = None,
    resume: bool = False,
    workers: int = 1,
    resident_budget: Optional[int] = None,
    step_limit: Optional[int] = None,
    request=None,
) -> AnalysisResult:
    """Decide semi-soundness, selecting a procedure from the fragment.

    Args:
        guarded_form: the guarded form to analyse.
        start: use this instance instead of the initial instance.
        strategy: ``"auto"``, ``"depth1"`` or ``"bounded"``.
        limits: exploration limits for the bounded procedure.
        frontier: frontier strategy for the exploration engine (``"bfs"``,
            ``"dfs"`` or ``"guided"``; default BFS).
        engine: an :class:`~repro.engine.ExplorationEngine` to reuse, sharing
            interned shapes and guard evaluations with previous analyses of
            the same form.
        store: a :class:`~repro.engine.store.StateStore` backing a freshly
            built engine (ignored when *engine* is supplied).
        resume: continue the bounded explorations from checkpoints earlier
            identically parameterised runs saved in the store.
        workers: number of frontier worker processes for the bounded
            procedure (``1`` keeps the serial engine; parallel verdicts are
            bit-identical — see :mod:`repro.engine.parallel`).
        step_limit: for the bounded procedure, checkpoint and raise
            :class:`~repro.exceptions.ExplorationInterrupted` after this many
            state expansions of the reachability sweep (requires a store).
        request: a single :class:`~repro.service.AnalysisRequest` instead of
            the keyword surface; delegates to
            :func:`repro.service.dispatch.run_analysis`.
    """
    if request is not None:
        return delegate_to_request(
            "decide_semisoundness", "semisoundness", request, guarded_form
        )
    if guarded_form is None:
        raise RequestError(
            "decide_semisoundness needs a guarded form or request="
        )
    if strategy == "depth1":
        return semisoundness_depth1(
            guarded_form, start, frontier=frontier, engine=engine, store=store,
            workers=workers,
            resident_budget=resident_budget,
        )
    if strategy == "bounded":
        return semisoundness_bounded(
            guarded_form,
            start,
            limits,
            frontier=frontier,
            engine=engine,
            store=store,
            resume=resume,
            workers=workers,
            resident_budget=resident_budget,
            step_limit=step_limit,
        )
    if strategy != "auto":
        raise AnalysisError(f"unknown semi-soundness strategy {strategy!r}")

    if guarded_form.schema_depth() <= 1:
        return semisoundness_depth1(
            guarded_form, start, frontier=frontier, engine=engine, store=store,
            workers=workers,
            resident_budget=resident_budget,
        )

    fragment = classify(guarded_form)
    if fragment.positive_access and limits is None:
        limits = ExplorationLimits(
            max_sibling_copies=positive_rules_copy_bound(guarded_form)
        )
    return semisoundness_bounded(
        guarded_form,
        start,
        limits,
        frontier=frontier,
        engine=engine,
        store=store,
        resume=resume,
        workers=workers,
        resident_budget=resident_budget,
        step_limit=step_limit,
    )
