"""Decision procedures for the completability and semi-soundness problems.

The paper's two analysis questions (Definitions 3.13 and 3.14) are exposed
through two dispatchers that select a procedure based on the guarded form's
fragment (Section 3.5 / Table 1):

* :func:`repro.analysis.completability.decide_completability`
* :func:`repro.analysis.semisoundness.decide_semisoundness`

The individual procedures (polynomial saturation for the positive fragments,
exact canonical-state search for depth-1 forms, bounded exploration for the
general — undecidable — case) can also be invoked directly.

All exploration-based procedures run on the shared
:class:`~repro.engine.ExplorationEngine`; pass ``engine=`` to reuse interned
shapes and memoized guard evaluations across analyses, and ``frontier=`` to
pick the exploration order.
"""

from repro.analysis.completability import (
    completability_bounded,
    completability_by_saturation,
    completability_depth1,
    decide_completability,
)
from repro.analysis.invariants import always_holds, can_reach
from repro.analysis.results import AnalysisResult, ExplorationLimits
from repro.analysis.semisoundness import (
    decide_semisoundness,
    semisoundness_bounded,
    semisoundness_depth1,
)
from repro.analysis.statespace import (
    Depth1StateGraph,
    StateGraph,
    explore_bounded,
    explore_depth1,
    legacy_explore_bounded,
    legacy_explore_depth1,
)

__all__ = [
    "decide_completability",
    "completability_by_saturation",
    "completability_depth1",
    "completability_bounded",
    "decide_semisoundness",
    "semisoundness_depth1",
    "semisoundness_bounded",
    "always_holds",
    "can_reach",
    "AnalysisResult",
    "ExplorationLimits",
    "StateGraph",
    "Depth1StateGraph",
    "explore_depth1",
    "explore_bounded",
    "legacy_explore_depth1",
    "legacy_explore_bounded",
]
