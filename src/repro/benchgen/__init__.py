"""Benchmark workload generators.

The paper's Table 1 is a complexity table, so the reproduction benchmarks
measure how the library's decision procedures scale on parameterised workload
families chosen to exercise each fragment row.  The families live in
:mod:`repro.benchgen.families`; seeded random generators for schemas, rules
and formulas (used by property-based tests as well) live in
:mod:`repro.benchgen.random_forms`.

This package is the *primitive* layer: it builds individual parameterised
forms.  Orchestration on top of it is owned by :mod:`repro.campaign` — the
campaign generator (:mod:`repro.campaign.generator`) maps ``(family, seed)``
addresses onto these constructors and is the single source of truth for
which scales a family is drawn at, and the consolidated Hypothesis
strategies (:mod:`repro.campaign.strategies`) wrap the same constructors for
property-based tests.  New workload families should be added here and then
registered in :data:`repro.campaign.generator.FAMILIES` so campaigns,
benchmarks and the seed corpus all pick them up.
"""

from repro.benchgen.families import (
    counter_machine_family,
    deadlock_family,
    positive_chain_family,
    positive_deep_family,
    qsat_semisoundness_family,
    sat_completability_family,
    sat_semisoundness_family,
)
from repro.benchgen.random_forms import (
    random_depth1_guarded_form,
    random_formula,
    random_instance,
    random_schema,
)

__all__ = [
    "positive_chain_family",
    "positive_deep_family",
    "sat_completability_family",
    "sat_semisoundness_family",
    "deadlock_family",
    "counter_machine_family",
    "qsat_semisoundness_family",
    "random_schema",
    "random_instance",
    "random_formula",
    "random_depth1_guarded_form",
]
