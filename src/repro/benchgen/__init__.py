"""Benchmark workload generators.

The paper's Table 1 is a complexity table, so the reproduction benchmarks
measure how the library's decision procedures scale on parameterised workload
families chosen to exercise each fragment row.  The families live in
:mod:`repro.benchgen.families`; seeded random generators for schemas, rules
and formulas (used by property-based tests as well) live in
:mod:`repro.benchgen.random_forms`.
"""

from repro.benchgen.families import (
    counter_machine_family,
    deadlock_family,
    positive_chain_family,
    positive_deep_family,
    qsat_semisoundness_family,
    sat_completability_family,
    sat_semisoundness_family,
)
from repro.benchgen.random_forms import (
    random_depth1_guarded_form,
    random_formula,
    random_instance,
    random_schema,
)

__all__ = [
    "positive_chain_family",
    "positive_deep_family",
    "sat_completability_family",
    "sat_semisoundness_family",
    "deadlock_family",
    "counter_machine_family",
    "qsat_semisoundness_family",
    "random_schema",
    "random_instance",
    "random_formula",
    "random_depth1_guarded_form",
]
