"""Seeded random generators for schemas, instances, formulas and guarded forms.

These generators serve two purposes:

* benchmark workloads where the paper's own reductions are not the natural
  workload (e.g. "random positive depth-1 forms" for the ``P`` rows of
  Table 1);
* randomised cross-checks in the test-suite (e.g. "the saturation procedure
  agrees with the exhaustive depth-1 procedure on random positive forms");
* the ``random-depth1`` differential-campaign family
  (:mod:`repro.campaign.generator`), which draws its per-seed parameters and
  delegates the actual construction here.

All generators take an explicit ``seed`` so workloads are reproducible.
Campaign determinism additionally depends on these draws: changing the
sequence of ``rng`` calls in any generator invalidates the committed seed
corpus (``tests/campaign/seed_corpus/``) and the campaign golden report —
regenerate both and review the diff if you must reorder draws.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.access import RuleTable
from repro.core.formulas.ast import And, Exists, Formula, Not, Or, Step, Top
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.schema import Schema, depth_one_schema
from repro.exceptions import ReductionError


def random_schema(
    num_fields: int,
    max_depth: int = 3,
    seed: Optional[int] = None,
    label_prefix: str = "f",
) -> Schema:
    """A random schema with *num_fields* fields and depth at most *max_depth*.

    Fields are attached to uniformly chosen existing nodes whose depth allows
    another level; sibling labels are kept unique by construction.
    """
    if num_fields < 1:
        raise ReductionError("a random schema needs at least one field")
    rng = random.Random(seed)
    schema = Schema()
    nodes = [schema.root]
    for index in range(num_fields):
        candidates = [node for node in nodes if node.depth() < max_depth]
        parent = rng.choice(candidates)
        label = f"{label_prefix}{index}"
        child = schema.add_leaf(parent, label)
        nodes.append(child)
    schema.validate()
    return schema


def random_instance(
    schema: Schema, seed: Optional[int] = None, density: float = 0.5, max_copies: int = 1
) -> Instance:
    """A random instance of *schema*: each schema field is instantiated with
    probability *density* (up to *max_copies* copies), provided its parent was
    instantiated."""
    rng = random.Random(seed)
    instance = Instance.empty(schema)

    def populate(schema_node, instance_node):
        for schema_child in schema_node.children:
            for _ in range(max_copies):
                if rng.random() < density:
                    child = instance.add_field(instance_node, schema_child.label)
                    populate(schema_child, child)

    populate(schema.root, instance.root)
    return instance


def random_formula(
    labels: list[str],
    seed: Optional[int] = None,
    size: int = 6,
    allow_negation: bool = True,
) -> Formula:
    """A random formula over plain label atoms (depth-1 style).

    The formula has roughly *size* connectives; with ``allow_negation=False``
    the result is positive.
    """
    if not labels:
        return Top()
    rng = random.Random(seed)

    def build(budget: int) -> Formula:
        if budget <= 1:
            return Exists(Step(rng.choice(labels)))
        choices = ["and", "or", "atom"]
        if allow_negation:
            choices.append("not")
        kind = rng.choice(choices)
        if kind == "atom":
            return Exists(Step(rng.choice(labels)))
        if kind == "not":
            return Not(build(budget - 1))
        left = build(budget // 2)
        right = build(budget - budget // 2 - 1)
        return And(left, right) if kind == "and" else Or(left, right)

    return build(size)


def random_depth1_guarded_form(
    num_fields: int,
    seed: Optional[int] = None,
    positive_access: bool = True,
    positive_completion: bool = True,
    rule_size: int = 3,
    completion_size: int = 5,
) -> GuardedForm:
    """A random depth-1 guarded form in the requested fragment.

    Access rules and the completion formula are random formulas over the field
    labels; negation is only used where the fragment allows it.
    """
    rng = random.Random(seed)
    labels = [f"f{i}" for i in range(num_fields)]
    schema = depth_one_schema(labels)
    rules = RuleTable(schema)
    for label_name in labels:
        rules.set_add_rule(
            label_name,
            random_formula(
                labels, seed=rng.randint(0, 2**30), size=rule_size, allow_negation=not positive_access
            ),
        )
        rules.set_delete_rule(
            label_name,
            random_formula(
                labels, seed=rng.randint(0, 2**30), size=rule_size, allow_negation=not positive_access
            ),
        )
    completion = random_formula(
        labels,
        seed=rng.randint(0, 2**30),
        size=completion_size,
        allow_negation=not positive_completion,
    )
    # ensure at least one field can always be added so the form is not frozen
    rules.set_add_rule(labels[0], Top())
    return GuardedForm(
        schema,
        rules,
        completion=completion,
        initial_instance=Instance.empty(schema),
        name=f"random depth-1 form ({num_fields} fields, seed={seed})",
    )
