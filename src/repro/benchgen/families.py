"""Parameterised workload families for the Table 1 benchmarks.

Each family returns a guarded form (or a related object) whose analysis
exercises one row of Table 1; the benchmark harness in ``benchmarks/`` sweeps
the size parameter and records how the corresponding decision procedure
scales.  The families either instantiate the paper's own reductions (SAT,
QSAT, reachable deadlock, two-counter machines) or simple structured forms
(chains, nested documents) for the polynomial rows.
"""

from __future__ import annotations

from typing import Optional

from repro.core.access import RuleTable
from repro.core.formulas.builders import child_path, conj_all, label
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.schema import Schema, depth_one_schema
from repro.logic.propositional import CnfFormula, random_cnf
from repro.logic.qbf import QBF, qsat_2k
from repro.reductions.counter_machine import TwoCounterMachine, counting_machine
from repro.reductions.deadlock import DeadlockProblem, deadlock_to_completability, random_deadlock_problem
from repro.reductions.qsat_reductions import qsat2k_to_semisoundness
from repro.reductions.sat_reductions import sat_to_completability, sat_to_non_semisoundness
from repro.reductions.two_counter import two_counter_to_guarded_form


def positive_chain_family(length: int) -> GuardedForm:
    """Row (A+, φ+, 1): a depth-1 form whose fields must be added in a chain.

    Field ``f_i`` may only be added once ``f_{i-1}`` is present; the completion
    formula requires every field.  Completability is decided by the
    polynomial saturation procedure of Theorem 5.5, and the saturation length
    grows linearly with *length*.
    """
    labels = [f"f{i}" for i in range(length)]
    schema = depth_one_schema(labels)
    rules = RuleTable(schema)
    for index, name in enumerate(labels):
        if index == 0:
            rules.set_add_rule(name, "true")
        else:
            rules.set_add_rule(name, label(labels[index - 1]))
    completion = conj_all(label(name) for name in labels)
    return GuardedForm(
        schema,
        rules,
        completion=completion,
        initial_instance=Instance.empty(schema),
        name=f"positive chain (length {length})",
    )


def positive_deep_family(depth: int, width: int = 2) -> GuardedForm:
    """Rows (A+, φ+, k/∞): a nested document of the given depth and width.

    Every field may be added once its parent exists (a positive, structural
    requirement); the completion formula asks for one full root-to-leaf path
    per subtree.  The saturation procedure remains polynomial regardless of
    the depth, which is the point of the (A+, φ+, ·) rows.
    """
    def level(current: int) -> dict:
        if current >= depth:
            return {}
        return {f"n{current}_{i}": level(current + 1) for i in range(width)}

    schema = Schema.from_dict(level(0))
    rules = RuleTable.from_dict(schema, {}, default="true")

    def deepest_path(current: int, prefix: list) -> list:
        if current >= depth:
            return prefix
        return deepest_path(current + 1, prefix + [f"n{current}_0"])

    completion = child_path(*deepest_path(0, []))
    return GuardedForm(
        schema,
        rules,
        completion=completion,
        initial_instance=Instance.empty(schema),
        name=f"positive nested document (depth {depth}, width {width})",
    )


def sat_completability_family(
    num_variables: int, clause_ratio: float = 4.0, seed: Optional[int] = 0
) -> tuple[GuardedForm, CnfFormula]:
    """Row (A+, φ−, 1/k): Theorem 5.1's SAT reduction on random 3-CNF.

    Returns both the guarded form and the CNF so benchmarks can compare the
    guarded-form procedure against the DPLL oracle.
    """
    cnf = random_cnf(num_variables, max(1, int(round(clause_ratio * num_variables))), seed=seed)
    return sat_to_completability(cnf), cnf


def sat_semisoundness_family(
    num_variables: int, clause_ratio: float = 2.0, seed: Optional[int] = 0
) -> tuple[GuardedForm, CnfFormula]:
    """Row (A+, φ+, 1) semi-soundness: Theorem 5.6's reduction on random 3-CNF."""
    cnf = random_cnf(num_variables, max(1, int(round(clause_ratio * num_variables))), seed=seed)
    return sat_to_non_semisoundness(cnf), cnf


def deadlock_family(
    num_components: int,
    vertices_per_component: int = 3,
    transitions_per_component: int = 3,
    seed: Optional[int] = 0,
) -> tuple[GuardedForm, DeadlockProblem]:
    """Row (A−, φ−, 1): Theorem 4.6's reachable-deadlock reduction."""
    problem = random_deadlock_problem(
        num_components,
        vertices_per_component,
        transitions_per_component * num_components,
        seed=seed,
    )
    return deadlock_to_completability(problem), problem


def counter_machine_family(target: int) -> tuple[GuardedForm, TwoCounterMachine]:
    """Rows (A−, φ±, k/∞): Theorem 4.1's two-counter simulation.

    The machine increments a counter *target* times and accepts, so the
    guarded form is completable; the length of the witness run (and the size
    of the explored state space) grows with *target*, illustrating why no
    bound on the exploration can work for all machines — the fragment is
    undecidable.
    """
    machine = counting_machine(target)
    return two_counter_to_guarded_form(machine), machine


def qsat_semisoundness_family(
    k: int, block_size: int = 1, num_clauses: int = 4, seed: Optional[int] = 0
) -> tuple[GuardedForm, QBF]:
    """Row (A+, φ−, k) semi-soundness: Theorem 5.3's QSAT₂ₖ reduction."""
    variables = []
    exist_blocks = []
    forall_blocks = []
    for level in range(k):
        exist_blocks.append([f"x{level}_{j}" for j in range(block_size)])
        forall_blocks.append([f"y{level}_{j}" for j in range(block_size)])
        variables.extend(exist_blocks[-1])
        variables.extend(forall_blocks[-1])
    cnf = random_cnf(
        len(variables), num_clauses, clause_size=min(3, len(variables)), seed=seed
    )
    mapping = {f"x{i + 1}": variables[i] for i in range(len(variables))}
    from repro.logic.propositional import Clause, Literal

    remapped = CnfFormula(
        [
            Clause(Literal(mapping[lit.variable], lit.positive) for lit in clause)
            for clause in cnf
        ]
    )
    qbf = qsat_2k(exist_blocks, forall_blocks, remapped)
    return qsat2k_to_semisoundness(qbf), qbf
