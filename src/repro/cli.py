"""Command-line interface for the guarded-forms library.

The CLI exposes the workflows a form designer needs without writing Python:

``guarded-forms catalog``
    list the built-in example forms, or export one to JSON;
``guarded-forms render FORM.json``
    print the schema (Figure 1 style), the access-rule table (Example 3.12
    style) and the completion formula;
``guarded-forms analyze FORM.json``
    decide completability and semi-soundness, printing witnesses and
    counterexamples;
``guarded-forms invariant FORM.json "¬d[a ∧ r]"``
    check that a formula holds at the root of every reachable instance;
``guarded-forms workflow FORM.json --dot out.dot``
    extract the implied workflow, print its diagnostics and optionally export
    it to Graphviz DOT;
``guarded-forms store info STORE.db``
    inspect a persistent state store (row counts, owning form, resumable
    checkpoints);
``guarded-forms campaign run --families all --count 1000 --store c.db``
    fan generated forms through the differential oracle stack, persisting
    per-form outcome/perf rows (see :mod:`repro.campaign`); ``campaign
    report`` prints distributions, outliers and disagreements, ``campaign
    promote`` commits the hardest instances as benchmark workloads;
``guarded-forms trace report TRACE.json``
    summarize a telemetry trace written by ``--trace`` (per-process span
    totals, counters, wall span);
``guarded-forms table1``
    print the paper's complexity table.

``FORM.json`` is the JSON format of :mod:`repro.io.serialization`; built-in
catalogue names (``leave-application``, ``tax-declaration``, …, plus the
``bench-*`` benchgen families) are accepted wherever a file path is expected.

Long explorations can be persisted and resumed: ``analyze``, ``invariant``
and ``workflow`` accept ``--store PATH`` (an sqlite state store holding
interned shapes, canonical representatives, guard evaluations and frontier
checkpoints) and ``--resume`` (continue an interrupted identically
parameterised run instead of restarting).  They also accept ``--workers N``
to expand frontier waves on N worker processes
(:mod:`repro.engine.parallel`); the resulting graphs, verdicts and witnesses
are bit-identical to serial runs, so the flag is purely a throughput knob.
``--resident-budget N`` bounds how many states' representatives, shapes and
memoized expansions stay resident during a store-backed exploration (least
recently used first, transparently reloaded from the store — again
bit-identical, a memory knob only), which is what lets a small-RAM machine
work against a very large store.  A Ctrl-C during a store-backed
exploration checkpoints before exiting, so ``--resume`` always has something
to pick up.  See :mod:`repro.engine.store`.

``analyze``, ``invariant`` and ``workflow`` also share one observability
flag family (:mod:`repro.obs`): ``--trace PATH`` records engine / store /
worker spans into a Chrome trace-event JSON file (load it in Perfetto or
``chrome://tracing``, or summarize it with ``trace report``), ``--metrics``
prints the metric registry snapshot after the run, and ``--profile`` wraps
the command in cProfile.  All three are off by default and the disabled
telemetry path costs one attribute check, so results are bit-identical
either way.

The module is usable both through the ``guarded-forms`` console script and as
``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.completability import decide_completability
from repro.analysis.invariants import always_holds
from repro.analysis.results import AnalysisResult, ExplorationLimits
from repro.analysis.semisoundness import decide_semisoundness
from repro.catalog import CATALOG, resolve_form
from repro.core.fragments import classify
from repro.core.guarded_form import GuardedForm
from repro.engine import (
    STRATEGIES,
    WIRE_VERSION,
    ExplorationEngine,
    ParallelExplorationEngine,
    SqliteStore,
    open_store,
)
from repro.exceptions import CampaignError, ReproError, StoreError
from repro.io.dot import lts_to_dot
from repro.io.render import render_rule_table, render_schema, render_table1
from repro.io.serialization import guarded_form_to_dict, load_guarded_form, save_guarded_form
from repro.obs import (
    Telemetry,
    load_trace_events,
    maybe_profiled,
    render_trace_report,
    summarize_trace,
    use_telemetry,
)
from repro.workflow.extraction import extract_workflow
from repro.workflow.soundness import analyse_workflow

#: Re-exported from :mod:`repro.catalog` (the catalogue's home since the
#: service API made form references a shared concern); importing it from
#: here keeps existing ``from repro.cli import CATALOG`` users working.
_load_form = resolve_form

def _limits_from_args(args: argparse.Namespace) -> ExplorationLimits:
    return ExplorationLimits(
        max_states=args.max_states,
        max_instance_nodes=args.max_instance_nodes,
        max_sibling_copies=args.max_sibling_copies,
    )


def _add_limit_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-states",
        type=int,
        default=50_000,
        help="state budget for the bounded explorer (default: 50000)",
    )
    parser.add_argument(
        "--max-instance-nodes",
        type=int,
        default=40,
        help="largest instance (in nodes) the explorer will expand (default: 40)",
    )
    parser.add_argument(
        "--max-sibling-copies",
        type=int,
        default=None,
        help="cap on same-label siblings under one node (default: unlimited)",
    )
    parser.add_argument(
        "--frontier",
        choices=STRATEGIES,
        default="bfs",
        help="frontier strategy of the exploration engine (default: bfs)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="expand frontier waves on N worker processes (default: 1 = "
        "serial; results are bit-identical either way, see "
        "repro.engine.parallel)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="back the exploration with a persistent sqlite state store at "
        "PATH (created on first use; interned shapes, representatives, guard "
        "evaluations and frontier checkpoints survive the process)",
    )
    parser.add_argument(
        "--resident-budget",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N states' representatives/shapes/expansions "
        "resident during a store-backed exploration, evicting the least "
        "recently used to the store (results are bit-identical to an "
        "unbounded run; requires --store; default: unbounded)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the checkpoint an interrupted identically "
        "parameterised run left in --store instead of restarting",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1000,
        metavar="N",
        help="checkpoint a store-backed exploration every N state "
        "expansions (default: 1000)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR|URL",
        default=None,
        help="share guard/shape/result rows through a KV cache: a directory "
        "(sqlite inside), sqlite://PATH, dir://PATH, or 'memory' (see "
        "repro.cache; REPRO_CACHE sets the same default for every command; "
        "results are bit-identical with or without)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record engine/store/worker telemetry spans into a Chrome "
        "trace-event JSON file at PATH (Perfetto-loadable; summarize with "
        "'trace report PATH'; results are bit-identical with or without)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the telemetry metric snapshot (counters, gauges, "
        "latency histograms) after the run",
    )


@contextmanager
def _cache_scope(args: argparse.Namespace):
    """Open ``--cache`` (when given) as the ambient KV for the command body.

    Without the flag this is a no-op — :func:`repro.cache.default_cache`
    still resolves ``REPRO_CACHE`` on its own, so the env-var path needs no
    scope here.  The flag-opened backend is flushed and closed when the
    command finishes.
    """
    spec = getattr(args, "cache", None)
    if not spec:
        yield None
        return
    from repro.cache import open_kv, use_cache

    cache = open_kv(spec)
    try:
        with use_cache(cache):
            yield cache
    finally:
        cache.close()


@contextmanager
def _telemetry_scope(args: argparse.Namespace, out):
    """Activate a telemetry recorder for a command when asked to.

    With ``--trace PATH`` and/or ``--metrics`` a live
    :class:`~repro.obs.Telemetry` is pushed for the duration of the command
    body, so every engine/store the command builds internally picks it up
    through :func:`~repro.obs.default_telemetry`.  The trace file is written
    (and the metric snapshot printed) even when the body raises — an
    interrupted exploration still leaves an inspectable trace.
    """
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if not trace_path and not want_metrics:
        yield None
        return
    telemetry = Telemetry(process="repro-cli")
    try:
        with use_telemetry(telemetry):
            yield telemetry
    finally:
        if trace_path:
            count = telemetry.write_chrome_trace(trace_path)
            print(f"trace: {count} event(s) written to {trace_path}", file=sys.stderr)
        if want_metrics:
            _print_metrics(telemetry, out)


def _print_metrics(telemetry, out) -> None:
    snapshot = telemetry.metrics.snapshot()
    if not snapshot:
        print("metrics: (none recorded)", file=out)
        return
    print("metrics:", file=out)
    for name in sorted(snapshot):
        if name.endswith("_series"):
            continue  # gauge time series are trace material, not summary
        value = snapshot[name]
        if isinstance(value, dict):
            print(
                f"  {name}: count={value['count']} sum={value['sum']:.6f} "
                f"mean={value['mean']:.6f}",
                file=out,
            )
        elif isinstance(value, float):
            print(f"  {name}: {value:.6f}", file=out)
        else:
            print(f"  {name}: {value}", file=out)


def _check_workers(args: argparse.Namespace) -> None:
    if args.workers < 1:
        raise ReproError(f"--workers must be a positive integer, got {args.workers}")
    budget = getattr(args, "resident_budget", None)
    if budget is not None:
        if budget < 1:
            raise ReproError(
                f"--resident-budget must be a positive integer, got {budget}"
            )
        if args.store is None:
            raise ReproError(
                "--resident-budget needs --store: without a persistent store "
                "there is nowhere to evict resident state to"
            )


def _build_engine(form: GuardedForm, args: argparse.Namespace, store) -> ExplorationEngine:
    """The exploration engine an ``analyze`` run shares across its analyses:
    serial by default, a worker-pool-backed parallel engine for ``--workers
    N`` with N >= 2."""
    _check_workers(args)
    if args.workers > 1:
        return ParallelExplorationEngine(
            form,
            strategy=args.frontier,
            store=store,
            workers=args.workers,
            resident_budget=args.resident_budget,
        )
    return ExplorationEngine(
        form,
        strategy=args.frontier,
        store=store,
        resident_budget=args.resident_budget,
    )


def _describe(result: AnalysisResult, out) -> None:
    print(f"  {result.describe()}", file=out)
    if result.witness_run is not None and result.answer:
        print("  witness run:", file=out)
        for step in result.witness_run.describe():
            print(f"    - {step}", file=out)
    if result.counterexample is not None:
        fields = sorted(
            "/".join(node.label_path())
            for node in result.counterexample.nodes()
            if not node.is_root()
        )
        print(f"  stuck reachable instance: {{{', '.join(fields)}}}", file=out)
        if result.witness_run is not None:
            print("  reached by:", file=out)
            for step in result.witness_run.describe():
                print(f"    - {step}", file=out)


# --------------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------------- #


def _cmd_catalog(args: argparse.Namespace, out) -> int:
    if args.name is None:
        print("built-in forms:", file=out)
        for name in sorted(CATALOG):
            form = CATALOG[name]()
            print(
                f"  {name:34s} depth={form.schema_depth()} "
                f"fields={form.schema.size() - 1}",
                file=out,
            )
        return 0
    if args.name not in CATALOG:
        print(f"unknown catalogue form {args.name!r}", file=sys.stderr)
        return 2
    form = CATALOG[args.name]()
    if args.output is not None:
        save_guarded_form(form, args.output)
        print(f"wrote {args.output}", file=out)
    else:
        import json

        print(json.dumps(guarded_form_to_dict(form), indent=2, sort_keys=True), file=out)
    return 0


def _cmd_render(args: argparse.Namespace, out) -> int:
    form = _load_form(args.form)
    print(render_schema(form.schema, f"Schema of {form.name}"), file=out)
    print("", file=out)
    print(render_rule_table(form.rules, title="Access rules"), file=out)
    print("", file=out)
    print(f"completion formula: {form.completion.to_text()}", file=out)
    initial = form.initial_instance()
    fields = sorted(
        "/".join(node.label_path()) for node in initial.nodes() if not node.is_root()
    )
    print(f"initial instance:   {{{', '.join(fields)}}}" if fields else "initial instance:   (empty)", file=out)
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    profile_path = "analyze.pstats" if getattr(args, "profile", False) else None
    with maybe_profiled(profile_path), _telemetry_scope(args, out), _cache_scope(
        args
    ):
        return _run_analyze(args, out)


def _run_analyze(args: argparse.Namespace, out) -> int:
    form = _load_form(args.form)
    limits = _limits_from_args(args)
    print(f"analysing {form.name!r} (fragment {classify(form).name})", file=out)

    # one engine for both analyses: the semi-soundness pass re-explores the
    # states the completability pass interned, so its guard evaluations are
    # mostly served from the shared cache (and, with --workers, the shared
    # staged worker results)
    store = open_store(args.store, checkpoint_every=args.checkpoint_every)
    engine = _build_engine(form, args, store)
    try:
        completability = decide_completability(
            form,
            limits=limits,
            frontier=args.frontier,
            engine=engine,
            resume=args.resume,
            stop_on_complete=args.stop_on_complete,
        )
        print("completability:", file=out)
        _describe(completability, out)

        exit_code = 0
        if completability.decided and completability.answer is False:
            exit_code = 1
        if not completability.decided:
            exit_code = 3

        if not args.skip_semisoundness:
            semisoundness = decide_semisoundness(
                form,
                limits=limits,
                frontier=args.frontier,
                engine=engine,
                resume=args.resume,
            )
            print("semi-soundness:", file=out)
            _describe(semisoundness, out)
            if semisoundness.decided and semisoundness.answer is False:
                exit_code = max(exit_code, 1)
            if not semisoundness.decided:
                exit_code = max(exit_code, 3)
        stats = engine.stats_snapshot()
        print(
            f"engine ({args.frontier} frontier): "
            f"{stats['formula_evaluations']} formula evaluations, "
            f"{stats['formula_evaluations_saved']} served from guard cache "
            f"({stats['guard_cache_hit_rate']:.1%} hit rate), "
            f"{stats['intern_interned_states']} interned shapes",
            file=out,
        )
        if args.workers > 1:
            print(
                f"workers ({args.workers} processes): "
                f"{stats['states_prefetched']} states prefetched in "
                f"{stats['waves_dispatched']} waves, "
                f"{stats['expansions_adopted']} expansions adopted, "
                f"{stats['worker_guard_entries_merged']} guard entries merged",
                file=out,
            )
            if stats["wire_frames_received"]:
                print(
                    f"wire (v{WIRE_VERSION} frames): "
                    f"{stats['wire_bytes_received']} bytes in "
                    f"{stats['wire_frames_received']} frames, "
                    f"{stats['wire_bytes_per_candidate']} bytes/candidate, "
                    f"{stats['wire_dedup_hit_rate']:.1%} shape-dedup hit rate, "
                    f"decoded in {stats['wire_decode_seconds']}s",
                    file=out,
                )
        if store.persistent:
            print(
                f"store ({args.store}): "
                f"{stats['store_rows_written']} rows written in "
                f"{stats['store_flushes']} flushes, "
                f"{stats['store_rows_read']} rows read, "
                f"{stats['store_checkpoint_saves']} checkpoints"
                + (", resumed" if stats["explorations_resumed"] else ""),
                file=out,
            )
            print(
                f"residency: {stats['reps_resident']} representatives / "
                f"{stats['states_resident']} shapes resident"
                + (
                    f" (budget {stats['resident_budget']}, "
                    f"{stats['reps_evicted']} evicted)"
                    if stats["resident_budget"] is not None
                    else ""
                )
                + (
                    f", {stats['hydration_rows_skipped']} persisted shape "
                    "rows never hydrated"
                    if stats["hydration_rows_skipped"]
                    else ""
                ),
                file=out,
            )
    except KeyboardInterrupt:
        # the engine checkpointed the in-flight exploration before re-raising
        _print_interrupt_hint(args)
        return 130
    finally:
        engine.shutdown_workers()
        store.close()
    return exit_code


def _print_interrupt_hint(args: argparse.Namespace) -> None:
    if args.store is not None:
        print(
            f"\ninterrupted; progress checkpointed to {args.store} — "
            "re-run with --resume to continue",
            file=sys.stderr,
        )


def _cmd_invariant(args: argparse.Namespace, out) -> int:
    form = _load_form(args.form)
    _check_workers(args)
    store = open_store(args.store, checkpoint_every=args.checkpoint_every)
    try:
        with _telemetry_scope(args, out), _cache_scope(args):
            result = always_holds(
                form,
                args.formula,
                limits=_limits_from_args(args),
                frontier=args.frontier,
                store=store,
                resume=args.resume,
                workers=args.workers,
                resident_budget=args.resident_budget,
            )
    except KeyboardInterrupt:
        _print_interrupt_hint(args)
        return 130
    finally:
        store.close()
    print(f"invariant {args.formula!r} on {form.name!r}:", file=out)
    if not result.decided:
        print("  undecided within the exploration limits", file=out)
        return 3
    if result.answer:
        print("  holds on every reachable instance", file=out)
        return 0
    print("  VIOLATED; a run reaching a violating instance:", file=out)
    for step in result.witness_run.describe():
        print(f"    - {step}", file=out)
    return 1


def _cmd_workflow(args: argparse.Namespace, out) -> int:
    form = _load_form(args.form)
    _check_workers(args)
    store = open_store(args.store, checkpoint_every=args.checkpoint_every)
    try:
        with _telemetry_scope(args, out), _cache_scope(args):
            lts = extract_workflow(
                form,
                limits=_limits_from_args(args),
                frontier=args.frontier,
                store=store,
                resume=args.resume,
                workers=args.workers,
                resident_budget=args.resident_budget,
            )
    except KeyboardInterrupt:
        _print_interrupt_hint(args)
        return 130
    finally:
        store.close()
    report = analyse_workflow(lts)
    meta = lts.state_annotations.get("__meta__", {})
    print(f"workflow implied by {form.name!r}:", file=out)
    print(f"  states      : {len(lts)}", file=out)
    print(f"  transitions : {len(lts.transitions)}", file=out)
    print(f"  complete    : {len(lts.accepting)}", file=out)
    print(f"  exhaustive  : {not meta.get('truncated', False)}", file=out)
    print(f"  diagnostics : {report.summary()}", file=out)
    if args.dot is not None:
        Path(args.dot).write_text(lts_to_dot(lts, form.name), encoding="utf-8")
        print(f"  DOT written to {args.dot}", file=out)
    return 0 if report.semi_sound else 1


def _cmd_table1(args: argparse.Namespace, out) -> int:
    del args
    print(render_table1(), file=out)
    return 0


def _cmd_store_info(args: argparse.Namespace, out) -> int:
    path = Path(args.store)
    if not path.exists():
        raise StoreError(f"no state store at {args.store}")
    store = SqliteStore(path)
    try:
        info = store.describe()
    finally:
        store.close()
    print(f"state store {args.store}:", file=out)
    print(f"  size on disk          : {path.stat().st_size} bytes", file=out)
    print(f"  guarded form          : {info['form_name'] or '(none recorded)'}", file=out)
    fingerprint = info["form_fingerprint"]
    print(f"  form fingerprint      : {fingerprint[:16] + '…' if fingerprint else '(none)'}", file=out)
    print(f"  layout version        : {info['schema_version'] or '(none)'}", file=out)
    print(f"  interned shapes       : {info['interned_shapes']}", file=out)
    print(f"  representatives       : {info['representatives']}", file=out)
    print(f"  guard entries         : {info['guard_entries']}", file=out)
    print(f"  checkpoints           : {info['checkpoints']}", file=out)
    print(f"  resumable (unfinished): {info['resumable_checkpoints']}", file=out)
    _print_cache_info(args, out)
    return 0


def _print_cache_info(args: argparse.Namespace, out) -> None:
    """Append the KV cache view to ``store info`` when a cache is reachable
    (``--cache`` or ``REPRO_CACHE``): entry counts per namespace plus this
    handle's counter snapshot, labeled by namespace."""
    from repro.cache import default_cache, open_kv

    spec = getattr(args, "cache", None)
    cache = open_kv(spec) if spec else default_cache()
    if cache is None:
        return
    try:
        stats = cache.stats()
        print(f"cache ({stats['spec']}):", file=out)
        for namespace, counters in sorted(stats["namespaces"].items()):
            entries = sum(1 for _ in cache.scan(namespace))
            counter_text = " ".join(
                f"{name}={counters[name]}"
                for name in ("hits", "misses", "puts", "evictions", "expirations")
            )
            print(
                f"  {namespace:<10}: {entries} entries  [{counter_text}]",
                file=out,
            )
    finally:
        if spec:
            cache.close()


def _cmd_trace_report(args: argparse.Namespace, out) -> int:
    path = Path(args.trace_file)
    if not path.exists():
        raise ReproError(f"no trace file at {args.trace_file}")
    try:
        events = load_trace_events(path)
    except (ValueError, OSError) as exc:
        raise ReproError(f"cannot parse {args.trace_file}: {exc}") from exc
    if not events:
        raise ReproError(f"no trace events in {args.trace_file}")
    print(render_trace_report(summarize_trace(events)), file=out)
    return 0


def _cmd_campaign_run(args: argparse.Namespace, out) -> int:
    from repro.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        families=tuple(args.families.split(",")),
        count=args.count,
        base_seed=args.base_seed,
        oracles=tuple(args.oracles.split(",")),
        smoke=args.smoke,
        workers=args.workers,
        batch_size=args.batch_size,
        heartbeat_every=args.heartbeat_every,
        stall_multiple=args.stall_multiple,
        submit_url=args.submit_url,
    )

    def progress(done: int, total: int) -> None:
        print(f"  {done}/{total} forms", file=out)
        out.flush() if hasattr(out, "flush") else None

    def on_event(event: dict) -> None:
        print(json.dumps(event, sort_keys=True), file=out)
        out.flush() if hasattr(out, "flush") else None

    summary = run_campaign(
        config,
        args.store,
        artifacts_dir=Path(args.artifacts) if args.artifacts else None,
        progress=progress if args.progress else None,
        max_batches=args.max_batches,
        on_event=on_event if (args.heartbeat_every or args.progress) else None,
    )
    print(
        f"campaign: {summary.total} forms ({summary.skipped} already in store, "
        f"{summary.executed} executed)"
        + (" [interrupted]" if summary.interrupted else ""),
        file=out,
    )
    if summary.stalls:
        print(
            f"{len(summary.stalls)} form(s) exceeded {config.stall_multiple}x "
            "their family's median wall clock (see stall events above)",
            file=out,
        )
    if summary.disagreements:
        print(
            f"{len(summary.disagreements)} ORACLE DISAGREEMENT(S); artifacts:",
            file=out,
        )
        for path in summary.artifacts:
            print(f"  {path}", file=out)
        return 1
    print("all oracles agreed", file=out)
    return 0


def _cmd_campaign_report(args: argparse.Namespace, out) -> int:
    from repro.campaign import build_report, render_report

    if not Path(args.store).exists():
        raise CampaignError(f"no campaign store at {args.store}")
    report = build_report(args.store, include_perf=not args.no_perf)
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}", file=out)
    print(render_report(report), file=out)
    return 1 if report["total_disagreements"] else 0


def _cmd_campaign_promote(args: argparse.Namespace, out) -> int:
    from repro.campaign import promote_outliers

    if not Path(args.store).exists():
        raise CampaignError(f"no campaign store at {args.store}")
    written = promote_outliers(
        args.store,
        args.dest,
        per_family=args.per_family,
        families=args.families.split(",") if args.families else None,
    )
    for path in written:
        print(f"promoted {path}", file=out)
    print(f"{len(written)} workload(s) in {args.dest}", file=out)
    return 0



# --------------------------------------------------------------------------- #
# service commands
# --------------------------------------------------------------------------- #


def _cmd_serve(args: argparse.Namespace, out) -> int:
    import signal

    from repro.service import PodServer, ServerConfig

    config = ServerConfig(
        store_dir=args.store_dir,
        host=args.host,
        port=args.port,
        capacity_kb=args.capacity_kb,
        overcommit=args.overcommit,
        default_budget_kb=args.default_budget_kb,
        workers=args.job_workers,
        slice_steps=args.slice_steps,
        max_queue=args.max_queue,
        max_evictions=args.max_evictions,
        stall_multiple=args.stall_multiple,
        stall_floor_seconds=args.stall_floor_seconds,
        trace_path=args.trace,
        cache=args.cache,
    )
    server = PodServer(config)
    server.start()
    print(
        f"pod server listening on http://{args.host}:{server.port} "
        f"(store-dir {args.store_dir}, capacity {args.capacity_kb} KiB "
        f"× {args.overcommit} overcommit, {args.job_workers} job workers)",
        file=out,
        flush=True,
    )
    handler = lambda signum, frame: server.request_shutdown()  # noqa: E731
    signal.signal(signal.SIGTERM, handler)
    signal.signal(signal.SIGINT, handler)
    server.wait()
    server.shutdown()
    if args.trace:
        print(f"trace written to {args.trace}", file=out)
    print("pod server stopped", file=out)
    return 0


def _service_client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(args.url, timeout=args.http_timeout)


def _request_from_args(args: argparse.Namespace):
    from repro.service import AnalysisRequest

    return AnalysisRequest(
        form=args.form,
        kind=args.kind,
        formula=args.formula,
        strategy=args.strategy,
        frontier=args.frontier,
        workers=args.workers,
        max_states=args.max_states,
        max_instance_nodes=args.max_instance_nodes,
        max_sibling_copies=args.max_sibling_copies,
        resident_budget=args.resident_budget,
        store=args.store,
        resume=args.resume,
        stop_on_complete=args.stop_on_complete,
        step_limit=args.step_limit,
        checkpoint_every=args.checkpoint_every,
        budget_kb=args.budget_kb,
    )


def _print_job(job: dict, out) -> None:
    line = f"{job['job_id']}: {job['state']}"
    extras = []
    if job.get("states_explored"):
        extras.append(f"{job['states_explored']} states explored")
    if job.get("evictions"):
        extras.append(f"{job['evictions']} eviction(s)")
    if job.get("error"):
        extras.append(f"error[{job['error'].get('code', '?')}]")
    if extras:
        line += " (" + ", ".join(extras) + ")"
    print(line, file=out)


def _print_wire_result(result: dict, out) -> None:
    """Render an ``analysis-result/1`` dict like the local commands do."""
    if not result.get("decided"):
        verdict = "undecided (limits reached)"
    elif result.get("answer") is None:
        verdict = "extracted"
    else:
        verdict = "yes" if result["answer"] else "no"
    print(f"{result['problem']} [{result['procedure']}]: {verdict}", file=out)
    stats = result.get("stats") or {}
    for key in (
        "states_explored",
        "canonical_states",
        "states",
        "transitions",
        "suspicious_states",
    ):
        if key in stats:
            print(f"  {key}: {stats[key]}", file=out)
    if result.get("witness_run"):
        print(f"  witness run: {len(result['witness_run'])} update(s)", file=out)


def _wire_result_exit(result: dict) -> int:
    """Map a wire result onto the CLI's exit-code convention."""
    if not result.get("decided"):
        return 3
    return 1 if result.get("answer") is False else 0


def _fetch_and_print_result(client, job_id: str, args, out) -> int:
    result = client.result(job_id)
    json_path = getattr(args, "json", None)
    if json_path:
        import json

        Path(json_path).write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {json_path}", file=out)
    _print_wire_result(result, out)
    return _wire_result_exit(result)


def _cmd_submit(args: argparse.Namespace, out) -> int:
    client = _service_client(args)
    job = client.submit(_request_from_args(args))
    _print_job(job, out)
    if not args.wait:
        return 0
    final = client.wait(
        job["job_id"], poll_seconds=args.poll_seconds, timeout=args.timeout
    )
    _print_job(final, out)
    return _fetch_and_print_result(client, final["job_id"], args, out)


def _cmd_status(args: argparse.Namespace, out) -> int:
    _print_job(_service_client(args).status(args.job_id), out)
    return 0


def _cmd_result(args: argparse.Namespace, out) -> int:
    return _fetch_and_print_result(_service_client(args), args.job_id, args, out)


def _cmd_cancel(args: argparse.Namespace, out) -> int:
    _print_job(_service_client(args).cancel(args.job_id), out)
    return 0


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="guarded-forms",
        description="Analyse workflows implied by instance-dependent access rules (PODS 2006).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    catalog = subparsers.add_parser("catalog", help="list or export the built-in example forms")
    catalog.add_argument("name", nargs="?", help="catalogue form to export")
    catalog.add_argument("--output", "-o", help="write the form as JSON to this file")
    catalog.set_defaults(handler=_cmd_catalog)

    render = subparsers.add_parser("render", help="print a form's schema, rules and completion formula")
    render.add_argument("form", help="catalogue name or JSON file")
    render.set_defaults(handler=_cmd_render)

    store_epilog = (
        "A --store PATH sqlite database persists the exploration working set "
        "(interned shapes, canonical representatives, guard evaluations) and "
        "frontier checkpoints.  Interrupt with Ctrl-C at any point and re-run "
        "the same command with --resume to continue where it stopped; "
        "'store info PATH' inspects what a store holds."
    )

    analyze = subparsers.add_parser(
        "analyze",
        help="decide completability and semi-soundness",
        epilog=store_epilog,
    )
    analyze.add_argument("form", help="catalogue name or JSON file")
    analyze.add_argument(
        "--skip-semisoundness", action="store_true", help="only check completability"
    )
    analyze.add_argument(
        "--stop-on-complete",
        action="store_true",
        help="let the completability exploration return on the first "
        "complete state instead of exhausting the budget (early exit; the "
        "verdict is unchanged, only the effort shrinks)",
    )
    analyze.add_argument(
        "--profile",
        action="store_true",
        help="profile the analysis under cProfile: write analyze.pstats to "
        "the working directory and print the top 20 functions by cumulative "
        "time to stderr",
    )
    _add_limit_arguments(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    invariant = subparsers.add_parser(
        "invariant",
        help="check an invariant on every reachable instance",
        epilog=store_epilog + "  (The store binds to the invariant's probe "
        "form, so use one store file per checked formula.)",
    )
    invariant.add_argument("form", help="catalogue name or JSON file")
    invariant.add_argument("formula", help="the invariant formula (evaluated at the root)")
    _add_limit_arguments(invariant)
    invariant.set_defaults(handler=_cmd_invariant)

    workflow = subparsers.add_parser(
        "workflow",
        help="extract and analyse the implied workflow",
        epilog=store_epilog,
    )
    workflow.add_argument("form", help="catalogue name or JSON file")
    workflow.add_argument("--dot", help="write the workflow as Graphviz DOT to this file")
    _add_limit_arguments(workflow)
    workflow.set_defaults(handler=_cmd_workflow)

    store = subparsers.add_parser(
        "store", help="inspect persistent exploration state stores"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_info = store_sub.add_parser(
        "info", help="print a store's row counts, owning form and checkpoints"
    )
    store_info.add_argument("store", help="path to the sqlite state store")
    store_info.add_argument(
        "--cache",
        metavar="DIR|URL",
        default=None,
        help="also report this KV cache's per-namespace entry and counter "
        "view (default: REPRO_CACHE when set)",
    )
    store_info.set_defaults(handler=_cmd_store_info)

    campaign = subparsers.add_parser(
        "campaign",
        help="run differential scenario campaigns over generated forms",
        epilog=(
            "A campaign fans --count generated forms (round-robined over "
            "--families, seeded deterministically) through a stack of "
            "differential oracles and persists one outcome/perf row per form "
            "into --store.  Interrupt at any point and re-run the identical "
            "command: committed forms are skipped, the rest re-run, and the "
            "final store is the same as an uninterrupted run's."
        ),
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="drain a generated-form queue through the oracle stack"
    )
    campaign_run.add_argument(
        "--families",
        default="all",
        help="comma-separated campaign families, or 'all' (default)",
    )
    campaign_run.add_argument(
        "--count", type=int, default=100, help="number of forms (default 100)"
    )
    campaign_run.add_argument(
        "--base-seed", type=int, default=0, help="first form seed (default 0)"
    )
    campaign_run.add_argument(
        "--oracles",
        default=",".join(
            ("legacy", "serial-parallel", "resume", "budget", "codec", "cache")
        ),
        help="comma-separated oracle stack (default: all oracles)",
    )
    campaign_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan forms across N processes (default 1; row contents are "
        "identical at any worker count)",
    )
    campaign_run.add_argument(
        "--smoke",
        action="store_true",
        help="smoke profile: tighter exploration limits and sampled "
        "worker-pool oracle, for high form counts",
    )
    campaign_run.add_argument(
        "--batch-size",
        type=int,
        default=25,
        help="forms per store transaction / resume point (default 25)",
    )
    campaign_run.add_argument(
        "--max-batches",
        type=int,
        default=None,
        help="stop after N batches, leaving a resumable store",
    )
    campaign_run.add_argument(
        "--store", required=True, help="sqlite campaign store path"
    )
    campaign_run.add_argument(
        "--artifacts",
        default=None,
        help="disagreement artifact directory (default: <store>.artifacts)",
    )
    campaign_run.add_argument(
        "--progress", action="store_true", help="print per-batch progress"
    )
    campaign_run.add_argument(
        "--heartbeat-every",
        type=int,
        default=0,
        metavar="N",
        help="print a structured JSON heartbeat line every N completed "
        "forms (done/total/queue depth/elapsed; default 0 = off)",
    )
    campaign_run.add_argument(
        "--submit-url",
        default=None,
        metavar="URL",
        help="drain the campaign through a pod server at URL instead of "
        "in-process (forms are inlined; failed jobs commit as 'service' "
        "disagreements)",
    )
    campaign_run.add_argument(
        "--stall-multiple",
        type=float,
        default=4.0,
        metavar="X",
        help="flag a form as stalled when its wall clock exceeds X times "
        "its family's median (needs 3 prior samples; default 4.0)",
    )
    campaign_run.set_defaults(handler=_cmd_campaign_run)

    campaign_report = campaign_sub.add_parser(
        "report",
        help="per-family distributions, outliers and disagreements of a store",
    )
    campaign_report.add_argument("store", help="sqlite campaign store path")
    campaign_report.add_argument(
        "--json", default=None, help="also write the full report as JSON here"
    )
    campaign_report.add_argument(
        "--no-perf",
        action="store_true",
        help="omit machine-dependent perf sections (deterministic report)",
    )
    campaign_report.set_defaults(handler=_cmd_campaign_report)

    campaign_promote = campaign_sub.add_parser(
        "promote",
        help="commit the hardest agreeing instances as benchmark workloads",
    )
    campaign_promote.add_argument("store", help="sqlite campaign store path")
    campaign_promote.add_argument(
        "dest", help="corpus directory (e.g. benchmarks/campaign_corpus)"
    )
    campaign_promote.add_argument(
        "--per-family",
        type=int,
        default=1,
        help="instances to promote per family (default 1)",
    )
    campaign_promote.add_argument(
        "--families",
        default=None,
        help="restrict promotion to these comma-separated families",
    )
    campaign_promote.set_defaults(handler=_cmd_campaign_promote)

    serve = subparsers.add_parser(
        "serve",
        help="run the analysis pod server",
        epilog=(
            "The pod accepts analysis-request/1 jobs over HTTP "
            "(POST /v1/jobs), queues them durably under --store-dir, and "
            "admits them against a declared-budget capacity model: a job "
            "runs only while the sum of admitted budgets stays within "
            "--capacity-kb × --overcommit.  SIGTERM/SIGINT shut down "
            "gracefully: running jobs re-queue at their next slice "
            "checkpoint and a restarted server resumes them."
        ),
    )
    serve.add_argument("--store-dir", required=True, metavar="DIR",
                       help="directory for the job queue and per-job engine stores")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8350,
                       help="bind port (default 8350; 0 picks an ephemeral port, printed on startup)")
    serve.add_argument("--capacity-kb", type=int, default=262_144, metavar="N",
                       help="pod resident capacity in KiB (default 262144 = 256 MiB)")
    serve.add_argument("--overcommit", type=float, default=1.0, metavar="R",
                       help="admit declared budgets up to capacity × R (default 1.0)")
    serve.add_argument("--default-budget-kb", type=int, default=65_536, metavar="N",
                       help="budget accounted for jobs that declare none (default 65536)")
    serve.add_argument("--job-workers", type=int, default=2, metavar="N",
                       help="worker threads draining the job queue (default 2)")
    serve.add_argument("--slice-steps", type=int, default=2_000, metavar="N",
                       help="states explored per job slice between checkpoint/cancel/"
                       "eviction points (default 2000)")
    serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="queued-job cap; submissions beyond it get 429 (default 64)")
    serve.add_argument("--max-evictions", type=int, default=3, metavar="N",
                       help="stall evictions tolerated before a job fails (default 3)")
    serve.add_argument("--stall-multiple", type=float, default=8.0, metavar="X",
                       help="evict a job whose slice exceeds X times its family's "
                       "median slice time (default 8.0)")
    serve.add_argument("--stall-floor-seconds", type=float, default=2.0, metavar="S",
                       help="slices faster than S seconds never count as stalled (default 2.0)")
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="write the server's merged Chrome trace to PATH on shutdown")
    serve.add_argument("--cache", metavar="DIR|URL", default=None,
                       help="KV cache shared by every job this pod runs — guard rows, "
                       "shape rows and whole memoized results (see repro.cache; "
                       "default: REPRO_CACHE, else none)")
    serve.set_defaults(handler=_cmd_serve)

    def _add_client_arguments(client_parser: argparse.ArgumentParser) -> None:
        client_parser.add_argument(
            "--url", required=True, metavar="URL",
            help="pod server base URL (e.g. http://127.0.0.1:8350)",
        )
        client_parser.add_argument(
            "--http-timeout", type=float, default=30.0, metavar="S",
            help="per-request HTTP timeout in seconds (default 30)",
        )

    submit = subparsers.add_parser(
        "submit",
        help="submit an analysis job to a pod server",
        epilog=(
            "Builds one analysis-request/1 payload from the flags — the same "
            "object the library dispatchers accept via request= — and POSTs "
            "it.  A form file path is inlined client-side, so the server "
            "never needs this machine's filesystem; --store names a store "
            "under the server's --store-dir.  With --wait the command polls "
            "to completion and exits like 'analyze' does: 0 yes, 1 no, "
            "3 undecided, 2 on errors (including failed jobs)."
        ),
    )
    submit.add_argument("form", help="catalogue name or JSON form file (inlined before upload)")
    submit.add_argument("--kind", default="completability",
                        choices=("completability", "semisoundness", "invariant", "reach", "workflow"),
                        help="analysis verb (default completability)")
    submit.add_argument("--formula", default=None,
                        help="formula for --kind invariant/reach")
    submit.add_argument("--strategy", default="auto",
                        choices=("auto", "saturation", "depth1", "bounded"),
                        help="procedure selector for completability/semisoundness (default auto)")
    submit.add_argument("--frontier", choices=STRATEGIES, default="bfs",
                        help="frontier strategy (default bfs)")
    submit.add_argument("--workers", type=int, default=1, metavar="N",
                        help="frontier worker processes on the server (default 1)")
    submit.add_argument("--max-states", type=int, default=50_000,
                        help="state budget (default 50000)")
    submit.add_argument("--max-instance-nodes", type=int, default=40,
                        help="largest instance expanded (default 40)")
    submit.add_argument("--max-sibling-copies", type=int, default=None,
                        help="same-label sibling cap (default unlimited)")
    submit.add_argument("--resident-budget", type=int, default=None, metavar="N",
                        help="server-side resident-state cap (requires --store)")
    submit.add_argument("--store", default=None, metavar="NAME",
                        help="name of a persistent store under the server's --store-dir "
                        "(lets resubmissions share caches; default: per-job store)")
    submit.add_argument("--resume", action="store_true",
                        help="continue from the named store's checkpoint")
    submit.add_argument("--stop-on-complete", action="store_true",
                        help="early-exit completability on the first complete state")
    submit.add_argument("--step-limit", type=int, default=None, metavar="N",
                        help="override the server's per-slice step budget for this job")
    submit.add_argument("--checkpoint-every", type=int, default=1000, metavar="N",
                        help="store checkpoint cadence (default 1000)")
    submit.add_argument("--budget-kb", type=int, default=None, metavar="N",
                        help="declared admission budget in KiB (default: the "
                        "server's --default-budget-kb)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job is terminal and print its result")
    submit.add_argument("--poll-seconds", type=float, default=0.2, metavar="S",
                        help="--wait polling interval (default 0.2)")
    submit.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="--wait deadline in seconds (default: none)")
    submit.add_argument("--json", default=None, metavar="PATH",
                        help="with --wait: also write the raw analysis-result/1 JSON here")
    _add_client_arguments(submit)
    submit.set_defaults(handler=_cmd_submit)

    status = subparsers.add_parser("status", help="print a submitted job's state")
    status.add_argument("job_id", help="job id returned by submit")
    _add_client_arguments(status)
    status.set_defaults(handler=_cmd_status)

    result = subparsers.add_parser(
        "result", help="fetch and print a finished job's analysis result"
    )
    result.add_argument("job_id", help="job id returned by submit")
    result.add_argument("--json", default=None, metavar="PATH",
                        help="also write the raw analysis-result/1 JSON here")
    _add_client_arguments(result)
    result.set_defaults(handler=_cmd_result)

    cancel = subparsers.add_parser(
        "cancel",
        help="cancel a job (immediately when queued, at the next slice when running)",
    )
    cancel.add_argument("job_id", help="job id returned by submit")
    _add_client_arguments(cancel)
    cancel.set_defaults(handler=_cmd_cancel)

    trace = subparsers.add_parser(
        "trace", help="inspect telemetry traces written by --trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report",
        help="summarize a Chrome trace-event file (per-process span totals, "
        "counters, wall span)",
    )
    trace_report.add_argument("trace_file", help="path to the trace JSON file")
    trace_report.set_defaults(handler=_cmd_trace_report)

    table1 = subparsers.add_parser("table1", help="print the paper's Table 1")
    table1.set_defaults(handler=_cmd_table1)

    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 = analysis positive / command succeeded, 1 = the analysed
    property fails, 2 = usage error, 3 = the analysis was inconclusive within
    the configured limits.
    """
    out = out if out is not None else sys.stdout
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse handles --help / usage errors
        return int(exc.code or 0)
    try:
        return args.handler(args, out)
    except ReproError as error:
        from repro.service.errors import classify_error

        code, _, retryable = classify_error(error)
        suffix = " (retryable)" if retryable else ""
        print(f"error[{code}]: {error}{suffix}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
