"""A DPLL SAT solver (independent oracle for the SAT reductions).

Theorems 5.1 and 5.6 reduce SAT to completability / non-semi-soundness of
guarded forms.  To validate those reductions the test-suite compares the
guarded-form decision procedures against this solver, which is implemented
independently of the rest of the library (unit propagation + pure-literal
elimination + splitting).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.logic.propositional import CnfFormula

Assignment = dict[str, bool]

#: Internal clause representation: a frozenset of (variable, polarity) pairs.
_FrozenClause = frozenset


def dpll_satisfiable(cnf: CnfFormula) -> Optional[Assignment]:
    """Return a satisfying assignment of *cnf*, or ``None`` if unsatisfiable.

    Variables not mentioned in the formula are absent from the returned
    assignment (callers should treat missing variables as "don't care").
    """
    clauses = [
        frozenset((lit.variable, lit.positive) for lit in clause) for clause in cnf
    ]
    assignment: Assignment = {}
    result = _dpll(clauses, assignment)
    return result


def is_satisfiable(cnf: CnfFormula) -> bool:
    """Boolean form of :func:`dpll_satisfiable`."""
    return dpll_satisfiable(cnf) is not None


def _dpll(clauses: list[_FrozenClause], assignment: Assignment) -> Optional[Assignment]:
    clauses = _simplify(clauses, assignment)
    if clauses is None:
        return None
    if not clauses:
        return dict(assignment)

    # unit propagation
    unit = next((clause for clause in clauses if len(clause) == 1), None)
    if unit is not None:
        variable, polarity = next(iter(unit))
        assignment[variable] = polarity
        result = _dpll(clauses, assignment)
        if result is None:
            del assignment[variable]
        return result

    # pure literal elimination
    polarities: dict[str, set[bool]] = {}
    for clause in clauses:
        for variable, polarity in clause:
            polarities.setdefault(variable, set()).add(polarity)
    for variable, seen in polarities.items():
        if len(seen) == 1:
            assignment[variable] = next(iter(seen))
            result = _dpll(clauses, assignment)
            if result is None:
                del assignment[variable]
            return result

    # splitting on the most frequent variable
    counts: dict[str, int] = {}
    for clause in clauses:
        for variable, _ in clause:
            counts[variable] = counts.get(variable, 0) + 1
    variable = max(counts, key=counts.get)  # type: ignore[arg-type]
    for value in (True, False):
        assignment[variable] = value
        result = _dpll(clauses, assignment)
        if result is not None:
            return result
        del assignment[variable]
    return None


def _simplify(
    clauses: list[_FrozenClause], assignment: Assignment
) -> Optional[list[_FrozenClause]]:
    """Apply *assignment* to *clauses*; return ``None`` on an empty clause."""
    simplified: list[_FrozenClause] = []
    for clause in clauses:
        satisfied = False
        remaining = []
        for variable, polarity in clause:
            if variable in assignment:
                if assignment[variable] == polarity:
                    satisfied = True
                    break
            else:
                remaining.append((variable, polarity))
        if satisfied:
            continue
        if not remaining:
            return None
        simplified.append(frozenset(remaining))
    return simplified


def enumerate_models(cnf: CnfFormula, variables: Optional[list[str]] = None) -> Iterator[Assignment]:
    """Enumerate *all* total assignments over *variables* satisfying *cnf*.

    Brute force (2^n); used in tests to cross-check the solver and the
    guarded-form reductions on small inputs.
    """
    names = sorted(variables if variables is not None else cnf.variables())
    total = len(names)
    for mask in range(1 << total):
        assignment = {name: bool(mask >> i & 1) for i, name in enumerate(names)}
        if cnf.satisfied_by(assignment):
            yield assignment


def count_models(cnf: CnfFormula, variables: Optional[list[str]] = None) -> int:
    """Number of satisfying total assignments (brute force; tests only)."""
    return sum(1 for _ in enumerate_models(cnf, variables))
