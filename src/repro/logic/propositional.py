"""Propositional formulas and CNF (substrate for Theorems 5.1 and 5.6).

Two representations are provided:

* a general propositional formula AST (:class:`PropFormula` and friends),
  used when translating guarded-form formulas over depth-1 instances into
  propositional logic;
* a clausal representation (:class:`CnfFormula`), used by the SAT reductions
  of the paper (which start from 3-CNF) and by the DPLL solver.

A seeded random 3-CNF generator (:func:`random_cnf`) supplies benchmark
workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ReductionError

Assignment = Mapping[str, bool]


# --------------------------------------------------------------------------- #
# formula AST
# --------------------------------------------------------------------------- #


class PropFormula:
    """Base class of propositional formulas."""

    def evaluate(self, assignment: Assignment) -> bool:
        """Truth value under *assignment* (missing variables default to False)."""
        raise NotImplementedError

    def variables(self) -> set[str]:
        """The set of variable names occurring in the formula."""
        raise NotImplementedError

    def __and__(self, other: "PropFormula") -> "PropAnd":
        return PropAnd(self, other)

    def __or__(self, other: "PropFormula") -> "PropOr":
        return PropOr(self, other)

    def __invert__(self) -> "PropNot":
        return PropNot(self)


@dataclass(frozen=True)
class PropTrue(PropFormula):
    """The constant true."""

    def evaluate(self, assignment: Assignment) -> bool:
        return True

    def variables(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class PropFalse(PropFormula):
    """The constant false."""

    def evaluate(self, assignment: Assignment) -> bool:
        return False

    def variables(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class PropAtom(PropFormula):
    """A propositional variable."""

    name: str

    def evaluate(self, assignment: Assignment) -> bool:
        return bool(assignment.get(self.name, False))

    def variables(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class PropNot(PropFormula):
    """Negation."""

    operand: PropFormula

    def evaluate(self, assignment: Assignment) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> set[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class PropAnd(PropFormula):
    """Conjunction."""

    left: PropFormula
    right: PropFormula

    def evaluate(self, assignment: Assignment) -> bool:
        return self.left.evaluate(assignment) and self.right.evaluate(assignment)

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class PropOr(PropFormula):
    """Disjunction."""

    left: PropFormula
    right: PropFormula

    def evaluate(self, assignment: Assignment) -> bool:
        return self.left.evaluate(assignment) or self.right.evaluate(assignment)

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()


def prop_conj(formulas: Iterable[PropFormula]) -> PropFormula:
    """Conjunction of an iterable of formulas (true when empty)."""
    result: PropFormula | None = None
    for formula in formulas:
        result = formula if result is None else PropAnd(result, formula)
    return result if result is not None else PropTrue()


def prop_disj(formulas: Iterable[PropFormula]) -> PropFormula:
    """Disjunction of an iterable of formulas (false when empty)."""
    result: PropFormula | None = None
    for formula in formulas:
        result = formula if result is None else PropOr(result, formula)
    return result if result is not None else PropFalse()


# --------------------------------------------------------------------------- #
# CNF
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Literal:
    """A propositional literal: a variable or its negation."""

    variable: str
    positive: bool = True

    def negate(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.variable, not self.positive)

    def satisfied_by(self, assignment: Assignment) -> bool:
        """Truth of the literal under *assignment* (missing → False)."""
        value = bool(assignment.get(self.variable, False))
        return value if self.positive else not value

    def __str__(self) -> str:
        return self.variable if self.positive else f"¬{self.variable}"


class Clause:
    """A disjunction of literals."""

    def __init__(self, literals: Iterable[Literal]) -> None:
        self.literals: tuple[Literal, ...] = tuple(literals)
        if not self.literals:
            raise ReductionError("a clause needs at least one literal")

    def variables(self) -> set[str]:
        return {literal.variable for literal in self.literals}

    def satisfied_by(self, assignment: Assignment) -> bool:
        return any(literal.satisfied_by(assignment) for literal in self.literals)

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(lit) for lit in self.literals) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clause({self})"


class CnfFormula:
    """A propositional formula in conjunctive normal form."""

    def __init__(self, clauses: Iterable[Clause]) -> None:
        self.clauses: tuple[Clause, ...] = tuple(clauses)

    @classmethod
    def from_ints(cls, clause_lists: Sequence[Sequence[int]], prefix: str = "x") -> "CnfFormula":
        """Build a CNF from DIMACS-style integer clauses.

        Positive integer ``i`` denotes the variable ``f"{prefix}{i}"``; a
        negative integer denotes its negation.
        """
        clauses = []
        for ints in clause_lists:
            literals = []
            for value in ints:
                if value == 0:
                    raise ReductionError("0 is not a valid DIMACS literal")
                literals.append(Literal(f"{prefix}{abs(value)}", value > 0))
            clauses.append(Clause(literals))
        return cls(clauses)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for clause in self.clauses:
            names |= clause.variables()
        return names

    def satisfied_by(self, assignment: Assignment) -> bool:
        return all(clause.satisfied_by(assignment) for clause in self.clauses)

    def to_formula(self) -> PropFormula:
        """The equivalent :class:`PropFormula`."""
        return prop_conj(
            prop_disj(
                PropAtom(lit.variable) if lit.positive else PropNot(PropAtom(lit.variable))
                for lit in clause
            )
            for clause in self.clauses
        )

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __str__(self) -> str:
        return " ∧ ".join(str(clause) for clause in self.clauses) if self.clauses else "true"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CnfFormula(clauses={len(self.clauses)}, variables={len(self.variables())})"


def random_cnf(
    num_variables: int,
    num_clauses: int,
    clause_size: int = 3,
    seed: int | None = None,
    prefix: str = "x",
) -> CnfFormula:
    """Generate a random k-CNF formula (benchmark workload generator).

    Clauses draw *clause_size* distinct variables uniformly and negate each
    with probability one half.  A fixed *seed* makes the workload
    reproducible.
    """
    if num_variables < clause_size:
        raise ReductionError(
            f"cannot draw {clause_size} distinct variables from {num_variables}"
        )
    rng = random.Random(seed)
    variables = [f"{prefix}{i + 1}" for i in range(num_variables)]
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(variables, clause_size)
        clauses.append(Clause(Literal(var, rng.random() < 0.5) for var in chosen))
    return CnfFormula(clauses)
