"""Quantified Boolean formulas (substrate for Corollary 4.5 and Theorem 5.3).

The paper reduces QSAT (the validity problem of quantified Boolean formulas)
to formula satisfiability (Corollary 4.5) and QSAT₂ₖ (formulas with ``2k``
alternating quantifier blocks starting with ∃) to non-semi-soundness of
guarded forms with positive access rules and depth ``k`` (Theorem 5.3).

This module provides the QBF model in *prenex* form — an alternating list of
quantifier blocks over a propositional matrix — plus a recursive evaluator
used as the independent oracle when validating those reductions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ReductionError
from repro.logic.propositional import CnfFormula, PropFormula, random_cnf


@dataclass(frozen=True)
class QuantifierBlock:
    """A block of identically quantified variables (``∃x1…xn`` or ``∀y1…yn``)."""

    quantifier: str  # "exists" or "forall"
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.quantifier not in ("exists", "forall"):
            raise ReductionError(
                f"quantifier must be 'exists' or 'forall', got {self.quantifier!r}"
            )
        if not self.variables:
            raise ReductionError("a quantifier block needs at least one variable")


class QBF:
    """A prenex quantified Boolean formula.

    Attributes:
        blocks: alternating quantifier blocks, outermost first.
        matrix: the quantifier-free matrix (a :class:`PropFormula` or a
            :class:`CnfFormula`).
    """

    def __init__(self, blocks: Sequence[QuantifierBlock], matrix: "PropFormula | CnfFormula") -> None:
        self.blocks: tuple[QuantifierBlock, ...] = tuple(blocks)
        self.matrix = matrix
        bound = [v for block in self.blocks for v in block.variables]
        if len(bound) != len(set(bound)):
            raise ReductionError("a variable is bound by two quantifier blocks")
        free = self._matrix_variables() - set(bound)
        if free:
            raise ReductionError(f"matrix mentions unbound variables: {sorted(free)}")

    def _matrix_variables(self) -> set[str]:
        return set(self.matrix.variables())

    @property
    def num_blocks(self) -> int:
        """Number of quantifier blocks."""
        return len(self.blocks)

    def is_strictly_alternating(self) -> bool:
        """True when consecutive blocks use different quantifiers."""
        return all(
            self.blocks[i].quantifier != self.blocks[i + 1].quantifier
            for i in range(len(self.blocks) - 1)
        )

    def starts_with_exists(self) -> bool:
        """True when the outermost block is existential (QSAT₂ₖ shape)."""
        return bool(self.blocks) and self.blocks[0].quantifier == "exists"

    def matrix_satisfied_by(self, assignment: dict[str, bool]) -> bool:
        """Truth value of the matrix under a total assignment."""
        if isinstance(self.matrix, CnfFormula):
            return self.matrix.satisfied_by(assignment)
        return self.matrix.evaluate(assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        blocks = " ".join(
            ("∃" if block.quantifier == "exists" else "∀") + ",".join(block.variables)
            for block in self.blocks
        )
        return f"QBF({blocks} : {self.matrix})"


def evaluate_qbf(qbf: QBF) -> bool:
    """Decide the truth of *qbf* by recursive expansion (the PSPACE textbook
    algorithm).  Exponential in the number of variables — this is the
    independent oracle used by the tests, not a competitive QBF solver."""
    return _evaluate(qbf, 0, 0, {})


def _evaluate(qbf: QBF, block_index: int, var_index: int, assignment: dict[str, bool]) -> bool:
    if block_index == len(qbf.blocks):
        return qbf.matrix_satisfied_by(assignment)
    block = qbf.blocks[block_index]
    if var_index == len(block.variables):
        return _evaluate(qbf, block_index + 1, 0, assignment)
    variable = block.variables[var_index]
    results = []
    for value in (False, True):
        assignment[variable] = value
        results.append(_evaluate(qbf, block_index, var_index + 1, assignment))
        del assignment[variable]
    if block.quantifier == "exists":
        return any(results)
    return all(results)


def qsat_2k(
    existential_blocks: Sequence[Sequence[str]],
    universal_blocks: Sequence[Sequence[str]],
    matrix: "PropFormula | CnfFormula",
) -> QBF:
    """Build a QSAT₂ₖ instance ``∃X₁∀Y₁ … ∃Xₖ∀Yₖ ψ`` (the input shape of
    Theorem 5.3)."""
    if len(existential_blocks) != len(universal_blocks):
        raise ReductionError(
            "QSAT_2k needs the same number of existential and universal blocks"
        )
    blocks: list[QuantifierBlock] = []
    for exists_vars, forall_vars in zip(existential_blocks, universal_blocks):
        blocks.append(QuantifierBlock("exists", tuple(exists_vars)))
        blocks.append(QuantifierBlock("forall", tuple(forall_vars)))
    return QBF(blocks, matrix)


def pad_blocks_to_uniform_size(qbf: QBF) -> QBF:
    """Return an equivalent QBF whose blocks all have the same number of
    variables (the proof of Theorem 5.3 assumes this without loss of
    generality); padding variables are fresh and unconstrained."""
    if not qbf.blocks:
        return qbf
    width = max(len(block.variables) for block in qbf.blocks)
    used = {v for block in qbf.blocks for v in block.variables}
    blocks = []
    counter = 0
    for block in qbf.blocks:
        variables = list(block.variables)
        while len(variables) < width:
            counter += 1
            candidate = f"_pad{counter}"
            while candidate in used:
                counter += 1
                candidate = f"_pad{counter}"
            used.add(candidate)
            variables.append(candidate)
        blocks.append(QuantifierBlock(block.quantifier, tuple(variables)))
    return QBF(blocks, qbf.matrix)


def random_qbf(
    num_blocks: int,
    block_size: int,
    num_clauses: int,
    seed: int | None = None,
) -> QBF:
    """Generate a random prenex QBF with alternating blocks (∃ first) over a
    random 3-CNF matrix; benchmark workload generator for Corollary 4.5."""
    if num_blocks < 1 or block_size < 1:
        raise ReductionError("need at least one block with at least one variable")
    rng = random.Random(seed)
    blocks = []
    variables: list[str] = []
    for index in range(num_blocks):
        names = tuple(f"b{index}_{j}" for j in range(block_size))
        variables.extend(names)
        quantifier = "exists" if index % 2 == 0 else "forall"
        blocks.append(QuantifierBlock(quantifier, names))
    clause_size = min(3, len(variables))
    cnf = random_cnf(len(variables), num_clauses, clause_size, seed=rng.randint(0, 2**30))
    # remap the generated variable names onto the quantified variables
    mapping = {f"x{i + 1}": variables[i] for i in range(len(variables))}
    remapped = CnfFormula(
        [
            type(clause)(
                type(lit)(mapping[lit.variable], lit.positive) for lit in clause
            )
            for clause in cnf
        ]
    )
    return QBF(blocks, remapped)
