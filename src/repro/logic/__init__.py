"""Propositional and quantified-Boolean logic substrates.

The complexity results of the paper are established by reductions from SAT
(Theorems 5.1 and 5.6), QSAT/QBF (Corollary 4.5, Theorem 5.3) and the halting
problem of two-counter machines (Theorem 4.1).  To validate those reductions
end-to-end, this package provides independent implementations of the source
problems:

* :mod:`repro.logic.propositional` — propositional formulas and CNF;
* :mod:`repro.logic.dpll` — a DPLL SAT solver;
* :mod:`repro.logic.qbf` — quantified Boolean formulas and a recursive
  evaluator.

The two-counter machine substrate lives in
:mod:`repro.reductions.counter_machine` next to its reduction.
"""

from repro.logic.propositional import (
    CnfFormula,
    Clause,
    Literal,
    PropAnd,
    PropAtom,
    PropFalse,
    PropFormula,
    PropNot,
    PropOr,
    PropTrue,
    random_cnf,
)
from repro.logic.dpll import dpll_satisfiable, enumerate_models
from repro.logic.qbf import QBF, QuantifierBlock, evaluate_qbf, random_qbf

__all__ = [
    "CnfFormula",
    "Clause",
    "Literal",
    "PropAnd",
    "PropAtom",
    "PropFalse",
    "PropFormula",
    "PropNot",
    "PropOr",
    "PropTrue",
    "random_cnf",
    "dpll_satisfiable",
    "enumerate_models",
    "QBF",
    "QuantifierBlock",
    "evaluate_qbf",
    "random_qbf",
]
