"""Monotonic-clock span tracing with a no-op recorder as the default.

A :class:`Telemetry` object bundles a :class:`~repro.obs.metrics.
MetricsRegistry` with a Chrome-trace-event recorder.  Spans are recorded
as complete (``ph: "X"``) events with microsecond ``ts``/``dur`` taken
from ``time.monotonic()`` — on Linux that is ``CLOCK_MONOTONIC``, which
is boot-relative and therefore *comparable across processes on one
machine*: frontier workers stamp their spans with their own clock and
real ``os.getpid()``, ship them back inside wire frames, and the
coordinator's merge produces a single timeline Perfetto renders with one
track per process.

The default is :data:`NO_TELEMETRY`, a :class:`NullTelemetry` whose
``enabled`` is ``False`` and whose every method is a no-op — hot paths
gate on ``telemetry.enabled`` (one attribute check) and never pay for
disabled instrumentation.  The ``REPRO_TRACE`` environment variable
flips the process-wide default on (``1``/``on`` records in memory; any
other value is treated as a path the trace is written to at interpreter
exit), which is how the CI traced test leg proves exploration results
stay bit-identical under instrumentation.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.obs.metrics import MetricsRegistry, current_rss_kb

__all__ = [
    "NO_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "default_telemetry",
    "use_telemetry",
    "write_chrome_trace",
]

#: Cap on recorded events per Telemetry instance.  Past the cap new
#: events are counted in ``dropped_events`` instead of recorded, so a
#: fully traced test suite or campaign bounds its memory.
MAX_EVENTS = 100_000


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _NullMetrics:
    """Inert registry so accidental unguarded metric calls stay cheap."""

    __slots__ = ()

    def counter(self, name: str, **labels: object) -> "_NullInstrument":
        return _NULL_INSTRUMENT

    gauge = counter

    def histogram(self, name: str, bounds=(), **labels: object) -> "_NullInstrument":
        return _NULL_INSTRUMENT

    def snapshot(self, include_series: bool = False) -> Dict[str, object]:
        return {}

    def export(self, drain: bool = False) -> List[Dict[str, object]]:
        return []

    def absorb(self, entries, **extra_labels: object) -> None:
        pass

    def __len__(self) -> int:
        return 0


class _NullInstrument:
    __slots__ = ()
    value = 0
    samples: List[Tuple[float, float]] = []

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float, sample: bool = False, ts: Optional[float] = None) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """The disabled recorder: every method is a no-op.

    Hot paths should gate on :attr:`enabled` and skip instrumentation
    entirely; the remaining methods exist so coarse, once-per-phase call
    sites (``with telemetry.span(...)``) need no branching at all.
    """

    enabled = False
    process = "disabled"
    pid = 0
    dropped_events = 0
    metrics = _NullMetrics()
    __slots__ = ()

    def now(self) -> float:
        return 0.0

    def span(self, name: str, **args: object) -> _NullSpan:
        return _NULL_SPAN

    def end_span(self, name: str, started: float, **args: object) -> float:
        return 0.0

    def instant(self, name: str, **args: object) -> None:
        pass

    def counter_value(self, name: str, **values: object) -> None:
        pass

    def sample_rss(self, **extra: float) -> int:
        return 0

    def merge_remote(self, payload: Mapping[str, object]) -> None:
        pass

    def export_payload(self, drain: bool = True) -> Dict[str, object]:
        return {}

    def events(self) -> List[Dict[str, object]]:
        return []

    def snapshot(self) -> Dict[str, object]:
        return {}

    def write_chrome_trace(self, path) -> int:
        return write_chrome_trace(path, [])


NO_TELEMETRY = NullTelemetry()


class _Span:
    __slots__ = ("_telemetry", "_name", "_args", "_started")

    def __init__(self, telemetry: "Telemetry", name: str, args: Dict[str, object]):
        self._telemetry = telemetry
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._started = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._args = dict(self._args, error=exc_type.__name__)
        self._telemetry.end_span(self._name, self._started, **self._args)
        return False


class Telemetry:
    """An enabled recorder: metrics registry + span/event buffer."""

    enabled = True

    def __init__(
        self,
        process: str = "coordinator",
        pid: Optional[int] = None,
        max_events: int = MAX_EVENTS,
    ):
        self.process = process
        self.pid = os.getpid() if pid is None else pid
        self.metrics = MetricsRegistry()
        self.dropped_events = 0
        self._max_events = max_events
        self._events: List[Dict[str, object]] = []
        self._known_processes: Set[Tuple[int, str]] = set()
        self._announce(self.pid, self.process)

    # -- recording -----------------------------------------------------

    def now(self) -> float:
        """Span clock (seconds).  ``CLOCK_MONOTONIC`` — see module doc."""
        return time.monotonic()

    def _announce(self, pid: int, name: str) -> None:
        key = (pid, name)
        if key in self._known_processes:
            return
        self._known_processes.add(key)
        self._events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "args": {"name": name}}
        )

    def _record(self, event: Dict[str, object]) -> None:
        if len(self._events) >= self._max_events:
            self.dropped_events += 1
            return
        self._events.append(event)

    def span(self, name: str, **args: object) -> _Span:
        """Context manager recording a complete-event span around a block."""
        return _Span(self, name, args)

    def end_span(self, name: str, started: float, **args: object) -> float:
        """Record a span that began at ``started`` (from :meth:`now`)."""
        elapsed = time.monotonic() - started
        self._record(
            {
                "ph": "X",
                "name": name,
                "cat": "repro",
                "ts": int(started * 1e6),
                "dur": max(0, int(elapsed * 1e6)),
                "pid": self.pid,
                "tid": 0,
                "args": args,
            }
        )
        return elapsed

    def instant(self, name: str, **args: object) -> None:
        self._record(
            {
                "ph": "i",
                "s": "p",
                "name": name,
                "cat": "repro",
                "ts": int(time.monotonic() * 1e6),
                "pid": self.pid,
                "tid": 0,
                "args": args,
            }
        )

    def counter_value(self, name: str, **values: object) -> None:
        """Record a Chrome counter (``ph: "C"``) sample."""
        self._record(
            {
                "ph": "C",
                "name": name,
                "ts": int(time.monotonic() * 1e6),
                "pid": self.pid,
                "args": values,
            }
        )

    def sample_rss(self, **extra: float) -> int:
        """Sample current RSS (and any extra gauges) into metrics + trace."""
        kb = current_rss_kb()
        self.metrics.gauge("rss_kb").set(kb, sample=True)
        self.counter_value("rss_kb", kb=kb)
        for name, value in extra.items():
            self.metrics.gauge(name).set(value, sample=True)
            self.counter_value(name, **{name: value})
        return kb

    # -- cross-process aggregation ------------------------------------

    def export_payload(self, drain: bool = True) -> Dict[str, object]:
        """JSON-safe payload for the wire-frame telemetry section.

        With ``drain`` (the default — one export per worker batch) the
        event buffer empties and counters/histograms reset to deltas; see
        :meth:`repro.obs.metrics.MetricsRegistry.export`.
        """
        events = self._events if not drain else list(self._events)
        payload = {
            "process": self.process,
            "pid": self.pid,
            "events": events,
            "metrics": self.metrics.export(drain=drain),
            "dropped": self.dropped_events,
        }
        if drain:
            self._events = []
            self.dropped_events = 0
            self._known_processes.clear()
            self._announce(self.pid, self.process)
        return payload

    def merge_remote(self, payload: Mapping[str, object]) -> None:
        """Merge a worker's :meth:`export_payload` into this recorder.

        Events land on the shared timeline (process-name metadata deduped
        per pid); metric deltas accumulate under an extra
        ``worker=<suffix>`` label so per-worker series like
        ``guard_eval_seconds{worker=3}`` stay distinguishable.
        """
        if not payload:
            return
        pid = payload.get("pid")
        for event in payload.get("events") or ():
            if not isinstance(event, dict):
                continue
            if event.get("ph") == "M":
                args = event.get("args")
                name = args.get("name") if isinstance(args, dict) else None
                if isinstance(name, str):
                    self._announce(int(event.get("pid") or pid or 0), name)
                continue
            self._record(event)
        process = str(payload.get("process") or pid or "remote")
        label = process.rsplit("-", 1)[-1] if "-" in process else process
        self.metrics.absorb(payload.get("metrics") or (), worker=label)
        self.dropped_events += int(payload.get("dropped") or 0)

    # -- output --------------------------------------------------------

    def events(self) -> List[Dict[str, object]]:
        return list(self._events)

    def snapshot(self) -> Dict[str, object]:
        """Flat summary merged into ``stats_snapshot()["obs"]``."""
        return {
            "process": self.process,
            "events": len(self._events),
            "dropped_events": self.dropped_events,
            "metrics": self.metrics.snapshot(include_series=True),
        }

    def write_chrome_trace(self, path) -> int:
        return write_chrome_trace(path, self._events)


def write_chrome_trace(path, events: Sequence[Mapping[str, object]]) -> int:
    """Write events as a Chrome trace-event JSON array, one per line.

    The result is a valid JSON array (Perfetto/``chrome://tracing``
    loadable) that degrades to parseable line-per-event output if a run
    is killed mid-write.  Returns the number of events written.
    """
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        fh.write("[\n")
        last = len(events) - 1
        for index, event in enumerate(events):
            fh.write(json.dumps(event, separators=(",", ":"), sort_keys=True, default=str))
            fh.write(",\n" if index < last else "\n")
        fh.write("]\n")
    return len(events)


# -- process-wide default ---------------------------------------------

_default_stack: List[object] = []
_env_telemetry: Optional[Telemetry] = None
_env_checked = False


def _write_env_trace(path: str, telemetry: Telemetry) -> None:
    try:
        telemetry.write_chrome_trace(path)
    except OSError:
        pass


def _telemetry_from_env() -> Optional[Telemetry]:
    global _env_telemetry, _env_checked
    if not _env_checked:
        _env_checked = True
        value = os.environ.get("REPRO_TRACE", "").strip()
        if value and value.lower() not in ("0", "off", "false", "no"):
            _env_telemetry = Telemetry(process="coordinator")
            if value.lower() not in ("1", "on", "true", "yes"):
                atexit.register(_write_env_trace, value, _env_telemetry)
    return _env_telemetry


def default_telemetry():
    """The recorder engines use when none is passed explicitly.

    Resolution order: innermost :func:`use_telemetry` context, then the
    ``REPRO_TRACE`` environment default, then :data:`NO_TELEMETRY`.
    """
    if _default_stack:
        return _default_stack[-1]
    env = _telemetry_from_env()
    return env if env is not None else NO_TELEMETRY


@contextmanager
def use_telemetry(telemetry) -> Iterator[object]:
    """Make ``telemetry`` the process default for the enclosed block.

    ``None`` is a no-op context (the CLI passes its optional recorder
    straight through); engines built anywhere inside the block — e.g. by
    the invariant/workflow dispatchers — pick the recorder up via
    :func:`default_telemetry` without signature changes.
    """
    if telemetry is None:
        yield NO_TELEMETRY
        return
    _default_stack.append(telemetry)
    try:
        yield telemetry
    finally:
        _default_stack.pop()
