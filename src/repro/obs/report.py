"""Trace-file loading and summarisation for ``repro trace report``.

Accepts anything :func:`repro.obs.tracing.write_chrome_trace` produces —
a full JSON array, a ``{"traceEvents": [...]}`` object (the other Chrome
trace container), or the line-per-event degradation left behind by an
interrupted run — and renders a per-process span/counter summary.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Sequence

__all__ = ["load_trace_events", "render_trace_report", "summarize_trace"]


def load_trace_events(path) -> List[Dict[str, object]]:
    """Parse a trace file into a list of event dicts.

    Tries a whole-file ``json.loads`` first (array or ``traceEvents``
    object); falls back to line-by-line parsing, tolerating the trailing
    commas and stray brackets of a truncated array.
    """
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        data = json.loads(text)
    except ValueError:
        data = None
    if isinstance(data, dict):
        data = data.get("traceEvents")
    if isinstance(data, list):
        return [event for event in data if isinstance(event, dict)]
    events: List[Dict[str, object]] = []
    for line in text.splitlines():
        line = line.strip().rstrip(",")
        if not line or line in ("[", "]"):
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue
        if isinstance(obj, dict):
            events.append(obj)
    return events


def summarize_trace(events: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Aggregate events into per-process span and counter statistics."""
    processes: Dict[int, str] = {}
    spans: Dict[tuple, Dict[str, float]] = {}
    counters: Dict[tuple, int] = {}
    instants = 0
    first_ts = None
    last_ts = None
    for event in events:
        ph = event.get("ph")
        pid = int(event.get("pid") or 0)
        if ph == "M":
            args = event.get("args")
            if event.get("name") == "process_name" and isinstance(args, dict):
                processes.setdefault(pid, str(args.get("name")))
            continue
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            end = ts + (event.get("dur") or 0 if ph == "X" else 0)
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = end if last_ts is None else max(last_ts, end)
        if ph == "X":
            key = (pid, str(event.get("name")))
            stat = spans.setdefault(key, {"count": 0, "total_us": 0, "max_us": 0})
            dur = int(event.get("dur") or 0)
            stat["count"] += 1
            stat["total_us"] += dur
            stat["max_us"] = max(stat["max_us"], dur)
        elif ph == "C":
            counters[(pid, str(event.get("name")))] = (
                counters.get((pid, str(event.get("name"))), 0) + 1
            )
        elif ph == "i":
            instants += 1
    return {
        "events": len(events),
        "processes": processes,
        "spans": spans,
        "counters": counters,
        "instants": instants,
        "wall_us": (last_ts - first_ts) if first_ts is not None and last_ts is not None else 0,
    }


def _ms(us: float) -> str:
    return f"{us / 1000:.3f}ms" if us < 1_000_000 else f"{us / 1e6:.3f}s"


def render_trace_report(summary: Mapping[str, object]) -> str:
    """Render a :func:`summarize_trace` result as aligned text."""
    processes: Dict[int, str] = dict(summary.get("processes") or {})
    spans: Dict[tuple, Dict[str, float]] = dict(summary.get("spans") or {})
    counters: Dict[tuple, int] = dict(summary.get("counters") or {})
    pids = sorted(set(processes) | {pid for pid, _ in spans} | {pid for pid, _ in counters})
    lines = [
        f"trace: {summary.get('events', 0)} events, "
        f"{len(pids)} process(es), wall span {_ms(summary.get('wall_us') or 0)}"
    ]
    for pid in pids:
        lines.append(f"process {processes.get(pid, '?')} (pid {pid}):")
        pid_spans = sorted(
            ((name, stat) for (span_pid, name), stat in spans.items() if span_pid == pid),
            key=lambda item: -item[1]["total_us"],
        )
        for name, stat in pid_spans:
            count = int(stat["count"])
            total = stat["total_us"]
            mean = total / count if count else 0
            lines.append(
                f"  span {name:<28} count {count:>6}  total {_ms(total):>10}  "
                f"mean {_ms(mean):>10}  max {_ms(stat['max_us']):>10}"
            )
        pid_counters = sorted(
            (name, n) for (counter_pid, name), n in counters.items() if counter_pid == pid
        )
        for name, n in pid_counters:
            lines.append(f"  counter {name:<25} samples {n:>6}")
        if not pid_spans and not pid_counters:
            lines.append("  (no spans or counters)")
    return "\n".join(lines)
