"""Zero-dependency metrics primitives for the telemetry layer.

Three instrument kinds, all plain Python and allocation-light:

* :class:`Counter` — monotonically increasing totals (``inc``);
* :class:`Gauge` — last-write-wins values with an optional bounded
  ``(timestamp, value)`` sample series, used for the periodic RSS /
  residency time series recorded between waves;
* :class:`Histogram` — fixed-bucket latency distributions (``observe``),
  e.g. store batch-flush latency.

A :class:`MetricsRegistry` owns labeled series: ``registry.counter(
"guard_eval_seconds", worker=3)`` names the series
``guard_eval_seconds{worker=3}`` in snapshots.  Registries are
JSON-serialisable both ways — :meth:`MetricsRegistry.export` produces the
wire payload a frontier worker ships back inside a frame, and
:meth:`MetricsRegistry.absorb` merges such payloads (with extra labels,
e.g. ``worker=<index>``) into the coordinator's cross-process view.

Nothing here imports from :mod:`repro.engine`; the engine imports us.
"""

from __future__ import annotations

import os
import resource
import sys
import time
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_rss_kb",
    "format_series",
]

#: Default histogram bucket upper bounds, in seconds — tuned for the
#: latencies this engine actually produces (sub-ms guard evaluations up
#: to multi-second explorations).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

_page_kb: Optional[int] = None


def current_rss_kb() -> int:
    """Best-effort *current* resident set size in KiB.

    Reads ``/proc/self/statm`` where available (Linux), so repeated calls
    see eviction churn rather than the monotone ``ru_maxrss`` high-water
    mark; falls back to ``ru_maxrss`` elsewhere.
    """
    global _page_kb
    try:
        with open("/proc/self/statm", "rb") as fh:
            resident_pages = int(fh.read().split()[1])
        if _page_kb is None:
            _page_kb = os.sysconf("SC_PAGE_SIZE") // 1024
        return resident_pages * _page_kb
    except (OSError, ValueError, IndexError):
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # bytes, not KiB
            peak //= 1024
        return int(peak)


def format_series(name: str, labels: Sequence[Tuple[str, object]]) -> str:
    """Render ``name{k=v,...}`` (labels sorted by key; bare name if none)."""
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, object], ...] = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins value with an optional bounded sample series.

    ``set(value, sample=True)`` also appends a ``(monotonic_ts, value)``
    pair; when the series would exceed ``max_samples`` it is decimated
    (every other retained point dropped) so long runs keep a bounded,
    evenly thinned time series instead of growing without limit.
    """

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "samples", "max_samples")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, object], ...] = (),
        max_samples: int = 4096,
    ):
        self.name = name
        self.labels = labels
        self.value: Optional[float] = None
        self.samples: List[Tuple[float, float]] = []
        self.max_samples = max_samples

    def set(self, value: float, sample: bool = False, ts: Optional[float] = None) -> None:
        self.value = value
        if sample:
            if len(self.samples) >= self.max_samples:
                del self.samples[::2]
            self.samples.append((time.monotonic() if ts is None else ts, value))


class Histogram:
    """A fixed-bucket distribution of observed values (seconds, usually).

    ``counts[i]`` is the number of observations ``<= bounds[i]``; the
    final slot counts the overflow bucket.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "counts", "count", "total")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, object], ...] = (),
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Owns labeled metric series and merges remote snapshots.

    Series identity is ``(name, sorted(labels.items()))``; asking for an
    existing series with a different instrument kind raises ``TypeError``
    (a counter cannot silently become a gauge between layers).
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, Tuple[Tuple[str, object], ...]], object] = {}

    @staticmethod
    def _key(name: str, labels: Mapping[str, object]) -> Tuple[str, Tuple[Tuple[str, object], ...]]:
        return (name, tuple(sorted(labels.items())))

    def _get(self, cls, name: str, labels: Mapping[str, object], **kwargs):
        key = self._key(name, labels)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._series[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric series {format_series(name, key[1])!r} is a "
                f"{instrument.kind}, not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, **labels: object
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def series(self) -> List[object]:
        return list(self._series.values())

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self, include_series: bool = False) -> Dict[str, object]:
        """Flat JSON-safe view: ``{"name{k=v}": value_or_dict}``.

        Counters flatten to their value, gauges to their last value
        (plus a ``…_series`` entry of ``[ts, value]`` pairs when
        ``include_series`` is set and samples exist), histograms to a
        ``{count, sum, mean, buckets}`` dict.
        """
        out: Dict[str, object] = {}
        for (name, labels), instrument in sorted(self._series.items()):
            series = format_series(name, labels)
            if isinstance(instrument, Counter):
                out[series] = instrument.value
            elif isinstance(instrument, Gauge):
                out[series] = instrument.value
                if include_series and instrument.samples:
                    out[series + "_series"] = [
                        [round(ts, 6), value] for ts, value in instrument.samples
                    ]
            else:
                out[series] = {
                    "count": instrument.count,
                    "sum": round(instrument.total, 6),
                    "mean": round(instrument.mean, 6),
                    "buckets": list(instrument.counts),
                }
        return out

    def export(self, drain: bool = False) -> List[Dict[str, object]]:
        """Structured JSON-safe entries for cross-process shipping.

        With ``drain`` set, counters and histograms reset to zero and
        gauge sample series clear after export, so repeated exports (one
        per worker batch) carry *deltas* that the coordinator can simply
        add — cumulative re-ships would double-count.
        """
        entries: List[Dict[str, object]] = []
        for (name, labels), instrument in sorted(self._series.items()):
            entry: Dict[str, object] = {
                "name": name,
                "labels": [[key, value] for key, value in labels],
                "kind": instrument.kind,
            }
            if isinstance(instrument, Counter):
                entry["value"] = instrument.value
                if drain:
                    instrument.value = 0
            elif isinstance(instrument, Gauge):
                entry["value"] = instrument.value
                if instrument.samples:
                    entry["samples"] = [[ts, value] for ts, value in instrument.samples]
                if drain:
                    instrument.samples = []
            else:
                entry["bounds"] = list(instrument.bounds)
                entry["counts"] = list(instrument.counts)
                entry["count"] = instrument.count
                entry["sum"] = instrument.total
                if drain:
                    instrument.counts = [0] * (len(instrument.bounds) + 1)
                    instrument.count = 0
                    instrument.total = 0.0
            entries.append(entry)
        return entries

    def absorb(self, entries: Iterable[Mapping[str, object]], **extra_labels: object) -> None:
        """Merge exported entries, adding ``extra_labels`` to every series.

        Counters and histograms accumulate (delta semantics — see
        :meth:`export`), gauges take the remote value and append remote
        samples.  Histograms with mismatched bounds still accumulate
        their ``count``/``sum`` so totals stay honest.
        """
        for entry in entries:
            name = str(entry.get("name", ""))
            if not name:
                continue
            labels = dict(entry.get("labels") or ())
            labels.update(extra_labels)
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(name, **labels).inc(entry.get("value") or 0)
            elif kind == "gauge":
                gauge = self.gauge(name, **labels)
                gauge.value = entry.get("value")
                for ts, value in entry.get("samples") or ():
                    gauge.set(value, sample=True, ts=ts)
            elif kind == "histogram":
                bounds = tuple(entry.get("bounds") or DEFAULT_BUCKETS)
                histogram = self._get(Histogram, name, labels, bounds=bounds)
                counts = list(entry.get("counts") or ())
                if len(counts) == len(histogram.counts):
                    for index, value in enumerate(counts):
                        histogram.counts[index] += value
                histogram.count += int(entry.get("count") or 0)
                histogram.total += float(entry.get("sum") or 0.0)

#: The per-namespace counters a KV cache reports (repro.cache); mirrored
#: verbatim into labeled series by :func:`publish_cache_stats`.
CACHE_COUNTER_NAMES = ("hits", "misses", "puts", "deletes", "evictions", "expirations")


def publish_cache_stats(registry: "MetricsRegistry", stats: dict) -> None:
    """Mirror one KV cache's counters into *registry*, labeled by namespace.

    The cache owns the cumulative values, so each scrape republishes the
    snapshot as last-write-wins gauges (``cache_hits{namespace=guards}``,
    ...) rather than incrementing counters — calling this twice is
    idempotent, and a merged registry never double-counts.
    """
    for namespace, counters in (stats.get("namespaces") or {}).items():
        for name in CACHE_COUNTER_NAMES:
            registry.gauge(f"cache_{name}", namespace=namespace).set(
                int(counters.get(name, 0))
            )
