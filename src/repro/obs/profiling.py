"""Shared cProfile plumbing for the ``--profile`` flag family.

One context manager used by both the CLI commands and
``benchmarks/run_all.py``: profile the enclosed block when given a
destination path, dump the pstats file there, and print the top entries
by cumulative time to stderr — exactly the behaviour the ad-hoc hooks
had before they were folded into the telemetry layer.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["maybe_profiled"]


@contextmanager
def maybe_profiled(path, top: int = 20, stream=None) -> Iterator[Optional[object]]:
    """Profile the enclosed block when ``path`` is truthy; no-op otherwise.

    On exit the profile is dumped to ``path`` (loadable with
    :mod:`pstats`) and the top ``top`` entries by cumulative time are
    printed to ``stream`` (stderr by default).  Yields the active
    ``cProfile.Profile`` — or ``None`` when disabled — so callers can
    assert on it in tests.
    """
    if not path:
        yield None
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        destination = os.fspath(path)
        profiler.dump_stats(destination)
        output = stream if stream is not None else sys.stderr
        print(f"profile written to {destination}; top {top} by cumulative time:", file=output)
        pstats.Stats(profiler, stream=output).sort_stats("cumulative").print_stats(top)
