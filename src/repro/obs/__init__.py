"""Unified telemetry layer: metrics registry, span tracing, profiling.

Zero-dependency observability shared by the engine, store, frontier
workers, campaign runner, CLI, and benchmarks:

* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  with labeled series and cross-process merge;
* :mod:`repro.obs.tracing` — monotonic-clock span tracing in Chrome
  trace-event format, with :data:`NO_TELEMETRY` as the free disabled
  default and ``REPRO_TRACE`` as the process-wide opt-in;
* :mod:`repro.obs.report` — trace-file summarisation for
  ``repro trace report``;
* :mod:`repro.obs.profiling` — the shared ``--profile`` cProfile hook.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_rss_kb,
    format_series,
    publish_cache_stats,
)
from repro.obs.profiling import maybe_profiled
from repro.obs.report import load_trace_events, render_trace_report, summarize_trace
from repro.obs.tracing import (
    NO_TELEMETRY,
    NullTelemetry,
    Telemetry,
    default_telemetry,
    use_telemetry,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NO_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "current_rss_kb",
    "default_telemetry",
    "format_series",
    "load_trace_events",
    "maybe_profiled",
    "publish_cache_stats",
    "render_trace_report",
    "summarize_trace",
    "use_telemetry",
    "write_chrome_trace",
]
