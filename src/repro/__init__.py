"""guarded-forms: analyzing workflows implied by instance-dependent access rules.

This library is a from-scratch reproduction of

    Toon Calders, Stijn Dekeyser, Jan Hidders, Jan Paredaens.
    *Analyzing Workflows implied by Instance-Dependent Access Rules.*
    PODS 2006.

It implements the paper's model (tree-structured form schemas, instances,
XPath-like access rules and completion formulas — *guarded forms*), the two
analysis problems (*completability* and *semi-soundness*), the decision
procedures behind the paper's complexity map (Table 1), and every reduction
used in the hardness proofs, together with the substrates those reductions
need (two-counter machines, a DPLL SAT solver, a QBF evaluator, an
explicit-state deadlock checker) and an application layer modelled on the
form-based web information system that motivates the paper.

All exploration-based procedures run on the unified exploration engine of
:mod:`repro.engine`: instance shapes are hash-consed so state keys are
O(1)-comparable ints and successor shapes are computed incrementally from
the applied update; access-rule and completion-formula evaluations are
memoized (shared across the frontier and across the several explorations an
analysis performs); and the frontier order is pluggable (BFS, DFS, or
completion-guided best-first) via the ``frontier`` argument of the
dispatchers and the ``--frontier`` CLI flag.  Cache and interning counters
are surfaced in ``AnalysisResult.stats["engine"]``.

Quickstart::

    from repro import leave_application, decide_completability, decide_semisoundness

    form = leave_application(single_period=True)
    print(decide_completability(form).describe())
    print(decide_semisoundness(form).describe())

The public API re-exported here is organised by sub-package:

* :mod:`repro.core` — schemas, instances, formulas, guarded forms, fragments;
* :mod:`repro.engine` — the unified exploration engine (shape interning,
  guard memoization, frontier strategies);
* :mod:`repro.analysis` — the completability / semi-soundness procedures;
* :mod:`repro.reductions` — the paper's reductions and their substrates;
* :mod:`repro.workflow` — explicit workflow (LTS / workflow-net) views;
* :mod:`repro.fbwis` — the form-engine application layer and example forms;
* :mod:`repro.io` — serialisation, ASCII rendering and DOT export;
* :mod:`repro.benchgen` — benchmark workload generators.
"""

from repro.analysis import (
    AnalysisResult,
    ExplorationLimits,
    always_holds,
    can_reach,
    decide_completability,
    decide_semisoundness,
    explore_bounded,
    explore_depth1,
)
from repro.core import (
    TABLE1,
    AccessRight,
    Addition,
    Deletion,
    Fragment,
    GuardedForm,
    Instance,
    Run,
    RuleTable,
    Schema,
    SchemaEdge,
    canonical_instance,
    classify,
    depth_one_schema,
    guarded_form_from_dicts,
    lookup_complexity,
    table1_rows,
)
from repro.core.formulas import parse_formula
from repro.engine import EngineGraph, ExplorationEngine
from repro.fbwis import (
    FormEngine,
    FormPolicy,
    FormSession,
    leave_application,
    leave_application_incompletable,
    leave_application_not_semisound,
    purchase_order,
    tax_declaration,
)
from repro.io import (
    load_guarded_form,
    render_instance,
    render_rule_table,
    render_schema,
    render_table1,
    save_guarded_form,
)
from repro.workflow import analyse_workflow, extract_workflow

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "AnalysisResult",
    "ExplorationLimits",
    "decide_completability",
    "decide_semisoundness",
    "can_reach",
    "always_holds",
    "explore_depth1",
    "explore_bounded",
    # engine
    "ExplorationEngine",
    "EngineGraph",
    # core
    "Schema",
    "SchemaEdge",
    "Instance",
    "RuleTable",
    "AccessRight",
    "GuardedForm",
    "Addition",
    "Deletion",
    "Run",
    "Fragment",
    "classify",
    "lookup_complexity",
    "table1_rows",
    "TABLE1",
    "canonical_instance",
    "depth_one_schema",
    "guarded_form_from_dicts",
    "parse_formula",
    # application layer
    "FormEngine",
    "FormPolicy",
    "FormSession",
    "leave_application",
    "leave_application_incompletable",
    "leave_application_not_semisound",
    "tax_declaration",
    "purchase_order",
    # io
    "render_schema",
    "render_instance",
    "render_rule_table",
    "render_table1",
    "save_guarded_form",
    "load_guarded_form",
    # workflow
    "extract_workflow",
    "analyse_workflow",
]
