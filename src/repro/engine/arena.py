"""Flat array-of-ints shape arena: the engine's native shape representation.

Full-state shapes used to live exclusively as nested label tuples (the
hash-consed cons form).  Every hot operation on them — interning, stable
hashing, store reverse lookups, wire decode — walked per-node Python objects.
The arena flattens each distinct full-state shape into one **row**:

* the row's nodes are ``(label_id, first_child, next_sibling)`` triples,
  stored contiguously in one shared ``array('i')`` (``-1`` = none), with
  labels interned once into an arena-global label table;
* the row caches its **canonical binary encoding** — byte-for-byte the
  :func:`~repro.io.serialization.encode_shape_binary` store-row format — so
  ``stable_shape_hash`` becomes one CRC over cached bytes
  (:func:`repro.engine._codec.arena_hash`, C-accelerated when available)
  instead of a fresh recursive encode;
* rows are **deduplicated by that encoding**: the encoding is injective and
  order-preserving, so byte equality is shape equality, and every consumer
  can compare rows as small ints.

Layout of one 3-node row (root ``a`` with children ``b``, ``c``)::

    nodes:   [ a,  +1, -1 ][ b, +1, +1 ][ c, -1, -1 ]
               |   |   |
               |   |   next_sibling (node index, -1 = last sibling)
               |   first_child (node index, -1 = leaf)
               label_id (index into the arena label table)

The cons form does not disappear: guard keys, shape maps and the incremental
shaper still speak nested tuples, and :meth:`ShapeArena.cons_of` materialises
a row back into one (memoized; the memo is droppable under residency budgets
because the triples remain the ground truth).  What changes is that the
:class:`~repro.engine.interning.ShapeInterner`'s id tier, the store fallback
(digest + encoded bytes precomputed per row) and the wire decode path
(:meth:`WireFrame.shape_rows <repro.engine.wire.WireFrame.shape_rows>`) all
operate on rows, so the per-successor tuple churn is gone from the hot path.

The arena is append-only and content-addressed: a row id, once returned, is
valid for the arena's lifetime.  Differential properties (arena⇄cons
round-trip, arena hash == ``stable_shape_hash`` on the cons form) are pinned
by ``tests/property/test_arena_properties.py``.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.core.tree import Shape
from repro.engine import _codec
from repro.exceptions import WireFormatError
from repro.io.serialization import SHAPE_BINARY_VERSION, write_uvarint

#: Index of a shape row in a :class:`ShapeArena`.
RowId = int

_NONE = -1


class ShapeArena:
    """Flat storage and canonical identity for full-state shapes."""

    def __init__(self) -> None:
        self._labels: list[str] = []
        self._label_ids: dict[str, int] = {}
        #: Per label, its length-prefixed UTF-8 framing (the canonical
        #: encoding is a pure concatenation of these plus child-count
        #: varints, so encoding a row never re-encodes label text).
        self._label_enc: list[bytes] = []
        #: All rows' ``(label_id, first_child, next_sibling)`` triples,
        #: concatenated; node index ``n`` lives at ``3*n``.
        self._nodes = array("i")
        self._roots: list[int] = []  # row -> root node index
        self._counts: list[int] = []  # row -> node count
        self._encoded: list[bytes] = []  # row -> canonical binary encoding
        self._hashes: list[Optional[int]] = []  # row -> CRC digest (lazy)
        self._by_encoding: dict[bytes, RowId] = {}
        #: row -> materialised cons tuple (droppable memo; see
        #: :meth:`drop_cons_cache`).
        self._cons_cache: dict[RowId, Shape] = {}
        self.rows_deduped = 0

    # ------------------------------------------------------------------ #
    # labels
    # ------------------------------------------------------------------ #

    def label_id(self, label: str) -> int:
        """Intern *label*; returns its arena-global id."""
        existing = self._label_ids.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._label_ids[label] = new_id
        self._labels.append(label)
        raw = label.encode("utf-8")
        framing = bytearray()
        write_uvarint(framing, len(raw))
        framing.extend(raw)
        self._label_enc.append(bytes(framing))
        return new_id

    def label_of(self, label_id: int) -> str:
        return self._labels[label_id]

    # ------------------------------------------------------------------ #
    # interning
    # ------------------------------------------------------------------ #

    def intern_cons(self, shape: Shape) -> RowId:
        """Intern a nested-tuple shape; returns its (deduplicated) row id."""
        encoded = bytearray([SHAPE_BINARY_VERSION])
        pairs: list[tuple[int, int]] = []  # preorder (label_id, child count)
        label_enc = self._label_enc
        stack = [shape]
        pop = stack.pop
        while stack:
            label, children = pop()
            lid = self.label_id(label)
            nchildren = len(children)
            pairs.append((lid, nchildren))
            encoded += label_enc[lid]
            if nchildren < 0x80:
                encoded.append(nchildren)
            else:
                write_uvarint(encoded, nchildren)
            stack.extend(reversed(children))
        row = self._by_encoding.get(bytes(encoded))
        if row is not None:
            self.rows_deduped += 1
            return row
        row = self._append_row(bytes(encoded), pairs)
        self._cons_cache[row] = shape
        return row

    def intern_preorder(self, pairs: list[tuple[int, int]]) -> RowId:
        """Intern a shape given as preorder ``(label_id, child count)`` pairs
        (label ids already arena-global) — the zero-copy wire decode entry.

        The canonical encoding is assembled by concatenating the cached label
        framings, so no tuple is ever built for an already-known row.
        """
        encoded = bytearray([SHAPE_BINARY_VERSION])
        label_enc = self._label_enc
        for lid, nchildren in pairs:
            encoded += label_enc[lid]
            if nchildren < 0x80:
                encoded.append(nchildren)
            else:
                write_uvarint(encoded, nchildren)
        row = self._by_encoding.get(bytes(encoded))
        if row is not None:
            self.rows_deduped += 1
            return row
        return self._append_row(bytes(encoded), pairs)

    def intern_preorder_flat(self, flat, base: int, count: int, label_map) -> RowId:
        """:meth:`intern_preorder` over a slice of a flat pair-value run.

        *flat* holds concatenated ``label index, child count`` values (the
        wire shape section's decoded run); the entry's *count* pairs start at
        ``flat[base]`` and *label_map* maps its label indices to arena label
        ids.  The canonical encoding is assembled straight off the run, and
        the pair tuples an unseen row needs are only materialised on a
        genuine append — a dedup hit (the common case across a wave's
        frames) costs the bytes assembly and one dict probe.
        """
        encoded = bytearray([SHAPE_BINARY_VERSION])
        label_enc = self._label_enc
        end = base + 2 * count
        for i in range(base, end, 2):
            encoded += label_enc[label_map[flat[i]]]
            nchildren = flat[i + 1]
            if nchildren < 0x80:
                encoded.append(nchildren)
            else:
                write_uvarint(encoded, nchildren)
        key = bytes(encoded)
        row = self._by_encoding.get(key)
        if row is not None:
            self.rows_deduped += 1
            return row
        pairs = [(label_map[flat[i]], flat[i + 1]) for i in range(base, end, 2)]
        return self._append_row(key, pairs)

    def _append_row(self, encoded: bytes, pairs: list[tuple[int, int]]) -> RowId:
        """Materialise the triples for a genuinely-new row."""
        nodes = self._nodes
        base = len(nodes) // 3
        count = len(pairs)
        nodes.extend([0] * (3 * count))
        # Preorder walk: a stack of [parent node index, children still
        # expected, last child linked].  The next pair is the first child of
        # the top (if it still expects children) or, after closing finished
        # nodes, the next sibling of the last child linked.
        stack: list[list[int]] = []
        for offset, (lid, nchildren) in enumerate(pairs):
            index = base + offset
            slot = 3 * index
            nodes[slot] = lid
            nodes[slot + 1] = _NONE
            nodes[slot + 2] = _NONE
            while stack and stack[-1][1] == 0:
                stack.pop()
            if stack:
                frame = stack[-1]
                if frame[2] == _NONE:
                    nodes[3 * frame[0] + 1] = index
                else:
                    nodes[3 * frame[2] + 2] = index
                frame[1] -= 1
                frame[2] = index
            elif offset != 0:
                raise WireFormatError("malformed shape preorder: multiple roots")
            if nchildren:
                stack.append([index, nchildren, _NONE])
        while stack and stack[-1][1] == 0:
            stack.pop()
        if stack:
            raise WireFormatError("malformed shape preorder: missing children")
        row = len(self._roots)
        self._roots.append(base)
        self._counts.append(count)
        self._encoded.append(encoded)
        self._hashes.append(None)
        self._by_encoding[encoded] = row
        return row

    def find_cons(self, shape: Shape) -> Optional[RowId]:
        """The row id of *shape* if already interned, else ``None`` (never
        creates a row)."""
        from repro.io.serialization import encode_shape_binary

        return self._by_encoding.get(encode_shape_binary(shape))

    # ------------------------------------------------------------------ #
    # per-row accessors
    # ------------------------------------------------------------------ #

    def encoded(self, row: RowId) -> bytes:
        """The row's canonical binary encoding (identical to
        :func:`~repro.io.serialization.encode_shape_binary` on its cons
        form)."""
        return self._encoded[row]

    def stable_hash(self, row: RowId) -> int:
        """The row's :func:`~repro.io.serialization.stable_shape_hash`,
        computed once over the cached encoding and memoized."""
        digest = self._hashes[row]
        if digest is None:
            digest = _codec.arena_hash(self._encoded[row])
            self._hashes[row] = digest
        return digest

    def node_count(self, row: RowId) -> int:
        return self._counts[row]

    def cons_of(self, row: RowId, cons=None) -> Shape:
        """Materialise the row back into a nested-tuple shape (memoized).

        Args:
            cons: optional hash-consing function applied bottom-up to every
                rebuilt subtree (the interner passes its ``cons``), so
                materialised shapes share canonical subtree objects.
        """
        cached = self._cons_cache.get(row)
        if cached is not None:
            return cached
        nodes = self._nodes
        labels = self._labels

        def build(index: int) -> Shape:
            slot = 3 * index
            children = []
            child = nodes[slot + 1]
            while child != _NONE:
                children.append(build(child))
                child = nodes[3 * child + 2]
            shape: Shape = (labels[nodes[slot]], tuple(children))
            return cons(shape) if cons is not None else shape

        shape = build(self._roots[row])
        self._cons_cache[row] = shape
        return shape

    def drop_cons_cache(self) -> int:
        """Drop the row→tuple materialisation memo (budget enforcement);
        returns the number of entries dropped.  The triples and encodings
        stay — any row can be re-materialised on demand."""
        dropped = len(self._cons_cache)
        self._cons_cache.clear()
        return dropped

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._roots)

    def nbytes(self) -> int:
        """Approximate arena payload size: triples plus cached encodings."""
        return self._nodes.itemsize * len(self._nodes) + sum(
            len(enc) for enc in self._encoded
        )

    def stats(self) -> dict:
        return {
            "arena_rows": len(self._roots),
            "arena_nodes": len(self._nodes) // 3,
            "arena_labels": len(self._labels),
            "arena_nbytes": self.nbytes(),
            "arena_rows_deduped": self.rows_deduped,
            "arena_cons_cached": len(self._cons_cache),
        }
