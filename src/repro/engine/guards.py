"""Memoized, sharing-aware guard evaluation.

Every decision procedure ultimately asks the same two questions over and over:
"is this update allowed here?" (an access-rule formula evaluated at the parent
node of the updated edge) and "is this instance complete?" (the completion
formula evaluated at the root).  :class:`GuardCache` memoizes both, with three
levels of sharing, from widest to narrowest:

* **support projection** (depth-1 states) — a formula evaluated at the root of
  a depth-1 instance can only observe the labels it mentions
  (:func:`support_labels`), so the cache key is the *projection* of the
  canonical state onto that support.  On the Theorem 5.1 SAT workloads this
  collapses the ``2^n`` states into a handful of projections per rule.

* **subtree keying** (bounded states) — a formula without upward ``Parent``
  navigation (:func:`navigates_upward`) evaluated at node ``n`` only observes
  the subtree of ``n``, so its value is shared across *all* states (and all
  explorations on the same engine) in which an isomorphic subtree occurs.
  The hash-consed subtree shapes of the interner serve as the keys.

* **state keying** (fallback) — rules that navigate upward are cached per
  (state id, node, rule); this still shares work across the repeated
  explorations a semi-soundness analysis performs.

Cache ``hits`` count formula evaluations that the legacy explorers would have
performed but the engine served from memory; ``misses`` count evaluations the
process-local tiers could not answer.  A shared KV tier (:mod:`repro.cache`)
may intercept some of those misses before the formula actually runs — such
interceptions still count as misses (so every counter is bit-identical with
caching enabled, disabled, or warm) and are tracked separately in
``kv_hits`` and the cache's own namespace counters.
"""

from __future__ import annotations

from repro.core.access import AccessRight
from repro.core.canonical import depth1_state_to_instance
from repro.core.formulas.ast import (
    And,
    Exists,
    Filter,
    Formula,
    Not,
    Or,
    Parent,
    PathExpr,
    Slash,
    Step,
)
from repro.cache.runtime import default_cache
from repro.core.formulas.semantics import evaluate
from repro.core.guarded_form import GuardedForm
from repro.core.tree import Node, Shape
from repro.io.serialization import (
    decode_guard_key,
    encode_guard_key_binary,
    form_fingerprint,
)
from repro.obs import NO_TELEMETRY

#: Sentinel distinguishing "not restored" from a restored ``False`` value.
_MISSING = object()

#: Guard-key tags whose entries are pure functions of the guarded form —
#: paths, consed subtree shapes, support projections — and therefore valid
#: in any process analysing the same form.  State-id-keyed tags (``"a"``,
#: ``"d"``, ``"phi"``) embed ids a particular store assigned and never
#: leave the process/store pair that minted them.
_PORTABLE_TAGS = frozenset({"A", "D", "1a", "1d", "1p"})


def support_labels(formula: Formula) -> frozenset:
    """All edge labels a formula (or path expression) can possibly observe.

    Evaluating *formula* at the root of a depth-1 tree only ever visits the
    root and children whose labels occur as ``Step`` labels somewhere in the
    formula, so the formula's value on a canonical depth-1 state ``S`` is a
    function of ``S & support_labels(formula)`` alone.
    """
    labels: set = set()
    stack: list = [formula]
    while stack:
        item = stack.pop()
        if isinstance(item, Step):
            labels.add(item.label)
        elif isinstance(item, Slash):
            stack.extend((item.left, item.right))
        elif isinstance(item, Filter):
            stack.extend((item.path, item.condition))
        elif isinstance(item, Exists):
            stack.append(item.path)
        elif isinstance(item, Not):
            stack.append(item.operand)
        elif isinstance(item, (And, Or)):
            stack.extend((item.left, item.right))
        # Top / Bottom / Parent observe no labels
    return frozenset(labels)


def navigates_upward(formula: "Formula | PathExpr") -> bool:
    """Whether the formula contains a ``Parent`` (``../``) step anywhere.

    A formula without upward navigation, evaluated at node ``n``, never leaves
    the subtree of ``n``; its value is therefore invariant across isomorphic
    subtrees and can be cached by subtree shape.
    """
    stack: list = [formula]
    while stack:
        item = stack.pop()
        if isinstance(item, Parent):
            return True
        if isinstance(item, Slash):
            stack.extend((item.left, item.right))
        elif isinstance(item, Filter):
            stack.extend((item.path, item.condition))
        elif isinstance(item, Exists):
            stack.append(item.path)
        elif isinstance(item, Not):
            stack.append(item.operand)
        elif isinstance(item, (And, Or)):
            stack.extend((item.left, item.right))
    return False


class GuardCache:
    """Memoizes access-rule and completion-formula evaluations for one form."""

    def __init__(self, guarded_form: GuardedForm, store=None, telemetry=None, cache=None) -> None:
        self._form = guarded_form
        self._rules = guarded_form.rules
        self._cache: dict = {}
        #: Telemetry recorder; the cache-hit path never touches it, and the
        #: miss path pays two clock reads only when tracing is enabled.
        self._obs = telemetry if telemetry is not None else NO_TELEMETRY
        #: Wall seconds spent in actual formula evaluations (miss path),
        #: accumulated only while telemetry is enabled.  ``eval_seconds`` is
        #: cumulative (stats); ``_eval_unreported`` is the drainable delta
        #: :meth:`take_eval_seconds` hands to the metrics registry.
        self.eval_seconds = 0.0
        self._eval_unreported = 0.0
        #: (AccessRight, path) -> (rule formula, upward?, support labels)
        self._rule_info: dict = {}
        completion = guarded_form.completion
        self._completion_support = support_labels(completion)
        #: Persistent write-through sink (a persistent
        #: :class:`~repro.engine.store.StateStore`), or ``None``.
        self._store = store
        #: Persisted **binary** guard rows restored raw (encoded bytes →
        #: value) and promoted into ``_cache`` on first probe; see
        #: :meth:`restore_raw`.
        self._restored_raw: dict = {}
        #: Shared KV tier (:mod:`repro.cache`): portable entries are probed
        #: here after the local tiers miss and published here after every
        #: evaluation, so concurrent workers — and separate processes on the
        #: same form — share evaluations mid-run.  Keys are prefixed with
        #: the form fingerprint; values are one byte.
        self._kv = cache if cache is not None else default_cache()
        self._kv_prefix = (
            form_fingerprint(guarded_form).encode("ascii") + b"|"
            if self._kv is not None
            else b""
        )
        self.hits = 0
        self.misses = 0
        self.kv_hits = 0
        self.entries_restored = 0

    # ------------------------------------------------------------------ #
    # rule metadata
    # ------------------------------------------------------------------ #

    def _info(self, right: AccessRight, path: tuple) -> tuple:
        info = self._rule_info.get((right, path))
        if info is None:
            rule = self._rules.rule(right, path)
            info = (rule, navigates_upward(rule), support_labels(rule))
            self._rule_info[(right, path)] = info
        return info

    def _lookup(self, key, node: Node, rule: Formula) -> bool:
        try:
            value = self._cache[key]
            self.hits += 1
            return value
        except KeyError:
            value = self._probe_restored(key)
            if value is not _MISSING:
                return value
            value = self._probe_kv(key)
            if value is not _MISSING:
                return value
            self.misses += 1
            obs = self._obs
            if obs.enabled:
                started = obs.now()
                value = evaluate(node, rule)
                elapsed = obs.now() - started
                self.eval_seconds += elapsed
                self._eval_unreported += elapsed
            else:
                value = evaluate(node, rule)
            self._cache[key] = value
            if self._store is not None:
                self._store.put_guard(key, value)
            self._publish_kv(key, value)
            return value

    def _probe_restored(self, key):
        """Promote *key* from the raw-restored tier, or :data:`_MISSING`.

        The binary guard-row encoding is canonical and injective, so instead
        of decoding every persisted row at hydration the cache keeps the raw
        bytes and **encodes the probed key** (one cheap
        :func:`~repro.io.serialization.encode_guard_key_binary` per first
        probe) — hydration cost becomes proportional to the keys a run
        actually asks about, not to the store's guard table.  A promoted
        entry counts as a hit, exactly as a probe after an eager restore
        did, and is not written back to the store it came from.
        """
        raw = self._restored_raw
        if not raw:
            return _MISSING
        value = raw.pop(encode_guard_key_binary(key), _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._cache[key] = value
        return value

    def _probe_kv(self, key):
        """A portable entry from the shared KV tier, or :data:`_MISSING`.

        Only form-pure keys (:data:`_PORTABLE_TAGS`) are probed — state-id
        keys would read another store's ids as this one's.  A hit spares
        the formula evaluation but still **counts as a local miss**: the KV
        only ever intercepts probes the process-local tiers already missed,
        so charging it there keeps every ``stats()`` counter bit-identical
        whether the cache is cold, warm, shared, or absent (the parity
        suites compare whole result payloads).  KV effectiveness is
        reported by the cache's own namespace counters and
        :attr:`kv_hits`.  The entry lands in the in-process dict and is
        written through to the persistent store, so resumed runs against
        that store keep their full guard table.
        """
        kv = self._kv
        if kv is None or key[0] not in _PORTABLE_TAGS:
            return _MISSING
        raw = kv.get("guards", self._kv_prefix + encode_guard_key_binary(key))
        if raw is None:
            return _MISSING
        value = raw == b"\x01"
        self.misses += 1
        self.kv_hits += 1
        self._cache[key] = value
        if self._store is not None:
            self._store.put_guard(key, value)
        return value

    def _publish_kv(self, key, value: bool) -> None:
        """Offer one evaluated portable entry to the shared KV tier."""
        kv = self._kv
        if kv is not None and key[0] in _PORTABLE_TAGS:
            kv.put(
                "guards",
                self._kv_prefix + encode_guard_key_binary(key),
                b"\x01" if value else b"\x00",
            )

    def restore(self, key: tuple, value: bool) -> None:
        """Seed one persisted guard entry (hydration; not written back)."""
        self._cache[key] = value
        self.entries_restored += 1

    def restore_raw(self, row, value: bool) -> None:
        """Seed one persisted guard row without decoding it (hydration).

        Binary rows are kept as raw bytes and promoted lazily by
        :meth:`_probe_restored`; a corrupt binary row can therefore never
        poison the cache — it simply never matches a probed key's canonical
        encoding and the evaluation reruns.  Legacy JSON rows are decoded
        (and validated) eagerly, preserving the attach-time corruption
        surfacing those stores were written under.
        """
        if isinstance(row, (bytes, bytearray, memoryview)):
            self._restored_raw[bytes(row)] = bool(value)
            self.entries_restored += 1
        else:
            self.restore(decode_guard_key(row), bool(value))

    # ------------------------------------------------------------------ #
    # bounded-explorer guards (arbitrary depth, subtree/state keyed)
    # ------------------------------------------------------------------ #

    def addition_allowed(
        self, state_id: int, node: Node, label: str, subtree_shape: Shape
    ) -> bool:
        """Whether adding *label* under *node* is allowed (``A(add, e)``
        evaluated at *node*); *subtree_shape* is the consed shape of *node*."""
        path = node.label_path() + (label,)
        rule, upward, _ = self._info(AccessRight.ADD, path)
        if upward:
            key = ("a", state_id, node.node_id, label)
        else:
            key = ("A", path, subtree_shape)
        return self._lookup(key, node, rule)

    def deletion_allowed(self, state_id: int, node: Node, parent_shape: Shape) -> bool:
        """Whether deleting the leaf *node* is allowed (``A(del, e)``
        evaluated at the parent); *parent_shape* is the parent's consed shape.

        The rule only sees the parent, so all same-label siblings share one
        cache entry.
        """
        path = node.label_path()
        rule, upward, _ = self._info(AccessRight.DEL, path)
        if upward:
            key = ("d", state_id, node.parent.node_id, node.label)
        else:
            key = ("D", path, parent_shape)
        return self._lookup(key, node.parent, rule)

    def completion(self, state_id: int, root: Node) -> bool:
        """Whether the state satisfies the completion formula."""
        key = ("phi", state_id)
        return self._lookup(key, root, self._form.completion)

    # ------------------------------------------------------------------ #
    # depth-1 guards (canonical label-set states, support-projected)
    # ------------------------------------------------------------------ #

    def _d1_projected(self, tag: str, label_key, state: frozenset, rule: Formula, support: frozenset) -> bool:
        projection = state & support
        key = (tag, label_key, projection)
        try:
            value = self._cache[key]
            self.hits += 1
            return value
        except KeyError:
            value = self._probe_restored(key)
            if value is not _MISSING:
                return value
            value = self._probe_kv(key)
            if value is not _MISSING:
                return value
            self.misses += 1
            obs = self._obs
            if obs.enabled:
                started = obs.now()
                materialised = depth1_state_to_instance(self._form.schema, projection)
                value = evaluate(materialised.root, rule)
                elapsed = obs.now() - started
                self.eval_seconds += elapsed
                self._eval_unreported += elapsed
            else:
                materialised = depth1_state_to_instance(self._form.schema, projection)
                value = evaluate(materialised.root, rule)
            self._cache[key] = value
            if self._store is not None:
                self._store.put_guard(key, value)
            self._publish_kv(key, value)
            return value

    def d1_addition_allowed(self, state: frozenset, label: str) -> bool:
        """``A(add, label)`` at the root of the canonical depth-1 *state*."""
        rule, _, support = self._info(AccessRight.ADD, (label,))
        return self._d1_projected("1a", label, state, rule, support)

    def d1_deletion_allowed(self, state: frozenset, label: str) -> bool:
        """``A(del, label)`` at the root of the canonical depth-1 *state*."""
        rule, _, support = self._info(AccessRight.DEL, (label,))
        return self._d1_projected("1d", label, state, rule, support)

    def d1_completion(self, state: frozenset) -> bool:
        """Whether the canonical depth-1 *state* satisfies the completion."""
        return self._d1_projected(
            "1p", None, state, self._form.completion, self._completion_support
        )

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def credit_reuse(self, queries: int) -> None:
        """Record *queries* evaluations served wholesale from a memoized
        expansion (the legacy explorers would have re-evaluated each)."""
        self.hits += queries

    def take_eval_seconds(self) -> float:
        """Drain the not-yet-reported miss-path evaluation time (telemetry).

        The cumulative :attr:`eval_seconds` (what :meth:`stats` reports) is
        untouched; this hands out each second exactly once, so callers can
        feed a counter without double-counting.
        """
        drained, self._eval_unreported = self._eval_unreported, 0.0
        return drained

    @property
    def hit_rate(self) -> float:
        """Fraction of guard queries served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot for :class:`AnalysisResult` stats."""
        return {
            "guard_cache_hits": self.hits,
            "guard_cache_misses": self.misses,
            "guard_cache_hit_rate": round(self.hit_rate, 4),
            "formula_evaluations": self.misses,
            "formula_evaluations_saved": self.hits,
            "guard_entries_restored": self.entries_restored,
            "guard_eval_seconds": round(self.eval_seconds, 6),
        }
