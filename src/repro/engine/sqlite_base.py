"""Shared sqlite plumbing and the LRU read cache.

Extracted from :mod:`repro.engine.store` so the pieces every sqlite-backed
artifact shares — the pragma'd connection opener, the ``meta`` identity
table, and the hit/miss-counting :class:`LRUCache` — can be reused without
importing the full state-store machinery.  Users today: the engine state
store (:class:`repro.engine.store.SqliteStore`), the service job queue
(:class:`repro.service.jobs.JobStore`), the campaign result store
(:class:`repro.campaign.store.CampaignStore`), and the cache tier's
:class:`repro.cache.SqliteKV`.  The old names still import from
``repro.engine.store``.
"""

from __future__ import annotations

import sqlite3
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from repro.exceptions import StoreError

#: How long (ms) sqlite connections wait on a locked database before giving
#: up — long enough to ride out another process's batched commit.
_BUSY_TIMEOUT_MS = 10_000

#: Cache sentinel distinguishing "not cached" from a cached ``None`` (a
#: memoized negative lookup — e.g. a representative that is absent from the
#: store and will stay absent until it is registered).
_MISS = object()


class LRUCache:
    """A small least-recently-used mapping with hit/miss counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("LRU cache capacity must be positive")
        self.capacity = capacity
        self._items: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key, default=None):
        """The cached value, or *default* when the key is absent.

        Presence is what counts a hit: a cached ``None`` *is* a hit, so
        negative lookups are cacheable — callers that need to distinguish a
        cached ``None`` from a miss pass their own sentinel as *default*
        (historically a cached ``None`` was indistinguishable from a miss and
        was re-fetched forever).
        """
        try:
            self._items.move_to_end(key)
        except KeyError:
            self.misses += 1
            return default
        self.hits += 1
        return self._items[key]

    def put(self, key, value) -> None:
        """Insert/refresh an entry, evicting the least recently used one."""
        self._items[key] = value
        self._items.move_to_end(key)
        if len(self._items) > self.capacity:
            self._items.popitem(last=False)
            self.evictions += 1

    def evict(self, key) -> None:
        """Drop one entry if present (used by the eviction property tests)."""
        self._items.pop(key, None)

    def clear(self) -> None:
        """Drop every entry."""
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key) -> bool:
        return key in self._items


class SqliteBacked:
    """Shared sqlite plumbing for the engine's persistent artifacts.

    Subclasses declare their schema in ``_TABLES`` / ``_INDEXES`` and call
    :meth:`_open_sqlite`; the connection is opened with the engine's standard
    pragmas (WAL journal so concurrent readers coexist with batched writers,
    NORMAL synchronous, a busy timeout) and the declared schema is created.
    ``_after_tables`` runs between table and index creation — the state
    store's ``shape_hash`` migration needs its column to exist before the
    index over it does.  Every backed database keeps a string ``meta`` table
    (declare it in ``_TABLES``) accessed through ``_get_meta`` /
    ``_set_meta`` — both the engine state store and the campaign result
    store record their identity there and verify it on re-attach.
    """

    #: Human-readable role used in the "not a usable ..." open error.
    _DB_ROLE = "sqlite database"

    _TABLES: tuple = ()
    _INDEXES: tuple = ()

    def _open_sqlite(self, path: "str | Path", check_same_thread: bool = True) -> None:
        self.path = str(path)
        try:
            # check_same_thread=False lets a subclass share one connection
            # across threads behind its own lock (the service job store does;
            # engine stores keep sqlite's same-thread guard).
            self._conn = sqlite3.connect(self.path, check_same_thread=check_same_thread)
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            # WAL lets concurrent processes read while a writer streams its
            # batches (the parallel engine's frontier workers hydrating guard
            # values, a campaign's report running against a live store);
            # in-memory databases don't support it, which sqlite reports by
            # answering with the journal mode it kept.
            self._conn.execute("PRAGMA journal_mode=WAL")
            for statement in self._TABLES:
                self._conn.execute(statement)
            self._after_tables()
            for statement in self._INDEXES:
                self._conn.execute(statement)
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            raise StoreError(
                f"{self.path} is not a usable {self._DB_ROLE}: {exc}"
            ) from exc

    def _after_tables(self) -> None:
        """Hook between table and index creation (schema migrations)."""

    def _get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return row[0] if row else None

    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
        )
