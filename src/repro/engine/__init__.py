"""The unified exploration engine.

Every decision procedure in :mod:`repro.analysis` — completability
(Theorems 4.6/5.2/5.5), semi-soundness, invariant checking — and the workflow
extraction of :mod:`repro.workflow` funnels through state-space exploration.
This package is that hot path, carved out as an explicit subsystem:

* :mod:`repro.engine.interning` — hash-consed shapes, int state keys,
  incremental successor-shape computation; store-backed engines get a
  two-tier table (resident dict first, on-miss reverse lookup through the
  store's ``shape_hash`` index) so residency tracks what a run touches,
  not what the store holds;
* :mod:`repro.engine.guards` — memoized access-rule / completion-formula
  evaluation with support-projection and subtree-shape sharing;
* :mod:`repro.engine.strategies` — pluggable frontier orders (BFS, DFS,
  completion-guided best-first);
* :mod:`repro.engine.store` — persistent state stores
  (:class:`InMemoryStore` / :class:`SqliteStore`): interned shapes, canonical
  representatives, guard values and resumable exploration checkpoints on
  disk, with write batching, LRU read caches (negative lookups included)
  and a ``shape_hash``-indexed reverse lookup backing partial hydration and
  the engine's ``resident_budget`` eviction;
* :mod:`repro.engine.engine` — :class:`ExplorationEngine`, tying them
  together and producing :class:`EngineGraph` / legacy-compatible graphs;
* :mod:`repro.engine.parallel` / :mod:`repro.engine.workers` —
  :class:`ParallelExplorationEngine`, expanding frontier waves on
  :class:`WorkerPool` processes (shape-hash sharded, batched result merging)
  with results bit-identical to the serial engine;
* :mod:`repro.engine.wire` — the versioned binary wire codec for
  worker→coordinator batches: struct-packed frames with a per-batch shape
  table (each distinct successor root shape serialised once, candidates
  referencing it by index) and inline guard entries.

The legacy entry points ``explore_depth1`` / ``explore_bounded`` in
:mod:`repro.analysis.statespace` remain as thin shims over this engine.
"""

from repro.engine.engine import EngineGraph, ExplorationEngine, engine_for
from repro.engine.guards import GuardCache, navigates_upward, support_labels
from repro.engine.parallel import ParallelExplorationEngine, stable_shape_hash
from repro.engine.interning import (
    IncrementalShaper,
    ShapeInterner,
    StateId,
    map_isomorphism,
)
from repro.engine.store import (
    InMemoryStore,
    LRUCache,
    SqliteStore,
    StateStore,
    exploration_run_key,
    open_store,
)
from repro.engine.wire import WIRE_VERSION, FrameEncoder, WireFrame
from repro.engine.workers import FrontierWorker, WorkerPool
from repro.engine.strategies import (
    STRATEGIES,
    BreadthFirstFrontier,
    DepthFirstFrontier,
    FrontierStrategy,
    GuidedFrontier,
    completion_distance,
    make_strategy,
)

__all__ = [
    "ExplorationEngine",
    "ParallelExplorationEngine",
    "EngineGraph",
    "engine_for",
    "stable_shape_hash",
    "WorkerPool",
    "FrontierWorker",
    "WIRE_VERSION",
    "FrameEncoder",
    "WireFrame",
    "StateStore",
    "InMemoryStore",
    "SqliteStore",
    "LRUCache",
    "open_store",
    "exploration_run_key",
    "GuardCache",
    "support_labels",
    "navigates_upward",
    "ShapeInterner",
    "IncrementalShaper",
    "StateId",
    "map_isomorphism",
    "FrontierStrategy",
    "BreadthFirstFrontier",
    "DepthFirstFrontier",
    "GuidedFrontier",
    "completion_distance",
    "make_strategy",
    "STRATEGIES",
]
