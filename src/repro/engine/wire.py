"""The versioned binary wire codec for worker→coordinator batches.

PR 4 replaced PR 3's JSON-per-candidate shipping with struct-packed frames;
this revision (version 2) rebuilds the decode side around **batched varint
runs** so a frame is consumed in a handful of bulk operations instead of one
Python-level function call per integer:

* a **frame label table** — every label occurring in the frame (shape nodes
  and addition updates alike) is serialised once, and everything else refers
  to it by index;
* a **flat shape table** — shapes travel as preorder ``(label index, child
  count)`` pair runs, not recursive framings: the whole table decodes as two
  varint runs and materialises directly into
  :class:`~repro.engine.arena.ShapeArena` rows (:meth:`WireFrame.shape_rows`)
  without building a tuple per node;
* **run-packed candidate payloads** — per state, all candidate kind bytes as
  one contiguous slice followed by all numeric fields as one varint run;
* **interned, batch-decoded guard entries** — guard keys use the tagged term
  codec of :mod:`repro.io.serialization` (shared with the store's binary
  guard rows), but every string inside a key is shipped as an index into a
  guard-section string table (:func:`~repro.io.serialization.
  write_term_interned`) and the whole section decodes in one iterative pass
  (:func:`~repro.io.serialization.read_guard_entries`) — guard keys are
  dominated by repeated rule-path and shape labels, and profiles showed the
  per-term recursive decode dominating frame decode on guard-heavy
  workloads.  The table is the section's own (not the frame label table), so
  ``guard_nbytes`` / ``expansion_nbytes`` metrics keep comparing expansion
  payloads like for like against the PR 3 encoding.

The varint-run decoder itself is dispatched through
:mod:`repro.engine._codec` — C-accelerated when the cffi extension is
available, pure Python otherwise (``REPRO_PURE=1`` forces it), bit-identical
either way.

Version 3 adds an **optional telemetry section** directly after the version
byte: a varint byte length followed by a UTF-8 JSON blob — the worker's
span/metric snapshot (:meth:`repro.obs.tracing.Telemetry.export_payload`)
that the coordinator merges into its cross-process recorder.  With
telemetry disabled the section is a single zero byte, so the instrumented
protocol costs untraced runs nothing measurable; ``guard_nbytes`` /
``expansion_nbytes`` metrics both exclude it.

Frame layout (version 3; all integers unsigned LEB128 varints, strings
length-prefixed UTF-8)::

    magic       2 bytes  b"GW"
    version     1 byte   WIRE_VERSION
    telemetry   byte length (0 when absent), then that many bytes of JSON
    guards      string-table count, then each distinct key string; entry
                count, then per entry: interned term-coded key tuple
                (strings as table indices), value byte
    candidates  total candidate count across the frame (metrics, read eagerly)
    labels      count, then each label (shared by shapes and additions)
    shapes      table entry count S, table byte length, then the table
                (skipped on the eager parse; decoded lazily at first pop):
                a run of S node counts, then one run of all preorder
                (label index, child count) pairs, concatenated per shape
    states      count, then the directory: one run of (state id, payload
                byte length) pairs
    payloads    concatenated per-state payloads, in directory order

Per-state payload::

    guard query count, candidate count n, then n kind bytes
    (0 = deletion, 1 = addition), then one varint run of all fields:
        addition: parent node id, label index, shape index, successor size,
                  copies
        deletion: node id, shape index, successor size

The coordinator (:class:`~repro.engine.parallel.ParallelExplorationEngine`)
parses the guard section, metrics counters and state directory **eagerly** at
wave-merge time, and decodes the shape table and each state's payload
**lazily** when the base exploration loop pops that state — so interning
order, and with it every dense state id, stays bit-identical to a serial run,
and work staged for states a truncated exploration never pops is never
decoded either.

Every structural defect — truncation anywhere, trailing bytes, a bad magic,
an unknown version byte, an out-of-range shape/label index or value byte —
raises :class:`~repro.exceptions.WireFormatError`; the Hypothesis suite in
``tests/property/test_wire_properties.py`` pins round-trips and rejection.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.core.guarded_form import Addition, Deletion, Update
from repro.core.tree import Shape
from repro.engine import _codec
from repro.exceptions import WireFormatError
from repro.io.serialization import (
    read_guard_entries,
    read_str,
    read_term,
    read_uvarint,
    write_str,
    write_term,
    write_term_interned,
    write_uvarint,
)

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "FrameEncoder",
    "WireFrame",
    "read_term",
    "write_term",
    "pr3_encoding_cost",
]

#: Leading bytes of every wire frame.
WIRE_MAGIC = b"GW"

#: Frame layout version; a coordinator refuses frames from any other.
WIRE_VERSION = 3

# Candidate kind bytes.
_KIND_DELETION = 0
_KIND_ADDITION = 1

#: Numeric fields per candidate kind (see the payload layout above).
_ADDITION_FIELDS = 5
_DELETION_FIELDS = 3


# --------------------------------------------------------------------------- #
# frame encoding (worker side)
# --------------------------------------------------------------------------- #


class FrameEncoder:
    """Builds one wire frame for a worker's answer to one task batch.

    ``add_state`` accepts the raw candidate tuples the expansion produced —
    ``(update, root shape, is_addition, successor size, copies)`` — and
    interns each distinct root shape into the frame's shape table (and each
    distinct label into the frame's label table) on the fly;
    ``add_guard_entries`` attaches the guard evaluations the batch performed;
    ``finish`` emits the frame bytes.
    """

    def __init__(self) -> None:
        self._label_index: dict[str, int] = {}
        self._label_table = bytearray()
        self._guard_str_index: dict[str, int] = {}
        self._guard_str_table = bytearray()
        self._guard_term_refs: dict[bytes, int] = {}
        self._shape_index: dict = {}  # Shape -> table index
        self._shape_counts: list[int] = []  # per table entry, its node count
        self._shape_pairs = bytearray()  # concatenated preorder pair runs
        self._states = bytearray()  # directory entries
        self._payloads: list[bytes] = []
        self._guards = bytearray()
        self._guard_count = 0
        self._state_count = 0
        self._telemetry_blob = b""
        self.candidates_encoded = 0

    def label_ref(self, label: str) -> int:
        """The label-table index of *label*, appending it on first use."""
        index = self._label_index.get(label)
        if index is None:
            index = len(self._label_index)
            self._label_index[label] = index
            write_str(self._label_table, label)
        return index

    def shape_ref(self, shape: Shape) -> int:
        """The shape-table index of *shape*, appending it on first occurrence."""
        index = self._shape_index.get(shape)
        if index is None:
            index = len(self._shape_index)
            self._shape_index[shape] = index
            pairs = self._shape_pairs
            count = 0
            stack = [shape]
            pop = stack.pop
            while stack:
                label, children = pop()
                write_uvarint(pairs, self.label_ref(label))
                write_uvarint(pairs, len(children))
                count += 1
                stack.extend(reversed(children))
            self._shape_counts.append(count)
        return index

    def add_state(self, state_id: int, candidates: list, guard_queries: int) -> None:
        """Append one state's expansion payload.

        Args:
            state_id: the canonical id the coordinator addressed the state by.
            candidates: ``(update, root shape, is_addition, successor size,
                copies before)`` tuples in enumeration order.
            guard_queries: guard-cache queries this expansion performed.
        """
        payload = bytearray()
        write_uvarint(payload, guard_queries)
        write_uvarint(payload, len(candidates))
        kinds = bytearray()
        fields = bytearray()
        for update, shape, is_addition, succ_size, copies in candidates:
            index = self.shape_ref(shape)
            if is_addition:
                kinds.append(_KIND_ADDITION)
                write_uvarint(fields, update.parent_id)
                write_uvarint(fields, self.label_ref(update.label))
                write_uvarint(fields, index)
                write_uvarint(fields, succ_size)
                write_uvarint(fields, copies)
            else:
                kinds.append(_KIND_DELETION)
                write_uvarint(fields, update.node_id)
                write_uvarint(fields, index)
                write_uvarint(fields, succ_size)
            self.candidates_encoded += 1
        payload += kinds
        payload += fields
        write_uvarint(self._states, state_id)
        write_uvarint(self._states, len(payload))
        self._payloads.append(bytes(payload))
        self._state_count += 1

    def _guard_str_ref(self, text: str) -> int:
        """The guard string-table index of *text*, appending it on first use."""
        index = self._guard_str_index.get(text)
        if index is None:
            index = len(self._guard_str_index)
            self._guard_str_index[text] = index
            write_str(self._guard_str_table, text)
        return index

    def add_guard_entries(self, entries: list) -> None:
        """Append ``(key tuple, bool)`` guard evaluations to the frame.

        Key strings are interned through the guard section's own string
        table, and repeated composite subterms (rule-path tuples, subtree
        shapes) through its term table — each is shipped (and decoded) once
        per frame no matter how many keys mention it.
        """
        for key, value in entries:
            write_term_interned(self._guards, key, self._guard_str_ref, self._guard_term_refs)
            self._guards.append(1 if value else 0)
            self._guard_count += 1

    def add_telemetry(self, payload: dict) -> None:
        """Attach the worker's telemetry payload (spans + metric deltas).

        Encoded as compact JSON; the section stays a single zero byte when
        this is never called (telemetry disabled).
        """
        import json

        self._telemetry_blob = json.dumps(
            payload, separators=(",", ":"), sort_keys=True, default=str
        ).encode("utf-8")

    def finish(self) -> bytes:
        """The finished frame."""
        out = bytearray(WIRE_MAGIC)
        out.append(WIRE_VERSION)
        write_uvarint(out, len(self._telemetry_blob))
        out.extend(self._telemetry_blob)
        write_uvarint(out, len(self._guard_str_index))
        out.extend(self._guard_str_table)
        write_uvarint(out, self._guard_count)
        out.extend(self._guards)
        write_uvarint(out, self.candidates_encoded)
        write_uvarint(out, len(self._label_index))
        out.extend(self._label_table)
        table = bytearray()
        for count in self._shape_counts:
            write_uvarint(table, count)
        table += self._shape_pairs
        write_uvarint(out, len(self._shape_counts))
        write_uvarint(out, len(table))
        out.extend(table)
        write_uvarint(out, self._state_count)
        out.extend(self._states)
        for payload in self._payloads:
            out.extend(payload)
        return bytes(out)


# --------------------------------------------------------------------------- #
# frame decoding (coordinator side)
# --------------------------------------------------------------------------- #


class WireFrame:
    """One received frame: eager envelope parse, lazy payload decode.

    Construction validates the envelope end to end — magic, version byte,
    guard section, metrics counters, label table, state directory, and that
    the directory's payload spans tile the remaining bytes *exactly* — so
    truncated or corrupt frames are rejected on receipt, before anything is
    staged.  The shape table and the per-state candidate payloads are only
    decoded when :meth:`shape_rows` / :meth:`shape_table` / :meth:`expansion`
    are first called, i.e. when the exploration loop actually pops a staged
    state; the decode itself runs over the frame buffer in batched varint
    runs (:mod:`repro.engine._codec`), never byte-at-a-time Python loops.
    ``decode_seconds`` accumulates the wall time of both the eager and the
    lazy parses.
    """

    def __init__(self, data: bytes) -> None:
        started = time.perf_counter()
        decode_run = _codec.decode_uvarint_run
        self._data = data
        if len(data) < len(WIRE_MAGIC) + 1 or data[: len(WIRE_MAGIC)] != WIRE_MAGIC:
            raise WireFormatError("not a wire frame (bad magic)")
        version = data[len(WIRE_MAGIC)]
        if version != WIRE_VERSION:
            raise WireFormatError(
                f"wire frame version {version}, this build speaks {WIRE_VERSION}"
            )
        pos = len(WIRE_MAGIC) + 1
        telemetry_start = pos
        telemetry_nbytes, pos = read_uvarint(data, pos)
        #: The worker's telemetry payload (spans + metric deltas) as a dict,
        #: or ``None`` when the frame carries none (telemetry disabled).
        self.telemetry = None
        if telemetry_nbytes:
            if pos + telemetry_nbytes > len(data):
                raise WireFormatError("truncated telemetry section")
            import json

            try:
                blob = json.loads(bytes(data[pos : pos + telemetry_nbytes]).decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise WireFormatError(f"malformed telemetry section: {exc}") from None
            if not isinstance(blob, dict):
                raise WireFormatError("malformed telemetry section: not an object")
            self.telemetry = blob
            pos += telemetry_nbytes
        #: Bytes spent on the telemetry section, length prefix included
        #: (excluded from both guard and expansion byte metrics).
        self.telemetry_nbytes = pos - telemetry_start
        guard_section_start = pos
        guard_str_count, pos = read_uvarint(data, pos)
        guard_strings = []
        for _ in range(guard_str_count):
            text, pos = read_str(data, pos)
            guard_strings.append(text)
        guard_count, pos = read_uvarint(data, pos)
        self.guard_entries, pos = read_guard_entries(data, pos, guard_count, guard_strings)
        #: Bytes spent on the guard section, its string table included (PR 3
        #: shipped the same entries as tagged JSON; candidate metrics exclude
        #: them so the bytes-per-candidate figure compares expansion payloads
        #: like for like).
        self.guard_nbytes = pos - guard_section_start
        #: Total candidates across all states (for dedup-rate metrics).
        self.total_candidates, pos = read_uvarint(data, pos)
        label_count, pos = read_uvarint(data, pos)
        labels = []
        for _ in range(label_count):
            label, pos = read_str(data, pos)
            labels.append(label)
        self._labels = labels
        #: Distinct root shapes in the frame's shape table.
        self.shape_count, pos = read_uvarint(data, pos)
        table_nbytes, pos = read_uvarint(data, pos)
        self._table_span = (pos, pos + table_nbytes)
        pos += table_nbytes
        if pos > len(data):
            raise WireFormatError("truncated shape table")
        state_count, pos = read_uvarint(data, pos)
        directory, pos = decode_run(data, pos, 2 * state_count)
        self._spans: dict = {}
        offset = pos
        for i in range(state_count):
            nbytes = directory[2 * i + 1]
            self._spans[directory[2 * i]] = (offset, offset + nbytes)
            offset += nbytes
        if offset != len(data):
            raise WireFormatError(
                f"frame length mismatch: directory claims {offset} bytes, "
                f"frame has {len(data)}"
            )
        #: Bytes carrying the expansion payloads: label/shape tables, state
        #: directory and candidate records (everything but the guard and
        #: telemetry sections and the 3-byte envelope).
        self.expansion_nbytes = (
            len(data) - self.guard_nbytes - self.telemetry_nbytes - len(WIRE_MAGIC) - 1
        )
        self._preorder: Optional[tuple[list, list]] = None
        self._shapes: Optional[list] = None
        self._arena_rows: Optional[list] = None
        self.decode_seconds = time.perf_counter() - started

    def __len__(self) -> int:
        return len(self._data)

    def state_ids(self) -> list:
        """The state ids this frame carries payloads for, in batch order."""
        return list(self._spans)

    def _shape_preorders(self) -> tuple[list, list]:
        """Decode the shape section once: ``(node counts, flat pair values)``.

        The section is two varint runs; ``flat`` holds the concatenated
        preorder ``label index, child count`` values of every table entry
        (shape *i*'s slice starts at ``2 * sum(counts[:i])``).
        """
        if self._preorder is None:
            started = time.perf_counter()
            decode_run = _codec.decode_uvarint_run
            pos, end = self._table_span
            data = self._data
            counts, pos = decode_run(data, pos, self.shape_count)
            total_nodes = 0
            for count in counts:
                if count < 1:
                    raise WireFormatError("shape table entry claims zero nodes")
                total_nodes += count
            if 2 * total_nodes > end - self._table_span[0]:
                # each preorder pair needs at least two bytes; reject before
                # allocating for a count a truncated/corrupt frame made up
                raise WireFormatError("shape table node counts exceed section size")
            flat, pos = decode_run(data, pos, 2 * total_nodes)
            if pos != end:
                raise WireFormatError(
                    f"shape table length mismatch: decoded to byte {pos}, "
                    f"framing claims {end}"
                )
            label_count = len(self._labels)
            for i in range(0, 2 * total_nodes, 2):
                if flat[i] >= label_count:
                    raise WireFormatError(
                        f"shape node references label {flat[i]}, "
                        f"table has {label_count}"
                    )
            self._preorder = (counts, flat)
            self.decode_seconds += time.perf_counter() - started
        return self._preorder

    def shape_rows(self, arena) -> list:
        """The frame's shape table as :class:`~repro.engine.arena.ShapeArena`
        rows (memoized; decoded on first call).

        This is the coordinator's hot path: frame label indices are mapped to
        arena label ids once, then each table entry is interned straight from
        its preorder pair run — an already-known shape costs one bytes-key
        dict probe, no tuples.
        """
        if self._arena_rows is None:
            counts, flat = self._shape_preorders()
            started = time.perf_counter()
            label_map = [arena.label_id(label) for label in self._labels]
            intern = arena.intern_preorder_flat
            rows = []
            base = 0
            for count in counts:
                rows.append(intern(flat, base, count, label_map))
                base += 2 * count
            self._arena_rows = rows
            self.decode_seconds += time.perf_counter() - started
        return self._arena_rows

    def shape_table(self, cons: Optional[Callable] = None) -> list:
        """The decoded shape table as nested tuples (memoized).

        Args:
            cons: optional hash-consing function applied *bottom-up* to every
                decoded subtree — children are consed before (and alongside)
                their roots, so table entries share canonical subtree objects
                with a consumer's interner.
        """
        if self._shapes is None:
            counts, flat = self._shape_preorders()
            started = time.perf_counter()
            labels = self._labels
            shapes = []
            cursor = 0

            def build() -> Shape:
                nonlocal cursor
                label = labels[flat[cursor]]
                nchildren = flat[cursor + 1]
                cursor += 2
                children = tuple(build() for _ in range(nchildren))
                shape: Shape = (label, children)
                return cons(shape) if cons is not None else shape

            for count in counts:
                start = cursor
                try:
                    shapes.append(build())
                except IndexError:
                    raise WireFormatError(
                        "malformed shape preorder: missing children"
                    ) from None
                if cursor - start != 2 * count:
                    raise WireFormatError(
                        "malformed shape preorder: child counts do not tile "
                        "the entry's node count"
                    )
            self._shapes = shapes
            self.decode_seconds += time.perf_counter() - started
        return self._shapes

    def expansion(self, state_id: int) -> tuple[list, int]:
        """Decode one state's payload: ``(raw candidates, guard queries)``.

        Raw candidates are ``(update, shape index, is_addition, successor
        size, copies)`` tuples — the coordinator resolves shape indices
        against :meth:`shape_rows` (or :meth:`shape_table`) and assigns state
        ids itself.
        """
        started = time.perf_counter()
        try:
            pos, end = self._spans[state_id]
        except KeyError:
            raise WireFormatError(f"frame carries no payload for state {state_id}") from None
        data = self._data
        guard_queries, pos = read_uvarint(data, pos)
        count, pos = read_uvarint(data, pos)
        if pos + count > end:
            raise WireFormatError("truncated candidate payload")
        kinds = memoryview(data)[pos : pos + count]
        pos += count
        total_fields = 0
        for kind in kinds:
            if kind == _KIND_ADDITION:
                total_fields += _ADDITION_FIELDS
            elif kind == _KIND_DELETION:
                total_fields += _DELETION_FIELDS
            else:
                raise WireFormatError(f"unknown candidate kind byte {kind}")
        fields, pos = _codec.decode_uvarint_run(data, pos, total_fields)
        if pos != end:
            raise WireFormatError(
                f"state payload length mismatch: decoded to byte {pos}, "
                f"directory claims {end}"
            )
        shape_count = self.shape_count
        label_count = len(self._labels)
        labels = self._labels
        candidates = []
        cursor = 0
        update: Update
        for kind in kinds:
            if kind == _KIND_ADDITION:
                parent_id = fields[cursor]
                label_index = fields[cursor + 1]
                index = fields[cursor + 2]
                succ_size = fields[cursor + 3]
                copies = fields[cursor + 4]
                cursor += _ADDITION_FIELDS
                if label_index >= label_count:
                    raise WireFormatError(
                        f"candidate references label {label_index}, "
                        f"table has {label_count}"
                    )
                update = Addition(parent_id, labels[label_index])
                is_addition = True
            else:
                node_id = fields[cursor]
                index = fields[cursor + 1]
                succ_size = fields[cursor + 2]
                cursor += _DELETION_FIELDS
                copies = 0
                update = Deletion(node_id)
                is_addition = False
            if index >= shape_count:
                raise WireFormatError(
                    f"candidate references shape {index}, table has {shape_count}"
                )
            candidates.append((update, index, is_addition, succ_size, copies))
        self.decode_seconds += time.perf_counter() - started
        return candidates, guard_queries

    def take_decode_seconds(self) -> float:
        """Drain the accumulated decode-time counter (engine statistics)."""
        elapsed, self.decode_seconds = self.decode_seconds, 0.0
        return elapsed


# --------------------------------------------------------------------------- #
# PR 3 encoding baseline (benchmark / test reference)
# --------------------------------------------------------------------------- #


def pr3_encoding_cost(engine) -> tuple[int, int]:
    """What the PR 3 wire protocol would ship for *engine*'s expansions.

    PR 3 encoded, per candidate: the JSON update, the JSON root shape and the
    full JSON successor representative (node ids included).  Bit-identity
    means a serial engine's memoized expansions are exactly the candidates
    the workers answer with, so measuring the encoding there is exact — and
    conservative, since the actual pickled tuples carried extra overhead.

    This is the single definition of the ≥40% reduction gate's denominator,
    shared by ``benchmarks/run_all.py`` and the wire differential tests.

    Returns:
        ``(total bytes, candidate count)`` over every memoized expansion of
        *engine* (a serial :class:`~repro.engine.engine.ExplorationEngine`
        that has finished exploring).
    """
    import json

    from repro.io.serialization import encode_instance_with_ids, encode_shape, encode_update

    total = 0
    count = 0
    for candidates, _queries in engine._expansions.values():
        for update, succ_id, _is_addition, _size, _copies in candidates:
            total += len(json.dumps(encode_update(update)).encode("utf-8"))
            total += len(encode_shape(engine.interner.shape_of(succ_id)).encode("utf-8"))
            total += len(
                encode_instance_with_ids(engine.representative(succ_id)).encode("utf-8")
            )
            count += 1
    return total, count
