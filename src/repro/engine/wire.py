"""The versioned binary wire codec for worker→coordinator batches.

PR 3's parallel subsystem shipped one JSON-encoded successor instance per
expansion candidate across the process boundary — the coordinator-side
decode/merge work the ROADMAP calls out as the Amdahl bottleneck.  This
module replaces that encoding with struct-packed **frames**:

* a **per-batch shape table** — each distinct successor root shape occurring
  in a batch is serialised exactly once (dedup by shape identity, i.e. by
  ``stable_shape_hash`` equivalence classes within the wave batch) and
  candidates reference it by table index;
* **no representative instances on the wire at all** — the coordinator owns
  the parent representative it shipped to the worker, so it can derive a new
  successor's representative itself with the *same* incremental derivation
  the serial engine uses (:meth:`IncrementalShaper.successor`), node id for
  node id.  Duplicate candidates (the overwhelming majority) collapse to a
  varint shape index;
* **binary guard entries** — the guard evaluations a worker performed travel
  in the same frame, encoded with a compact tagged term codec instead of
  tagged JSON text.

Frame layout (version 1; all integers unsigned LEB128 varints, strings
length-prefixed UTF-8)::

    magic       2 bytes  b"GW"
    version     1 byte   WIRE_VERSION
    guards      count, then per entry: term-coded key tuple, value byte
    candidates  total candidate count across the frame (metrics, read eagerly)
    shapes      table entry count, table byte length, then the shape table
                (skipped on the eager parse; decoded lazily at first pop)
    states      count, then a directory of (state id, payload byte length)
    payloads    concatenated per-state payloads, in directory order

Per-state payload::

    guard query count, candidate count, then per candidate:
        kind      1 byte   0 = deletion, 1 = addition
        addition: parent node id, label, shape index, successor size, copies
        deletion: node id, shape index, successor size

The coordinator (:class:`~repro.engine.parallel.ParallelExplorationEngine`)
parses the guard section, metrics counters and state directory **eagerly** at
wave-merge time, and decodes the shape table and each state's payload
**lazily** when the base exploration loop pops that state — so interning
order, and with it every dense state id, stays bit-identical to a serial run,
and work staged for states a truncated exploration never pops is never
decoded either.

Every structural defect — truncation anywhere, trailing bytes, a bad magic,
an unknown version byte, an out-of-range shape index or value byte — raises
:class:`~repro.exceptions.WireFormatError`; the Hypothesis suite in
``tests/property/test_wire_properties.py`` pins round-trips and rejection.

The shape framing (:func:`~repro.io.serialization.write_shape` /
:func:`~repro.io.serialization.read_shape`) is shared with
:mod:`repro.io.serialization`, where it also backs the
:class:`~repro.engine.store.SqliteStore`'s optional binary shape rows.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.core.guarded_form import Addition, Deletion, Update
from repro.core.tree import Shape
from repro.exceptions import WireFormatError
from repro.io.serialization import (
    read_shape,
    read_str,
    read_uvarint,
    write_shape,
    write_str,
    write_uvarint,
)

#: Leading bytes of every wire frame.
WIRE_MAGIC = b"GW"

#: Frame layout version; a coordinator refuses frames from any other.
WIRE_VERSION = 1

# Candidate kind bytes.
_KIND_DELETION = 0
_KIND_ADDITION = 1

# Tag bytes of the guard-key term codec.
_TERM_NONE = 0
_TERM_FALSE = 1
_TERM_TRUE = 2
_TERM_INT = 3
_TERM_STR = 4
_TERM_TUPLE = 5
_TERM_FROZENSET = 6


# --------------------------------------------------------------------------- #
# guard-key term codec
# --------------------------------------------------------------------------- #


def write_term(out: bytearray, term) -> None:
    """Append one guard-key term: ``None``/bool/int/str/tuple/frozenset.

    Signed integers use zigzag varints; frozensets are ordered by their
    encoded bytes, so equal keys always encode identically (the property the
    JSON guard-key codec guarantees by sorting encoded elements).
    """
    if term is None:
        out.append(_TERM_NONE)
    elif term is True:
        out.append(_TERM_TRUE)
    elif term is False:
        out.append(_TERM_FALSE)
    elif isinstance(term, int):
        out.append(_TERM_INT)
        write_uvarint(out, (term << 1) if term >= 0 else ((-term) << 1) - 1)
    elif isinstance(term, str):
        out.append(_TERM_STR)
        write_str(out, term)
    elif isinstance(term, tuple):
        out.append(_TERM_TUPLE)
        write_uvarint(out, len(term))
        for item in term:
            write_term(out, item)
    elif isinstance(term, frozenset):
        out.append(_TERM_FROZENSET)
        write_uvarint(out, len(term))
        encoded = []
        for item in term:
            item_out = bytearray()
            write_term(item_out, item)
            encoded.append(bytes(item_out))
        for blob in sorted(encoded):
            out.extend(blob)
    else:
        raise WireFormatError(f"unsupported guard-key term {term!r}")


def read_term(data: bytes, pos: int) -> tuple:
    """Read one term at *pos*; return ``(term, new pos)``."""
    if pos >= len(data):
        raise WireFormatError("truncated guard-key term")
    tag = data[pos]
    pos += 1
    if tag == _TERM_NONE:
        return None, pos
    if tag == _TERM_TRUE:
        return True, pos
    if tag == _TERM_FALSE:
        return False, pos
    if tag == _TERM_INT:
        raw, pos = read_uvarint(data, pos)
        return (raw >> 1) ^ -(raw & 1), pos
    if tag == _TERM_STR:
        return read_str(data, pos)
    if tag == _TERM_TUPLE:
        count, pos = read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = read_term(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _TERM_FROZENSET:
        count, pos = read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = read_term(data, pos)
            items.append(item)
        return frozenset(items), pos
    raise WireFormatError(f"unknown guard-key term tag {tag}")


# --------------------------------------------------------------------------- #
# frame encoding (worker side)
# --------------------------------------------------------------------------- #


class FrameEncoder:
    """Builds one wire frame for a worker's answer to one task batch.

    ``add_state`` accepts the raw candidate tuples the expansion produced —
    ``(update, root shape, is_addition, successor size, copies)`` — and
    interns each distinct root shape into the frame's shape table on the fly;
    ``add_guard_entries`` attaches the guard evaluations the batch performed;
    ``finish`` emits the frame bytes.
    """

    def __init__(self) -> None:
        self._shape_index: dict = {}  # Shape -> table index
        self._shape_table = bytearray()
        self._states = bytearray()  # directory entries
        self._payloads: list[bytes] = []
        self._guards = bytearray()
        self._guard_count = 0
        self._state_count = 0
        self.candidates_encoded = 0

    def shape_ref(self, shape: Shape) -> int:
        """The table index of *shape*, appending it on first occurrence."""
        index = self._shape_index.get(shape)
        if index is None:
            index = len(self._shape_index)
            self._shape_index[shape] = index
            write_shape(self._shape_table, shape)
        return index

    def add_state(self, state_id: int, candidates: list, guard_queries: int) -> None:
        """Append one state's expansion payload.

        Args:
            state_id: the canonical id the coordinator addressed the state by.
            candidates: ``(update, root shape, is_addition, successor size,
                copies before)`` tuples in enumeration order.
            guard_queries: guard-cache queries this expansion performed.
        """
        payload = bytearray()
        write_uvarint(payload, guard_queries)
        write_uvarint(payload, len(candidates))
        for update, shape, is_addition, succ_size, copies in candidates:
            index = self.shape_ref(shape)
            if is_addition:
                payload.append(_KIND_ADDITION)
                write_uvarint(payload, update.parent_id)
                write_str(payload, update.label)
                write_uvarint(payload, index)
                write_uvarint(payload, succ_size)
                write_uvarint(payload, copies)
            else:
                payload.append(_KIND_DELETION)
                write_uvarint(payload, update.node_id)
                write_uvarint(payload, index)
                write_uvarint(payload, succ_size)
            self.candidates_encoded += 1
        write_uvarint(self._states, state_id)
        write_uvarint(self._states, len(payload))
        self._payloads.append(bytes(payload))
        self._state_count += 1

    def add_guard_entries(self, entries: list) -> None:
        """Append ``(key tuple, bool)`` guard evaluations to the frame."""
        for key, value in entries:
            write_term(self._guards, key)
            self._guards.append(1 if value else 0)
            self._guard_count += 1

    def finish(self) -> bytes:
        """The finished frame."""
        out = bytearray(WIRE_MAGIC)
        out.append(WIRE_VERSION)
        write_uvarint(out, self._guard_count)
        out.extend(self._guards)
        write_uvarint(out, self.candidates_encoded)
        write_uvarint(out, len(self._shape_index))
        write_uvarint(out, len(self._shape_table))
        out.extend(self._shape_table)
        write_uvarint(out, self._state_count)
        out.extend(self._states)
        for payload in self._payloads:
            out.extend(payload)
        return bytes(out)


# --------------------------------------------------------------------------- #
# frame decoding (coordinator side)
# --------------------------------------------------------------------------- #


class WireFrame:
    """One received frame: eager envelope parse, lazy payload decode.

    Construction validates the envelope end to end — magic, version byte,
    guard section, metrics counters, state directory, and that the directory's
    payload spans tile the remaining bytes *exactly* — so truncated or
    corrupt frames are rejected on receipt, before anything is staged.  The
    shape table and the per-state candidate payloads are only decoded when
    :meth:`shape_table` / :meth:`expansion` are first called, i.e. when the
    exploration loop actually pops a staged state.  ``decode_seconds``
    accumulates the wall time of both the eager and the lazy parses.
    """

    def __init__(self, data: bytes) -> None:
        started = time.perf_counter()
        self._data = data
        if len(data) < len(WIRE_MAGIC) + 1 or data[: len(WIRE_MAGIC)] != WIRE_MAGIC:
            raise WireFormatError("not a wire frame (bad magic)")
        version = data[len(WIRE_MAGIC)]
        if version != WIRE_VERSION:
            raise WireFormatError(
                f"wire frame version {version}, this build speaks {WIRE_VERSION}"
            )
        pos = len(WIRE_MAGIC) + 1
        guard_section_start = pos
        guard_count, pos = read_uvarint(data, pos)
        self.guard_entries: list = []
        for _ in range(guard_count):
            key, pos = read_term(data, pos)
            if not isinstance(key, tuple):
                raise WireFormatError(f"guard key decoded to {type(key).__name__}, not tuple")
            if pos >= len(data):
                raise WireFormatError("truncated guard value byte")
            value = data[pos]
            pos += 1
            if value not in (0, 1):
                raise WireFormatError(f"guard value byte must be 0 or 1, got {value}")
            self.guard_entries.append((key, bool(value)))
        #: Bytes spent on the guard section (PR 3 shipped the same entries as
        #: tagged JSON; candidate metrics exclude them so the bytes-per-
        #: candidate figure compares expansion payloads like for like).
        self.guard_nbytes = pos - guard_section_start
        #: Total candidates across all states (for dedup-rate metrics).
        self.total_candidates, pos = read_uvarint(data, pos)
        #: Distinct root shapes in the frame's shape table.
        self.shape_count, pos = read_uvarint(data, pos)
        table_nbytes, pos = read_uvarint(data, pos)
        self._table_span = (pos, pos + table_nbytes)
        pos += table_nbytes
        if pos > len(data):
            raise WireFormatError("truncated shape table")
        state_count, pos = read_uvarint(data, pos)
        directory = []
        for _ in range(state_count):
            state_id, pos = read_uvarint(data, pos)
            nbytes, pos = read_uvarint(data, pos)
            directory.append((state_id, nbytes))
        self._spans: dict = {}
        offset = pos
        for state_id, nbytes in directory:
            self._spans[state_id] = (offset, offset + nbytes)
            offset += nbytes
        if offset != len(data):
            raise WireFormatError(
                f"frame length mismatch: directory claims {offset} bytes, "
                f"frame has {len(data)}"
            )
        #: Bytes carrying the expansion payloads: shape table, state
        #: directory and candidate records (everything but the guard section
        #: and the 3-byte envelope).
        self.expansion_nbytes = len(data) - self.guard_nbytes - len(WIRE_MAGIC) - 1
        self._shapes: Optional[list] = None
        self.decode_seconds = time.perf_counter() - started

    def __len__(self) -> int:
        return len(self._data)

    def state_ids(self) -> list:
        """The state ids this frame carries payloads for, in batch order."""
        return list(self._spans)

    def shape_table(self, cons: Optional[Callable] = None) -> list:
        """The decoded shape table (memoized; decoded on first call).

        Args:
            cons: optional hash-consing function (the coordinator passes its
                interner's ``cons``) applied *bottom-up* to every decoded
                subtree, so table entries — children included — are the same
                canonical objects the engine interns and equality checks keep
                their identity short-circuit.
        """
        if self._shapes is None:
            started = time.perf_counter()
            pos, end = self._table_span
            data = self._data
            shapes = []
            for _ in range(self.shape_count):
                shape, pos = read_shape(data, pos, cons)
                shapes.append(shape)
            if pos != end:
                raise WireFormatError(
                    f"shape table length mismatch: decoded to byte {pos}, "
                    f"framing claims {end}"
                )
            self._shapes = shapes
            self.decode_seconds += time.perf_counter() - started
        return self._shapes

    def expansion(self, state_id: int) -> tuple[list, int]:
        """Decode one state's payload: ``(raw candidates, guard queries)``.

        Raw candidates are ``(update, shape index, is_addition, successor
        size, copies)`` tuples — the coordinator resolves shape indices
        against :meth:`shape_table` and assigns state ids itself.
        """
        started = time.perf_counter()
        try:
            pos, end = self._spans[state_id]
        except KeyError:
            raise WireFormatError(f"frame carries no payload for state {state_id}") from None
        data = self._data
        guard_queries, pos = read_uvarint(data, pos)
        count, pos = read_uvarint(data, pos)
        candidates = []
        for _ in range(count):
            if pos >= end:
                raise WireFormatError("truncated candidate payload")
            kind = data[pos]
            pos += 1
            update: Update
            if kind == _KIND_ADDITION:
                parent_id, pos = read_uvarint(data, pos)
                label, pos = read_str(data, pos)
                index, pos = read_uvarint(data, pos)
                succ_size, pos = read_uvarint(data, pos)
                copies, pos = read_uvarint(data, pos)
                update = Addition(parent_id, label)
                is_addition = True
            elif kind == _KIND_DELETION:
                node_id, pos = read_uvarint(data, pos)
                index, pos = read_uvarint(data, pos)
                succ_size, pos = read_uvarint(data, pos)
                copies = 0
                update = Deletion(node_id)
                is_addition = False
            else:
                raise WireFormatError(f"unknown candidate kind byte {kind}")
            if index >= self.shape_count:
                raise WireFormatError(
                    f"candidate references shape {index}, table has {self.shape_count}"
                )
            candidates.append((update, index, is_addition, succ_size, copies))
        if pos != end:
            raise WireFormatError(
                f"state payload length mismatch: decoded to byte {pos}, "
                f"directory claims {end}"
            )
        self.decode_seconds += time.perf_counter() - started
        return candidates, guard_queries

    def take_decode_seconds(self) -> float:
        """Drain the accumulated decode-time counter (engine statistics)."""
        elapsed, self.decode_seconds = self.decode_seconds, 0.0
        return elapsed


# --------------------------------------------------------------------------- #
# PR 3 encoding baseline (benchmark / test reference)
# --------------------------------------------------------------------------- #


def pr3_encoding_cost(engine) -> tuple[int, int]:
    """What the PR 3 wire protocol would ship for *engine*'s expansions.

    PR 3 encoded, per candidate: the JSON update, the JSON root shape and the
    full JSON successor representative (node ids included).  Bit-identity
    means a serial engine's memoized expansions are exactly the candidates
    the workers answer with, so measuring the encoding there is exact — and
    conservative, since the actual pickled tuples carried extra overhead.

    This is the single definition of the ≥40% reduction gate's denominator,
    shared by ``benchmarks/run_all.py`` and the wire differential tests.

    Returns:
        ``(total bytes, candidate count)`` over every memoized expansion of
        *engine* (a serial :class:`~repro.engine.engine.ExplorationEngine`
        that has finished exploring).
    """
    import json

    from repro.io.serialization import encode_instance_with_ids, encode_shape, encode_update

    total = 0
    count = 0
    for candidates, _queries in engine._expansions.values():
        for update, succ_id, _is_addition, _size, _copies in candidates:
            total += len(json.dumps(encode_update(update)).encode("utf-8"))
            total += len(encode_shape(engine.interner.shape_of(succ_id)).encode("utf-8"))
            total += len(
                encode_instance_with_ids(engine.representative(succ_id)).encode("utf-8")
            )
            count += 1
    return total, count
