"""The parallel exploration subsystem: multi-process frontier expansion.

:class:`ParallelExplorationEngine` extends the serial
:class:`~repro.engine.engine.ExplorationEngine` with **wave prefetching**:
whenever the exploration loop is about to expand a state whose candidates are
neither memoized nor already staged, the engine snapshots the whole pending
frontier, partitions it across the :class:`~repro.engine.workers.WorkerPool`
— the shape interner is *sharded by shape hash*, worker ``i`` owning every
state with ``stable_shape_hash(shape) % N == i``, so a shard's subtree shapes
and guard evaluations accumulate in one worker's caches — and stages the
answering **binary wire frames** (:mod:`repro.engine.wire`).  The base
class's exploration loop is untouched: it pops states in exactly the serial
order, and :meth:`_expand` adopts a staged payload by decoding it *at that
moment* and interning successor shapes in candidate order.

That split is what makes parallel runs **bit-identical** to serial ones — a
property the differential suite (``tests/engine/test_parallel.py``) pins per
benchgen family:

* state ids are assigned by the coordinator only, in the serial engine's
  pop/candidate order (workers never intern; they return shape-table
  references);
* a genuinely new successor's canonical representative is derived *by the
  coordinator* from the parent representative with the exact incremental
  derivation the serial engine uses
  (:meth:`~repro.engine.interning.IncrementalShaper.successor`) — node ids,
  child order and the id counter included — so nothing about a state depends
  on which process first saw it;
* limits, truncation flags, early exit and checkpoint/resume all live in the
  unmodified base loop, so ``--workers N`` composes with every existing
  feature (any frontier strategy, ``stop_on_complete``, ``step_limit``,
  store-backed resume) without new semantics.

The wire protocol is what PR 4 changed: PR 3 shipped one JSON-encoded
successor instance per candidate (the coordinator-side decode/merge being the
Amdahl bottleneck); frames now carry a per-batch shape table — each distinct
successor root shape once, candidates referencing it by index — and no
representative instances at all.  Per-wave payload bytes, the shape-dedup
hit rate and decode time are tracked and surface in ``stats["engine"]`` as
``wire_*`` counters; ``benchmarks/run_all.py`` gates the bytes-per-candidate
reduction against the PR 3 encoding.

Guard values flow back inside each frame.  On a store-backed engine the
workers additionally hydrate from and write through to the sqlite store's
``guards`` table (WAL journaling lets them do so concurrently with the
coordinator); with an :class:`~repro.engine.store.InMemoryStore` the
coordinator merges the returned entries into its own
:class:`~repro.engine.guards.GuardCache` instead, so nothing is evaluated
twice either way.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.runtime import default_cache
from repro.engine.engine import ExplorationEngine
from repro.engine.interning import StateId
from repro.engine.store import StateStore
from repro.engine.wire import WireFrame
from repro.engine.workers import WorkerPool
from repro.exceptions import AnalysisError
from repro.io.serialization import (
    encode_instance_with_ids,
    stable_shape_hash,
)

__all__ = ["ParallelExplorationEngine", "drain_task_queue", "stable_shape_hash"]
# stable_shape_hash moved to repro.io.serialization (the store's shape_hash
# reverse-lookup column shares it); re-exported here for compatibility.


def drain_task_queue(tasks, fn, workers: int = 1):
    """Map *fn* over *tasks* on a process pool, results in task order.

    The coarse-grained sibling of the wave prefetching below: instead of
    parallelising *inside* one exploration, it fans independent tasks (a
    campaign's form queue) across processes.  ``workers <= 1`` runs inline —
    same semantics, no pool, and the only mode that supports non-picklable
    *fn* closures (the campaign runner relies on this for injected oracles).

    The pool is a ``concurrent.futures.ProcessPoolExecutor``, **not**
    ``multiprocessing.Pool``: executor workers are non-daemonic, so a task
    may itself spawn a :class:`WorkerPool` (whose processes are daemons) —
    which is exactly what a campaign task does when it runs the
    serial-vs-parallel oracle.
    """
    items = list(tasks)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


class ParallelExplorationEngine(ExplorationEngine):
    """An exploration engine expanding frontier waves on worker processes.

    Args:
        workers: number of frontier worker processes (``1`` keeps everything
            on the serial path; the pool is only ever spawned for ``>= 2``).
        min_wave: smallest uncovered frontier worth shipping to the pool;
            smaller waves (the first few BFS levels, the mostly-memoized
            re-explorations of a semi-soundness sweep) expand serially to
            skip the IPC round-trip.  Defaults to ``2 * workers``.

    The remaining arguments are the base engine's.  Call
    :meth:`shutdown_workers` (or use the engine as a context manager) when
    done; analyses that build the engine themselves do so automatically.
    """

    def __init__(
        self,
        guarded_form,
        limits=None,
        strategy: str = "bfs",
        store: Optional[StateStore] = None,
        checkpoint_every: int = 1000,
        workers: int = 2,
        min_wave: Optional[int] = None,
        resident_budget: Optional[int] = None,
        telemetry=None,
    ) -> None:
        super().__init__(
            guarded_form,
            limits=limits,
            strategy=strategy,
            store=store,
            checkpoint_every=checkpoint_every,
            resident_budget=resident_budget,
            telemetry=telemetry,
        )
        if workers < 1:
            raise AnalysisError("workers must be a positive integer")
        self.workers = workers
        self.min_wave = max(1, min_wave if min_wave is not None else 2 * workers)
        self._pool: Optional[WorkerPool] = None
        self._staged: dict = {}  # StateId -> WireFrame carrying its payload
        self._shards: dict = {}  # StateId -> shard index
        self.waves_dispatched = 0
        self.states_prefetched = 0
        self.expansions_adopted = 0
        self.worker_guard_entries_merged = 0
        # wire-protocol counters (surfaced as stats["engine"]["wire_*"])
        self.wire_frames_received = 0
        self.wire_bytes_received = 0
        self.wire_bytes_last_wave = 0
        self.wire_expansion_bytes = 0  # shape tables + candidate payloads
        self.wire_guard_bytes = 0  # guard-entry sections
        self.wire_shape_refs = 0  # candidates received, i.e. shape-table references
        self.wire_shape_table_entries = 0  # distinct shapes actually serialised
        self.wire_decode_seconds = 0.0
        self.worker_snapshots_merged = 0  # telemetry sections merged from frames

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #

    def _store_path(self) -> Optional[str]:
        """The on-disk store workers should sync guard values through."""
        if not self.store.persistent:
            return None
        path = getattr(self.store, "path", None)
        if path is None or path == ":memory:":
            return None
        return path

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            if self.store.persistent:
                self.store.flush()  # let workers hydrate everything so far
            # the ambient KV cache travels to the worker processes by spec
            # string — each opens its own handle (never a shared connection)
            ambient = default_cache()
            self._pool = WorkerPool(
                self.guarded_form,
                self.workers,
                store_path=self._store_path(),
                binary_guards=getattr(self.store, "binary_guards", False),
                telemetry_enabled=self.telemetry.enabled,
                cache_spec=ambient.spec if ambient is not None else None,
            )
        return self._pool

    def spawn_workers(self) -> None:
        """Spawn the worker pool eagerly (it is otherwise lazy).

        Benchmarks call this before starting their timers so the recorded
        throughput measures exploration, not process startup.
        """
        if self.workers > 1:
            self._ensure_pool()

    def shutdown_workers(self) -> None:
        """Stop the worker pool (idempotent; a later explore respawns it).

        Staged-but-never-adopted frames are dropped with it: an analysis that
        is done with its workers is done prefetching.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._staged.clear()

    def __enter__(self) -> "ParallelExplorationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown_workers()

    # ------------------------------------------------------------------ #
    # wave prefetching
    # ------------------------------------------------------------------ #

    def _shard_of(self, state_id: StateId) -> int:
        shard = self._shards.get(state_id)
        if shard is None:
            # the arena caches one digest per deduplicated row, so this is a
            # dict probe after the first ask — no re-encoding per state
            shard = self.interner.stable_hash_of(state_id) % self.workers
            self._shards[state_id] = shard
        return shard

    def _expand_from(self, state_id: StateId, frontier) -> list:
        if (
            self.workers > 1
            and state_id not in self._expansions
            and state_id not in self._staged
        ):
            self._prefetch(state_id, frontier)
        return self._expand(state_id)

    def _prefetch(self, state_id: StateId, frontier) -> None:
        """Expand the uncovered slice of the pending frontier on the pool.

        Prefetching is semantically transparent: staged frames intern nothing
        until :meth:`_expand` adopts them, so work wasted on states a
        truncated or early-exiting exploration never pops costs cycles, not
        correctness.
        """
        wave = [state_id]
        covered = {state_id}
        for pending_id in frontier.pending():
            if (
                pending_id in covered
                or pending_id in self._expansions
                or pending_id in self._staged
            ):
                continue
            covered.add(pending_id)
            wave.append(pending_id)
        if len(wave) < self.min_wave:
            return  # not worth a round-trip; the base loop expands serially
        batches: dict = {index: [] for index in range(self.workers)}
        budget = self.resident_budget
        for wave_id in wave:
            batches[self._shard_of(wave_id)].append(
                (wave_id, encode_instance_with_ids(self.representative(wave_id)))
            )
            # each representative is needed only while being encoded; a wave
            # over a frontier wider than the budget must not drag the whole
            # frontier's representatives resident
            if budget is not None and len(self._reps) > budget:
                self._enforce_budget()
        pool = self._ensure_pool()
        obs = self.telemetry
        wave_started = obs.now()
        try:
            raw_frames = pool.run_wave(batches)
        except BaseException:
            # a failed or interrupted wave may leave answers in flight; tear
            # the pool down so a resume starts from a clean one (run_wave's
            # wave ids would drop strays anyway — this reclaims the
            # processes too)
            self.shutdown_workers()
            raise
        wave_bytes = 0
        for data in raw_frames:
            frame = WireFrame(data)  # envelope + guard section parse
            wave_bytes += len(frame)
            self.wire_frames_received += 1
            self.wire_expansion_bytes += frame.expansion_nbytes
            self.wire_guard_bytes += frame.guard_nbytes
            self.wire_shape_refs += frame.total_candidates
            self.wire_shape_table_entries += frame.shape_count
            for key, value in frame.guard_entries:
                self.guards.restore(key, value)
            self.worker_guard_entries_merged += len(frame.guard_entries)
            for staged_id in frame.state_ids():
                self._staged[staged_id] = frame
            self.wire_decode_seconds += frame.take_decode_seconds()
            if frame.telemetry is not None and obs.enabled:
                # per-worker spans land on the shared timeline, metric
                # deltas under a worker=<index> label — the cross-process
                # view a single merged trace file renders
                obs.merge_remote(frame.telemetry)
                self.worker_snapshots_merged += 1
        self.wire_bytes_received += wave_bytes
        self.wire_bytes_last_wave = wave_bytes
        self.waves_dispatched += 1
        self.states_prefetched += len(wave)
        if obs.enabled:
            obs.end_span(
                "engine.prefetch_wave",
                wave_started,
                states=len(wave),
                workers=self.workers,
                bytes=wave_bytes,
            )
            obs.sample_rss(reps_resident=len(self._reps))

    # ------------------------------------------------------------------ #
    # staged-expansion adoption
    # ------------------------------------------------------------------ #

    def _expand(self, state_id: StateId) -> list:
        if state_id not in self._expansions:
            frame = self._staged.pop(state_id, None)
            if frame is not None:
                return self._adopt(state_id, frame)
        return super()._expand(state_id)

    def _adopt(self, state_id: StateId, frame: WireFrame) -> list:
        """Turn a staged wire payload into a memoized expansion.

        The frame is decoded *here* (lazily, per state) and successor shapes
        are interned in candidate order — the same moment and order the
        serial engine's ``_expand`` would intern them — which keeps the dense
        id assignment (including ids for candidates a limit later filters
        out) bit-identical to a serial run.  A successor new to the interner
        gets its canonical representative derived from the parent
        representative exactly as :meth:`ExplorationEngine._successor_id`
        derives it; known successors cost a shape-table lookup only.
        """
        interner = self.interner
        rows = frame.shape_rows(interner.arena)
        raw_candidates, guard_queries = frame.expansion(state_id)
        self.wire_decode_seconds += frame.take_decode_seconds()
        parent = self.representative(state_id)
        parent_map = self._shape_map_of(state_id)
        candidates: list = []
        for update, shape_index, is_addition, succ_size, copies in raw_candidates:
            succ_id, is_new = interner.state_id_row(rows[shape_index])
            if is_new:
                successor, succ_map, root = self.shaper.successor(
                    parent, parent_map, update
                )
                if interner.arena.intern_cons(root) != rows[shape_index]:
                    # the arena deduplicates rows by their canonical binary
                    # encoding, so row equality is exactly shape equality:
                    # the worker-computed table entry and the coordinator-
                    # derived root must land on the same row.  Inequality
                    # means the two derivations (successor / successor_shape)
                    # or the two intern paths (cons / wire preorder) drifted
                    # and the graph would silently corrupt
                    raise AnalysisError(
                        f"wire shape for state {succ_id} does not match the "
                        "coordinator-derived successor shape (codec or shaper "
                        "drift)"
                    )
                self._reps[succ_id] = successor
                self._shape_maps[succ_id] = succ_map
                if self.store.persistent:
                    self.store.put_representative(
                        succ_id, encode_instance_with_ids(successor)
                    )
            candidates.append((update, succ_id, is_addition, succ_size, copies))
        self._expansions[state_id] = (candidates, guard_queries)
        self.guards.credit_reuse(guard_queries)
        self.expansions_computed += 1
        self.expansions_adopted += 1
        return candidates

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def stats_snapshot(self) -> dict:
        snapshot = super().stats_snapshot()
        snapshot["workers"] = self.workers
        snapshot["waves_dispatched"] = self.waves_dispatched
        snapshot["states_prefetched"] = self.states_prefetched
        snapshot["expansions_adopted"] = self.expansions_adopted
        snapshot["worker_guard_entries_merged"] = self.worker_guard_entries_merged
        snapshot["wire_frames_received"] = self.wire_frames_received
        snapshot["wire_bytes_received"] = self.wire_bytes_received
        snapshot["wire_bytes_last_wave"] = self.wire_bytes_last_wave
        snapshot["wire_expansion_bytes"] = self.wire_expansion_bytes
        snapshot["wire_guard_bytes"] = self.wire_guard_bytes
        snapshot["wire_shape_refs"] = self.wire_shape_refs
        snapshot["wire_shape_table_entries"] = self.wire_shape_table_entries
        refs = self.wire_shape_refs
        snapshot["wire_dedup_hit_rate"] = (
            round(1.0 - self.wire_shape_table_entries / refs, 4) if refs else 0.0
        )
        # expansion payload only: the guard section is tracked separately so
        # this compares like for like with the PR 3 per-candidate encoding
        snapshot["wire_bytes_per_candidate"] = (
            round(self.wire_expansion_bytes / refs, 2) if refs else None
        )
        snapshot["wire_decode_seconds"] = round(self.wire_decode_seconds, 6)
        snapshot["worker_snapshots_merged"] = self.worker_snapshots_merged
        return snapshot
