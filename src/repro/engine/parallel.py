"""The parallel exploration subsystem: multi-process frontier expansion.

:class:`ParallelExplorationEngine` extends the serial
:class:`~repro.engine.engine.ExplorationEngine` with **wave prefetching**:
whenever the exploration loop is about to expand a state whose candidates are
neither memoized nor already staged, the engine snapshots the whole pending
frontier, partitions it across the :class:`~repro.engine.workers.WorkerPool`
— the shape interner is *sharded by shape hash*, worker ``i`` owning every
state with ``stable_shape_hash(shape) % N == i``, so a shard's subtree shapes
and guard evaluations accumulate in one worker's caches — and stages the
batched results.  The base class's exploration loop is untouched: it pops
states in exactly the serial order, and :meth:`_expand` adopts a staged
payload by interning the successor shapes *at that moment, in candidate
order*.

That split is what makes parallel runs **bit-identical** to serial ones — a
property the differential suite (``tests/engine/test_parallel.py``) pins per
benchgen family:

* state ids are assigned by the coordinator only, in the serial engine's
  pop/candidate order (workers never intern; they return encoded shapes);
* successor representatives are derived by workers from the shipped parent
  representative — node ids, child order and the id counter included — so a
  state's canonical representative is the same instance, node-id-for-node-id,
  whichever process first derived it;
* limits, truncation flags, early exit and checkpoint/resume all live in the
  unmodified base loop, so ``--workers N`` composes with every existing
  feature (any frontier strategy, ``stop_on_complete``, ``step_limit``,
  store-backed resume) without new semantics.

Cross-shard duplicates cost only wasted worker cycles: two workers may both
derive an encoded successor for the same shape, but the coordinator's
``encoded shape -> state id`` table deduplicates them deterministically at
merge time.

Guard values flow back with each batch.  On a store-backed engine the workers
additionally hydrate from and write through to the sqlite store's ``guards``
table (WAL journaling lets them do so concurrently with the coordinator —
the ROADMAP's "workers sync through the sqlite WAL" item); with an
:class:`~repro.engine.store.InMemoryStore` the coordinator merges the
returned entries into its own :class:`~repro.engine.guards.GuardCache`
instead, so nothing is evaluated twice either way.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.core.tree import Shape
from repro.engine.engine import ExplorationEngine
from repro.engine.interning import StateId
from repro.engine.store import StateStore
from repro.engine.workers import WorkerPool
from repro.exceptions import AnalysisError
from repro.io.serialization import (
    decode_guard_key,
    decode_instance_with_ids,
    decode_update,
    encode_instance_with_ids,
    encode_shape,
)


def stable_shape_hash(shape: Shape) -> int:
    """A shape digest stable across processes and interpreter runs.

    ``hash()`` on nested label tuples varies with ``PYTHONHASHSEED``, so the
    shard assignment uses a CRC of the canonical shape encoding instead; the
    encoding is order-normalised, hence equal shapes always land on the same
    shard.
    """
    return zlib.crc32(encode_shape(shape).encode("utf-8"))


class ParallelExplorationEngine(ExplorationEngine):
    """An exploration engine expanding frontier waves on worker processes.

    Args:
        workers: number of frontier worker processes (``1`` keeps everything
            on the serial path; the pool is only ever spawned for ``>= 2``).
        min_wave: smallest uncovered frontier worth shipping to the pool;
            smaller waves (the first few BFS levels, the mostly-memoized
            re-explorations of a semi-soundness sweep) expand serially to
            skip the IPC round-trip.  Defaults to ``2 * workers``.

    The remaining arguments are the base engine's.  Call
    :meth:`shutdown_workers` (or use the engine as a context manager) when
    done; analyses that build the engine themselves do so automatically.
    """

    def __init__(
        self,
        guarded_form,
        limits=None,
        strategy: str = "bfs",
        store: Optional[StateStore] = None,
        checkpoint_every: int = 1000,
        workers: int = 2,
        min_wave: Optional[int] = None,
    ) -> None:
        super().__init__(
            guarded_form,
            limits=limits,
            strategy=strategy,
            store=store,
            checkpoint_every=checkpoint_every,
        )
        if workers < 1:
            raise AnalysisError("workers must be a positive integer")
        self.workers = workers
        self.min_wave = max(1, min_wave if min_wave is not None else 2 * workers)
        self._pool: Optional[WorkerPool] = None
        self._staged: dict = {}  # StateId -> (raw candidates, guard queries)
        self._encoded_ids: dict = {}  # encoded root shape -> StateId
        self._shards: dict = {}  # StateId -> shard index
        self.waves_dispatched = 0
        self.states_prefetched = 0
        self.expansions_adopted = 0
        self.worker_guard_entries_merged = 0

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #

    def _store_path(self) -> Optional[str]:
        """The on-disk store workers should sync guard values through."""
        if not self.store.persistent:
            return None
        path = getattr(self.store, "path", None)
        if path is None or path == ":memory:":
            return None
        return path

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            if self.store.persistent:
                self.store.flush()  # let workers hydrate everything so far
            self._pool = WorkerPool(
                self.guarded_form, self.workers, store_path=self._store_path()
            )
        return self._pool

    def spawn_workers(self) -> None:
        """Spawn the worker pool eagerly (it is otherwise lazy).

        Benchmarks call this before starting their timers so the recorded
        throughput measures exploration, not process startup.
        """
        if self.workers > 1:
            self._ensure_pool()

    def shutdown_workers(self) -> None:
        """Stop the worker pool (idempotent; a later explore respawns it).

        Staged-but-never-adopted payloads are dropped with it: they carry
        full encoded successor instances, and an analysis that is done with
        its workers is done prefetching.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._staged.clear()

    def __enter__(self) -> "ParallelExplorationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown_workers()

    # ------------------------------------------------------------------ #
    # wave prefetching
    # ------------------------------------------------------------------ #

    def _shard_of(self, state_id: StateId) -> int:
        shard = self._shards.get(state_id)
        if shard is None:
            shard = stable_shape_hash(self.interner.shape_of(state_id)) % self.workers
            self._shards[state_id] = shard
        return shard

    def _expand_from(self, state_id: StateId, frontier) -> list:
        if (
            self.workers > 1
            and state_id not in self._expansions
            and state_id not in self._staged
        ):
            self._prefetch(state_id, frontier)
        return self._expand(state_id)

    def _prefetch(self, state_id: StateId, frontier) -> None:
        """Expand the uncovered slice of the pending frontier on the pool.

        Prefetching is semantically transparent: staged payloads intern
        nothing until :meth:`_expand` adopts them, so work wasted on states a
        truncated or early-exiting exploration never pops costs cycles, not
        correctness.
        """
        wave = [state_id]
        covered = {state_id}
        for pending_id in frontier.pending():
            if (
                pending_id in covered
                or pending_id in self._expansions
                or pending_id in self._staged
            ):
                continue
            covered.add(pending_id)
            wave.append(pending_id)
        if len(wave) < self.min_wave:
            return  # not worth a round-trip; the base loop expands serially
        batches: dict = {index: [] for index in range(self.workers)}
        for wave_id in wave:
            batches[self._shard_of(wave_id)].append(
                (wave_id, encode_instance_with_ids(self.representative(wave_id)))
            )
        pool = self._ensure_pool()
        try:
            payloads, guard_rows = pool.run_wave(batches)
        except BaseException:
            # a failed or interrupted wave may leave answers in flight; tear
            # the pool down so a resume starts from a clean one (run_wave's
            # wave ids would drop strays anyway — this reclaims the
            # processes too)
            self.shutdown_workers()
            raise
        for staged_id, candidates, guard_queries in payloads:
            self._staged[staged_id] = (candidates, guard_queries)
        self._merge_guard_rows(guard_rows)
        self.waves_dispatched += 1
        self.states_prefetched += len(wave)

    def _merge_guard_rows(self, guard_rows: list) -> None:
        """Adopt worker-evaluated guard entries into the coordinator cache.

        Keys are identical to the ones the serial engine would have used
        (workers address states by their canonical ids), so this is a plain
        cache union.  On a store-backed run the workers already wrote the
        rows through the WAL; with an in-memory store this merge *is* the
        persistence.
        """
        for encoded_key, value in guard_rows:
            self.guards.restore(decode_guard_key(encoded_key), value)
        self.worker_guard_entries_merged += len(guard_rows)

    # ------------------------------------------------------------------ #
    # staged-expansion adoption
    # ------------------------------------------------------------------ #

    def _expand(self, state_id: StateId) -> list:
        if state_id not in self._expansions:
            staged = self._staged.pop(state_id, None)
            if staged is not None:
                return self._adopt(state_id, staged)
        return super()._expand(state_id)

    def _adopt(self, state_id: StateId, staged: tuple) -> list:
        """Turn a worker payload into a memoized expansion.

        Successor shapes are interned *here*, in candidate order — the same
        moment and order the serial engine's ``_expand`` would intern them —
        which keeps the dense id assignment (including ids for candidates a
        limit later filters out) bit-identical to a serial run.
        """
        raw_candidates, guard_queries = staged
        candidates: list = []
        for encoded_update, encoded_root, encoded_succ, is_addition, succ_size, copies in raw_candidates:
            succ_id = self._encoded_ids.get(encoded_root)
            if succ_id is None:
                succ_id = self._intern_encoded(encoded_root, encoded_succ)
            candidates.append(
                (decode_update(encoded_update), succ_id, is_addition, succ_size, copies)
            )
        self._expansions[state_id] = (candidates, guard_queries)
        self.guards.credit_reuse(guard_queries)
        self.expansions_computed += 1
        self.expansions_adopted += 1
        return candidates

    def _intern_encoded(self, encoded_root: str, encoded_succ: str) -> StateId:
        """Intern one worker-derived successor, registering its representative
        (node ids preserved) when the state is new to the engine."""
        rep = decode_instance_with_ids(encoded_succ, self.guarded_form.schema)
        shape_map = self.shaper.full_map(rep)
        shape = shape_map[rep.root.node_id]
        succ_id, is_new = self.interner.state_id(shape)
        if is_new:
            self._reps[succ_id] = rep
            self._shape_maps[succ_id] = shape_map
            if self.store.persistent:
                self.store.put_representative(succ_id, encode_instance_with_ids(rep))
        self._encoded_ids[encoded_root] = succ_id
        return succ_id

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def stats_snapshot(self) -> dict:
        snapshot = super().stats_snapshot()
        snapshot["workers"] = self.workers
        snapshot["waves_dispatched"] = self.waves_dispatched
        snapshot["states_prefetched"] = self.states_prefetched
        snapshot["expansions_adopted"] = self.expansions_adopted
        snapshot["worker_guard_entries_merged"] = self.worker_guard_entries_merged
        return snapshot
