"""Frontier worker processes for the parallel exploration subsystem.

A :class:`WorkerPool` owns N ``multiprocessing`` processes, each running
:func:`worker_main` over a read-only snapshot of one guarded form.  The
coordinator (:class:`~repro.engine.parallel.ParallelExplorationEngine`)
partitions each frontier wave into per-worker batches — a worker owns the
shard ``stable_shape_hash(shape) % N``, so the subtree shapes and guard
values of a shard accumulate in that worker's local caches across waves —
and every worker answers one batch with one message:

``(worker index, wave id, binary wire frame, error)``

The frame (:mod:`repro.engine.wire`) packs each state's expansion payload —
per candidate the update, a reference into the frame's **per-batch shape
table** (each distinct successor root shape serialised once), the addition
flag, the successor size and the pre-update sibling-copy count.  Successor
representatives are *not* shipped: the coordinator owns the parent
representative it sent with the task and derives a genuinely-new successor's
representative itself, with the same incremental derivation the serial
engine uses — node id for node id.

Workers never intern canonical state ids: interning order determines the
engine's dense id assignment, and keeping it on the coordinator (which merges
in serial pop order) is what makes parallel runs bit-identical to serial
ones.  On a store-backed exploration each worker hydrates only its own
``stable_shape_hash % N`` slice of the persisted shape table into its local
subtree caches (:func:`~repro.engine.store.load_shard_shape_rows`), so
worker residency scales with the shard, never the whole table.  What
workers *do* share is guard evaluations: each worker keeps a
:class:`~repro.engine.guards.GuardCache` keyed identically to the
coordinator's (states are addressed by their canonical ids, shipped with the
task), returns the entries it evaluated in its result batches, and — when the
exploration is backed by an on-disk :class:`~repro.engine.store.SqliteStore`
— hydrates from and writes back to the store's ``guards`` table through the
sqlite WAL (see :func:`load_guard_rows_raw` / :func:`write_guard_rows` in
:mod:`repro.engine.store`).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import traceback
from typing import Optional

from repro.cache.runtime import default_cache, open_kv, reset_cache_runtime, use_cache
from repro.core.guarded_form import GuardedForm, Update
from repro.engine.engine import enumerate_expansion
from repro.engine.guards import GuardCache
from repro.engine.interning import IncrementalShaper, ShapeInterner
from repro.engine.store import (
    load_guard_rows_raw,
    load_shard_shape_rows,
    write_guard_rows,
)
from repro.engine.wire import FrameEncoder
from repro.exceptions import AnalysisError
from repro.io.serialization import decode_instance_with_ids
from repro.obs import NO_TELEMETRY, Telemetry

#: Sentinel telling a worker's task loop to exit.
_SHUTDOWN = None

#: How long (seconds) the coordinator waits between liveness checks while
#: collecting wave results.
_POLL_INTERVAL = 0.25

#: Most persisted shapes a worker pre-cons from its shard at startup.
#: Pre-warming the subtree caches is an optimisation, never a requirement,
#: so it must stay bounded — a worker attached to a 10^7-row store must not
#: materialise its whole 1/N slice.
SHARD_HYDRATION_LIMIT = 100_000


class _GuardJournal:
    """A guard-cache write sink collecting the entries a worker evaluates.

    Quacks like the persistent-store interface :class:`GuardCache` writes
    through (``put_guard``), so the worker-side cache needs no special mode;
    the pool drains the journal once per batch.
    """

    def __init__(self) -> None:
        self.entries: list = []

    def put_guard(self, key: tuple, value: bool) -> None:
        self.entries.append((key, value))

    def drain(self) -> list:
        drained, self.entries = self.entries, []
        return drained


class FrontierWorker:
    """The per-process expansion state: one guarded form, local caches.

    ``expand`` runs the *shared* candidate enumeration
    (:func:`~repro.engine.engine.enumerate_expansion`) — the same traversal,
    guard keys and candidate order as the serial engine's ``_expand``, by
    construction — which the serial-vs-parallel differential suite pins per
    benchgen family.
    """

    def __init__(
        self,
        guarded_form: GuardedForm,
        store_path: Optional[str] = None,
        shard: Optional[int] = None,
        nshards: Optional[int] = None,
        binary_guards: bool = False,
        telemetry=None,
    ) -> None:
        self._form = guarded_form
        self._interner = ShapeInterner()
        self._shaper = IncrementalShaper(self._interner)
        self._journal = _GuardJournal()
        self.telemetry = telemetry if telemetry is not None else NO_TELEMETRY
        self._guards = GuardCache(guarded_form, store=self._journal, telemetry=self.telemetry)
        self._store_path = store_path
        self._binary_guards = binary_guards
        #: Persisted shapes pre-consed into this worker's local interner —
        #: only its own ``stable_shape_hash % nshards`` slice (capped at
        #: :data:`SHARD_HYDRATION_LIMIT`), never the whole table, so worker
        #: residency stays proportional to the shard and bounded.
        self.shapes_hydrated = 0
        if store_path is not None:
            with self.telemetry.span("worker.hydrate", shard=shard, nshards=nshards):
                if shard is not None and nshards:
                    for shape in load_shard_shape_rows(
                        store_path, shard, nshards, limit=SHARD_HYDRATION_LIMIT
                    ):
                        self._interner.cons_tree(shape)
                        self.shapes_hydrated += 1
                for row, value in load_guard_rows_raw(store_path):
                    self._guards.restore_raw(row, value)
                self._journal.drain()  # hydration is not news to report back

    def expand(self, state_id: int, blob: str) -> tuple:
        """Expansion payload for one state: ``(candidates, queries)``.

        Candidates are raw ``(update, root shape, is_addition, successor
        size, copies)`` tuples — the frame encoder interns the root shapes
        into the batch's shape table.
        """
        instance = decode_instance_with_ids(blob, self._form.schema)
        shape_map = self._shaper.full_map(instance)
        guards = self._guards
        queries_before = guards.hits + guards.misses

        def candidate(update: Update, is_addition: bool, succ_size: int, copies: int) -> tuple:
            root_shape = self._shaper.successor_shape(instance, shape_map, update)
            return (update, root_shape, is_addition, succ_size, copies)

        candidates = enumerate_expansion(
            instance, shape_map, self._form.schema, guards, state_id, candidate
        )
        return (candidates, guards.hits + guards.misses - queries_before)

    def run_batch(self, batch: list) -> bytes:
        """Expand one task batch into one binary wire frame.

        Newly evaluated guard entries are drained from the journal, written
        through to the store's WAL (when one backs the exploration) and
        packed into the frame so the coordinator can merge them either way.
        With telemetry enabled the batch's spans and metric deltas ride in
        the frame's telemetry section for the coordinator to merge.
        """
        obs = self.telemetry
        batch_started = obs.now()
        encoder = FrameEncoder()
        for state_id, blob in batch:
            candidates, queries = self.expand(state_id, blob)
            encoder.add_state(state_id, candidates, queries)
        entries = self._journal.drain()
        if entries and self._store_path is not None:
            if obs.enabled:
                write_started = obs.now()
                write_guard_rows(self._store_path, entries, binary=self._binary_guards)
                obs.end_span("worker.write_guard_rows", write_started, rows=len(entries))
            else:
                write_guard_rows(self._store_path, entries, binary=self._binary_guards)
        encoder.add_guard_entries(entries)
        if obs.enabled:
            obs.end_span(
                "worker.batch",
                batch_started,
                states=len(batch),
                candidates=encoder.candidates_encoded,
                guard_entries=len(entries),
            )
            metrics = obs.metrics
            metrics.counter("worker_states_expanded").inc(len(batch))
            metrics.counter("worker_candidates_encoded").inc(encoder.candidates_encoded)
            metrics.counter("guard_eval_seconds").inc(self._guards.take_eval_seconds())
            encoder.add_telemetry(obs.export_payload(drain=True))
        return encoder.finish()


def worker_main(
    index: int,
    guarded_form: GuardedForm,
    tasks,
    results,
    store_path,
    nshards=None,
    binary_guards=False,
    telemetry_enabled=False,
    cache_spec=None,
) -> None:
    """Entry point of one worker process: loop over task batches until told
    to shut down, reporting each batch (or the failure that killed it).

    The worker owns shard ``index`` of ``nshards`` — it hydrates only that
    slice of a populated store's shape table into its local caches.  Every
    result echoes the wave id its task carried, so the coordinator can
    discard answers to a wave it abandoned (e.g. a ``KeyboardInterrupt``
    landing mid-collection) instead of mistaking them for the next wave's.

    With ``telemetry_enabled`` the worker builds its own
    :class:`~repro.obs.Telemetry` (real pid, process name
    ``frontier-worker-<index>``) whose spans and metric deltas each frame
    ships back for the coordinator's cross-process merge.

    With *cache_spec* (the coordinator's shared KV-cache spec; falling back
    to ``REPRO_CACHE``) the worker opens its **own** backend handle and
    makes it ambient for its guard cache, so one worker's guard evaluations
    reach the others mid-run — at cache batch boundaries — instead of only
    through the sqlite WAL.  Fork-inherited cache objects are discarded
    first: an sqlite connection must never be shared across a fork.
    """
    reset_cache_runtime()
    telemetry = Telemetry(process=f"frontier-worker-{index}") if telemetry_enabled else None
    try:
        cache = open_kv(cache_spec) if cache_spec else default_cache()
    except BaseException:  # noqa: BLE001 - report startup failures, don't hang the pool
        results.put((index, None, None, traceback.format_exc()))
        return
    with use_cache(cache):
        try:
            worker = FrontierWorker(
                guarded_form,
                store_path,
                shard=index,
                nshards=nshards,
                binary_guards=binary_guards,
                telemetry=telemetry,
            )
        except BaseException:  # noqa: BLE001 - report startup failures, don't hang the pool
            results.put((index, None, None, traceback.format_exc()))
            return
        while True:
            message = tasks.get()
            if message is _SHUTDOWN:
                if cache is not None:
                    cache.close()  # publish the tail of the put buffer
                return
            wave, batch = message
            try:
                frame = worker.run_batch(batch)
            except BaseException:  # noqa: BLE001 - the coordinator re-raises
                results.put((index, wave, None, traceback.format_exc()))
            else:
                results.put((index, wave, frame, None))
                if cache is not None:
                    # batch boundary: make this wave's evaluations visible
                    # to the sibling workers now, not at shutdown
                    cache.flush()


class WorkerPool:
    """N frontier worker processes plus the queues to talk to them.

    The pool is created lazily by the parallel engine's first prefetch and
    lives for the engine's lifetime, so worker-local guard/shape caches keep
    paying off across the many explorations one analysis performs.  Workers
    are daemons: an exiting coordinator can never be held hostage by them.
    """

    def __init__(
        self,
        guarded_form: GuardedForm,
        workers: int,
        store_path: Optional[str] = None,
        binary_guards: bool = False,
        telemetry_enabled: bool = False,
        cache_spec: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise AnalysisError("a worker pool needs at least one worker")
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self.workers = workers
        self._results = context.Queue()
        self._tasks = [context.Queue() for _ in range(workers)]
        self._processes = [
            context.Process(
                target=worker_main,
                args=(
                    index,
                    guarded_form,
                    self._tasks[index],
                    self._results,
                    store_path,
                    workers,
                    binary_guards,
                    telemetry_enabled,
                    cache_spec,
                ),
                daemon=True,
                name=f"repro-frontier-worker-{index}",
            )
            for index in range(workers)
        ]
        for process in self._processes:
            process.start()
        self._closed = False
        self._wave = 0

    # ------------------------------------------------------------------ #
    # wave dispatch
    # ------------------------------------------------------------------ #

    def run_wave(self, batches: dict) -> list:
        """Dispatch per-worker *batches* and gather every answer.

        Args:
            batches: ``worker index -> [(state id, encoded representative)]``;
                only non-empty batches are dispatched.

        Returns:
            The binary wire frames answering this wave, one per dispatched
            worker (in arrival order; the coordinator stages per state id, so
            frame order is irrelevant).

        Raises:
            AnalysisError: when a worker reports an exception or dies.
        """
        self._wave += 1
        wave = self._wave
        expected = set()
        for index, batch in batches.items():
            if batch:
                self._tasks[index].put((wave, batch))
                expected.add(index)
        frames: list = []
        while expected:
            try:
                index, result_wave, frame, error = self._results.get(
                    timeout=_POLL_INTERVAL
                )
            except queue_module.Empty:
                self._check_liveness(expected)
                continue
            if error is not None and result_wave is None:
                raise AnalysisError(f"frontier worker {index} failed to start:\n{error}")
            if result_wave != wave:
                continue  # answer to an abandoned wave; drop it
            if error is not None:
                raise AnalysisError(f"frontier worker {index} failed:\n{error}")
            expected.discard(index)
            frames.append(frame)
        return frames

    def _check_liveness(self, expected: set) -> None:
        for index in expected:
            if not self._processes[index].is_alive():
                raise AnalysisError(
                    f"frontier worker {index} died (exit code "
                    f"{self._processes[index].exitcode}) before answering its batch"
                )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._tasks:
            try:
                task_queue.put(_SHUTDOWN)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        for task_queue in [*self._tasks, self._results]:
            task_queue.close()
            task_queue.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
