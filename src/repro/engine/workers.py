"""Frontier worker processes for the parallel exploration subsystem.

A :class:`WorkerPool` owns N ``multiprocessing`` processes, each running
:func:`worker_main` over a read-only snapshot of one guarded form.  The
coordinator (:class:`~repro.engine.parallel.ParallelExplorationEngine`)
partitions each frontier wave into per-worker batches — a worker owns the
shard ``stable_shape_hash(shape) % N``, so the subtree shapes and guard
values of a shard accumulate in that worker's local caches across waves —
and every worker answers one batch with one message:

``(worker index, wave id, [per-state expansion payloads], [new guard rows],
error)``

A per-state payload carries everything the coordinator needs to replay the
expansion *without re-evaluating a single formula*: per candidate the encoded
update, the encoded successor root shape (the coordinator's interning key),
the encoded successor representative **with node ids** (derived from the
shipped parent representative, so its ids are bit-identical to the ones the
serial engine would assign), the addition flag, the successor size and the
pre-update sibling-copy count — exactly the tuple
:meth:`~repro.engine.engine.ExplorationEngine._expand` memoizes, minus the
state id the coordinator assigns at merge time.

Workers never intern canonical state ids: interning order determines the
engine's dense id assignment, and keeping it on the coordinator (which merges
in serial pop order) is what makes parallel runs bit-identical to serial
ones.  What workers *do* share is guard evaluations: each worker keeps a
:class:`~repro.engine.guards.GuardCache` keyed identically to the
coordinator's (states are addressed by their canonical ids, shipped with the
task), returns the entries it evaluated in its result batches, and — when the
exploration is backed by an on-disk :class:`~repro.engine.store.SqliteStore`
— hydrates from and writes back to the store's ``guards`` table through the
sqlite WAL (see :func:`load_guard_rows` / :func:`write_guard_rows` in
:mod:`repro.engine.store`).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import traceback
from typing import Optional

from repro.core.guarded_form import GuardedForm, Update
from repro.engine.engine import enumerate_expansion
from repro.engine.guards import GuardCache
from repro.engine.interning import IncrementalShaper, ShapeInterner
from repro.engine.store import load_guard_rows, write_guard_rows
from repro.exceptions import AnalysisError
from repro.io.serialization import (
    decode_instance_with_ids,
    encode_guard_key,
    encode_instance_with_ids,
    encode_shape,
    encode_update,
)

#: Sentinel telling a worker's task loop to exit.
_SHUTDOWN = None

#: How long (seconds) the coordinator waits between liveness checks while
#: collecting wave results.
_POLL_INTERVAL = 0.25


class _GuardJournal:
    """A guard-cache write sink collecting the entries a worker evaluates.

    Quacks like the persistent-store interface :class:`GuardCache` writes
    through (``put_guard``), so the worker-side cache needs no special mode;
    the pool drains the journal once per batch.
    """

    def __init__(self) -> None:
        self.entries: list = []

    def put_guard(self, key: tuple, value: bool) -> None:
        self.entries.append((key, value))

    def drain(self) -> list:
        drained, self.entries = self.entries, []
        return drained


class FrontierWorker:
    """The per-process expansion state: one guarded form, local caches.

    ``expand`` runs the *shared* candidate enumeration
    (:func:`~repro.engine.engine.enumerate_expansion`) — the same traversal,
    guard keys and candidate order as the serial engine's ``_expand``, by
    construction — which the serial-vs-parallel differential suite pins per
    benchgen family.
    """

    def __init__(self, guarded_form: GuardedForm, store_path: Optional[str] = None) -> None:
        self._form = guarded_form
        self._interner = ShapeInterner()
        self._shaper = IncrementalShaper(self._interner)
        self._journal = _GuardJournal()
        self._guards = GuardCache(guarded_form, store=self._journal)
        self._store_path = store_path
        if store_path is not None:
            for key, value in load_guard_rows(store_path):
                self._guards.restore(key, value)
            self._journal.drain()  # hydration is not news to report back

    def expand(self, state_id: int, blob: str) -> tuple:
        """Expansion payload for one state: ``(state id, candidates, queries)``."""
        instance = decode_instance_with_ids(blob, self._form.schema)
        shape_map = self._shaper.full_map(instance)
        guards = self._guards
        queries_before = guards.hits + guards.misses

        def candidate(update: Update, is_addition: bool, succ_size: int, copies: int) -> tuple:
            successor, _succ_map, root_shape = self._shaper.successor(instance, shape_map, update)
            return (
                encode_update(update),
                encode_shape(root_shape),
                encode_instance_with_ids(successor),
                is_addition,
                succ_size,
                copies,
            )

        candidates = enumerate_expansion(
            instance, shape_map, self._form.schema, guards, state_id, candidate
        )
        return (state_id, candidates, guards.hits + guards.misses - queries_before)

    def run_batch(self, batch: list) -> tuple:
        """Expand one task batch; returns ``(payloads, new guard rows)``.

        Newly evaluated guard entries are drained from the journal, written
        through to the store's WAL (when one backs the exploration) and
        returned encoded so the coordinator can merge them either way.
        """
        payloads = [self.expand(state_id, blob) for state_id, blob in batch]
        entries = self._journal.drain()
        if entries and self._store_path is not None:
            write_guard_rows(self._store_path, entries)
        encoded = [(encode_guard_key(key), bool(value)) for key, value in entries]
        return payloads, encoded


def worker_main(index: int, guarded_form: GuardedForm, tasks, results, store_path) -> None:
    """Entry point of one worker process: loop over task batches until told
    to shut down, reporting each batch (or the failure that killed it).

    Every result echoes the wave id its task carried, so the coordinator can
    discard answers to a wave it abandoned (e.g. a ``KeyboardInterrupt``
    landing mid-collection) instead of mistaking them for the next wave's.
    """
    try:
        worker = FrontierWorker(guarded_form, store_path)
    except BaseException:  # noqa: BLE001 - report startup failures, don't hang the pool
        results.put((index, None, None, None, traceback.format_exc()))
        return
    while True:
        message = tasks.get()
        if message is _SHUTDOWN:
            return
        wave, batch = message
        try:
            payloads, guard_rows = worker.run_batch(batch)
        except BaseException:  # noqa: BLE001 - the coordinator re-raises
            results.put((index, wave, None, None, traceback.format_exc()))
        else:
            results.put((index, wave, payloads, guard_rows, None))


class WorkerPool:
    """N frontier worker processes plus the queues to talk to them.

    The pool is created lazily by the parallel engine's first prefetch and
    lives for the engine's lifetime, so worker-local guard/shape caches keep
    paying off across the many explorations one analysis performs.  Workers
    are daemons: an exiting coordinator can never be held hostage by them.
    """

    def __init__(
        self,
        guarded_form: GuardedForm,
        workers: int,
        store_path: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise AnalysisError("a worker pool needs at least one worker")
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self.workers = workers
        self._results = context.Queue()
        self._tasks = [context.Queue() for _ in range(workers)]
        self._processes = [
            context.Process(
                target=worker_main,
                args=(index, guarded_form, self._tasks[index], self._results, store_path),
                daemon=True,
                name=f"repro-frontier-worker-{index}",
            )
            for index in range(workers)
        ]
        for process in self._processes:
            process.start()
        self._closed = False
        self._wave = 0

    # ------------------------------------------------------------------ #
    # wave dispatch
    # ------------------------------------------------------------------ #

    def run_wave(self, batches: dict) -> tuple[list, list]:
        """Dispatch per-worker *batches* and gather every answer.

        Args:
            batches: ``worker index -> [(state id, encoded representative)]``;
                only non-empty batches are dispatched.

        Returns:
            ``(payloads, guard rows)`` concatenated over all workers (the
            coordinator re-orders payloads by state id anyway).

        Raises:
            AnalysisError: when a worker reports an exception or dies.
        """
        self._wave += 1
        wave = self._wave
        expected = set()
        for index, batch in batches.items():
            if batch:
                self._tasks[index].put((wave, batch))
                expected.add(index)
        payloads: list = []
        guard_rows: list = []
        while expected:
            try:
                index, result_wave, batch_payloads, batch_guards, error = self._results.get(
                    timeout=_POLL_INTERVAL
                )
            except queue_module.Empty:
                self._check_liveness(expected)
                continue
            if error is not None and result_wave is None:
                raise AnalysisError(f"frontier worker {index} failed to start:\n{error}")
            if result_wave != wave:
                continue  # answer to an abandoned wave; drop it
            if error is not None:
                raise AnalysisError(f"frontier worker {index} failed:\n{error}")
            expected.discard(index)
            payloads.extend(batch_payloads)
            guard_rows.extend(batch_guards)
        return payloads, guard_rows

    def _check_liveness(self, expected: set) -> None:
        for index in expected:
            if not self._processes[index].is_alive():
                raise AnalysisError(
                    f"frontier worker {index} died (exit code "
                    f"{self._processes[index].exitcode}) before answering its batch"
                )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._tasks:
            try:
                task_queue.put(_SHUTDOWN)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        for task_queue in [*self._tasks, self._results]:
            task_queue.close()
            task_queue.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
