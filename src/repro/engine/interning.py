"""Hash-consed shape interning and incremental shape maintenance.

The bounded explorer deduplicates states by the isomorphism-invariant
:data:`~repro.core.tree.Shape` of their instances.  Shapes are nested tuples;
comparing and hashing them is O(tree size), and the legacy explorer recomputed
them from scratch for every successor.  This module removes both costs:

* :class:`ShapeInterner` hash-conses shapes.  Every subtree shape is mapped to
  a single canonical tuple object (structurally equal subtrees share one
  object, so equality checks short-circuit on identity and memory stays
  proportional to the number of *distinct* subtrees), and every full-state
  shape is mapped to a small integer id.  State keys used by the exploration
  engine are therefore O(1)-comparable ints.

* :class:`IncrementalShaper` maintains, per state, a ``node_id -> Shape`` map
  for the state's representative instance.  The shape of a successor is then
  computed from the parent's map plus the applied update: only the shapes on
  the root-to-update path are rebuilt (O(depth x branching)), instead of
  re-walking the whole tree (O(size log size)).

* :func:`map_isomorphism` computes an explicit isomorphism between two
  isomorphic trees; the engine uses it to translate witness runs recorded
  against canonical representatives back onto a caller-supplied start
  instance.
"""

from __future__ import annotations

from typing import Optional

from repro.core.guarded_form import Addition, Update
from repro.core.instance import Instance
from repro.core.tree import LabelledTree, Node, Shape

#: Interned state identifier: an index into the interner's shape table.
StateId = int


def _subtree_shape(node: Node) -> Shape:
    """The plain (un-consed) shape of the subtree rooted at *node*."""
    children = sorted(_subtree_shape(child) for child in node.children)
    return (node.label, tuple(children))


class ShapeInterner:
    """A hash-consing table for tree shapes.

    ``cons`` canonicalises a subtree shape (structurally equal inputs return
    the *same* tuple object); ``state_id`` assigns a dense integer id to a
    full-state shape.  Both directions are O(1) amortised; ``shape_of``
    recovers the shape of an id.
    """

    def __init__(self, store=None) -> None:
        self._cons: dict = {}  # Shape -> canonical Shape object
        self._ids: dict = {}  # canonical Shape -> StateId
        self._shapes: list = []  # StateId -> canonical Shape
        #: Persistent write-through sink (a persistent
        #: :class:`~repro.engine.store.StateStore`), or ``None``.
        self._store = store
        self.cons_hits = 0
        self.cons_misses = 0
        self.state_hits = 0
        self.state_misses = 0
        self.states_restored = 0

    def cons(self, shape: Shape) -> Shape:
        """Return the canonical object for *shape* (hash-consing)."""
        canonical = self._cons.get(shape)
        if canonical is not None:
            self.cons_hits += 1
            return canonical
        self.cons_misses += 1
        self._cons[shape] = shape
        return shape

    def state_id(self, shape: Shape) -> tuple[StateId, bool]:
        """Intern a full-state shape; return ``(id, is_new)``."""
        existing = self._ids.get(shape)
        if existing is not None:
            self.state_hits += 1
            return existing, False
        self.state_misses += 1
        new_id = len(self._shapes)
        self._ids[shape] = new_id
        self._shapes.append(shape)
        if self._store is not None:
            self._store.put_shape(new_id, shape)
        return new_id, True

    def restore(self, state_id: StateId, shape: Shape) -> None:
        """Re-intern a persisted shape under its recorded id (hydration).

        Rows must be restored in id order (ids are dense), before any new
        shape is interned; restored rows are not written back to the store.

        Raises:
            ValueError: when *state_id* is not the next dense id.
        """
        if state_id != len(self._shapes):
            raise ValueError(
                f"state ids must be restored densely in order; expected "
                f"{len(self._shapes)}, got {state_id}"
            )
        canonical = self.cons(shape)
        self._ids[canonical] = state_id
        self._shapes.append(canonical)
        self.states_restored += 1

    def lookup(self, shape: Shape) -> Optional[StateId]:
        """The id of *shape* if it was interned, else ``None``."""
        return self._ids.get(shape)

    def shape_of(self, state_id: StateId) -> Shape:
        """The shape interned under *state_id*."""
        return self._shapes[state_id]

    def __len__(self) -> int:
        return len(self._shapes)

    def stats(self) -> dict:
        """Counter snapshot for :class:`AnalysisResult` stats."""
        return {
            "interned_states": len(self._shapes),
            "interned_subtrees": len(self._cons),
            "state_hits": self.state_hits,
            "state_misses": self.state_misses,
            "cons_hits": self.cons_hits,
            "cons_misses": self.cons_misses,
            "states_restored": self.states_restored,
        }


class IncrementalShaper:
    """Computes successor shapes incrementally from per-state shape maps."""

    def __init__(self, interner: ShapeInterner) -> None:
        self._interner = interner
        self.nodes_rehashed = 0  # shape rebuilds actually performed
        self.nodes_full_equivalent = 0  # what full per-successor walks would cost

    def full_map(self, tree: LabelledTree) -> dict[int, Shape]:
        """``node_id -> consed subtree shape`` for every node of *tree*."""
        cons = self._interner.cons
        shape_map: dict[int, Shape] = {}

        def build(node: Node) -> Shape:
            children = sorted(build(child) for child in node.children)
            shape = cons((node.label, tuple(children)))
            shape_map[node.node_id] = shape
            return shape

        build(tree.root)
        self.nodes_rehashed += tree.size()
        self.nodes_full_equivalent += tree.size()
        return shape_map

    def successor(
        self,
        instance: Instance,
        shape_map: dict[int, Shape],
        update: Update,
    ) -> tuple[Instance, dict[int, Shape], Shape]:
        """Apply *update* to a copy of *instance* and derive the successor's
        shape map from the parent's.

        Returns ``(successor instance, successor shape map, root shape)``.
        Only the nodes on the path from the updated leaf to the root are
        re-hashed; every untouched subtree reuses the parent's consed shape.
        """
        successor = instance.copy()
        new_map = dict(shape_map)
        if isinstance(update, Addition):
            leaf = successor.add_field(successor.node(update.parent_id), update.label)
            new_map[leaf.node_id] = self._interner.cons((update.label, ()))
            dirty = leaf.parent
            self.nodes_rehashed += 1
        else:
            node = successor.node(update.node_id)
            dirty = node.parent
            successor.remove_field(node)
            del new_map[update.node_id]
        cons = self._interner.cons
        while dirty is not None:
            children = sorted(new_map[child.node_id] for child in dirty.children)
            new_map[dirty.node_id] = cons((dirty.label, tuple(children)))
            self.nodes_rehashed += 1
            dirty = dirty.parent
        self.nodes_full_equivalent += successor.size()
        return successor, new_map, new_map[successor.root.node_id]

    def successor_shape(
        self,
        instance: Instance,
        shape_map: dict[int, Shape],
        update: Update,
    ) -> Shape:
        """The root shape of ``apply(update)`` *without* materialising the
        successor instance.

        Equivalent to ``successor(...)[2]`` — the same consed shapes, built
        by the same root-to-update-path rebuild — but skipping the deep copy
        of the instance and the successor shape map.  The frontier workers
        use it: since PR 4 they ship shape-table references instead of
        successor representatives, so the copy :meth:`successor` performs
        would be thrown away per candidate.
        """
        cons = self._interner.cons
        if isinstance(update, Addition):
            dirty = instance.node(update.parent_id)
            extra: Optional[Shape] = cons((update.label, ()))
            removed_id = None
            self.nodes_rehashed += 1
        else:
            node = instance.node(update.node_id)
            dirty = node.parent
            extra = None
            removed_id = update.node_id
        new_shape: Optional[Shape] = None
        rebuilt = dirty
        while dirty is not None:
            children = [
                new_shape if child is rebuilt else shape_map[child.node_id]
                for child in dirty.children
                if child.node_id != removed_id
            ]
            if extra is not None:
                children.append(extra)
                extra = None
            new_shape = cons((dirty.label, tuple(sorted(children))))
            self.nodes_rehashed += 1
            rebuilt = dirty
            dirty = dirty.parent
        self.nodes_full_equivalent += instance.size() + (1 if removed_id is None else -1)
        assert new_shape is not None  # the dirty node always exists
        return new_shape

    def stats(self) -> dict:
        """Counter snapshot for :class:`AnalysisResult` stats."""
        saved = self.nodes_full_equivalent - self.nodes_rehashed
        return {
            "nodes_rehashed": self.nodes_rehashed,
            "nodes_full_walk_equivalent": self.nodes_full_equivalent,
            "nodes_saved": saved,
        }


def map_isomorphism(source: Node, target: Node) -> dict[int, int]:
    """An explicit isomorphism (``source node_id -> target node_id``) between
    the isomorphic trees rooted at *source* and *target*.

    Children are matched by sorted subtree shape; within a group of
    same-shape siblings any pairing is an isomorphism (they are related by an
    automorphism), so the first consistent one is returned.

    Raises:
        ValueError: when the trees are not isomorphic.
    """
    if _subtree_shape(source) != _subtree_shape(target):
        raise ValueError("cannot map between non-isomorphic trees")
    mapping: dict[int, int] = {}
    stack = [(source, target)]
    while stack:
        from_node, to_node = stack.pop()
        mapping[from_node.node_id] = to_node.node_id
        stack.extend(
            zip(
                sorted(from_node.children, key=_subtree_shape),
                sorted(to_node.children, key=_subtree_shape),
            )
        )
    return mapping
