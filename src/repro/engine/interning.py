"""Hash-consed shape interning and incremental shape maintenance.

The bounded explorer deduplicates states by the isomorphism-invariant
:data:`~repro.core.tree.Shape` of their instances.  Shapes are nested tuples;
comparing and hashing them is O(tree size), and the legacy explorer recomputed
them from scratch for every successor.  This module removes both costs:

* :class:`ShapeInterner` hash-conses shapes.  Every subtree shape is mapped to
  a single canonical tuple object (structurally equal subtrees share one
  object, so equality checks short-circuit on identity and memory stays
  proportional to the number of *distinct* subtrees), and every full-state
  shape is mapped to a small integer id.  State keys used by the exploration
  engine are therefore O(1)-comparable ints.

  On a store-backed engine the interner is a **two-tier table**: the resident
  dict is consulted first, and a miss falls back to the store's reverse
  lookup (:meth:`~repro.engine.store.SqliteStore.get_state_id`, indexed by
  ``shape_hash``) before a new id is ever assigned.  Attaching to a populated
  store therefore no longer bulk-restores the whole shape table:
  :meth:`bind_persisted` records the persisted id range (so ``len`` and new
  id assignment stay exact), rows are pulled in on first touch, and resident
  rows can be evicted again (:meth:`evict_states`) under a resident budget —
  ids never change either way, which the residency property suite pins.

* :class:`IncrementalShaper` maintains, per state, a ``node_id -> Shape`` map
  for the state's representative instance.  The shape of a successor is then
  computed from the parent's map plus the applied update: only the shapes on
  the root-to-update path are rebuilt (O(depth x branching)), instead of
  re-walking the whole tree (O(size log size)).

* :func:`map_isomorphism` computes an explicit isomorphism between two
  isomorphic trees; the engine uses it to translate witness runs recorded
  against canonical representatives back onto a caller-supplied start
  instance.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.cache.runtime import default_cache
from repro.core.guarded_form import Addition, Update
from repro.core.instance import Instance
from repro.core.tree import LabelledTree, Node, Shape
from repro.engine.arena import RowId, ShapeArena
from repro.io.serialization import decode_shape_binary

#: Interned state identifier: an index into the interner's shape table.
StateId = int


def _subtree_shape(node: Node) -> Shape:
    """The plain (un-consed) shape of the subtree rooted at *node*."""
    children = sorted(_subtree_shape(child) for child in node.children)
    return (node.label, tuple(children))


class ShapeInterner:
    """A two-tier hash-consing table for tree shapes.

    ``cons`` canonicalises a subtree shape (structurally equal inputs return
    the *same* tuple object); ``state_id`` assigns a dense integer id to a
    full-state shape.  Both directions are O(1) amortised on the resident
    tier; ``shape_of`` recovers the shape of an id.

    With a persistent *store* attached, ids and shapes need not all be
    resident: a ``state_id`` miss falls back to the store's ``shape_hash``
    reverse lookup, a ``shape_of`` miss to the store's row read, and either
    hit re-registers the row resident.  ``len`` counts *assigned* ids (dense,
    including non-resident ones), never just the resident slice.
    """

    def __init__(self, store=None) -> None:
        self._cons: dict = {}  # Shape -> canonical Shape object
        #: Flat storage of every full-state shape this interner has seen;
        #: rows carry the cached canonical encoding and CRC digest, so the
        #: id tier below works on small ints instead of nested tuples.
        self.arena = ShapeArena()
        #: Shape tuple -> arena row (a pure memo over ``arena.intern_cons``;
        #: clearable, rebuilt on demand).
        self._row_of: dict = {}
        self._ids: dict = {}  # arena row -> StateId (resident tier)
        #: StateId -> arena row, maintained in recency-of-access order
        #: (front = coldest) so budget eviction can drop the least recently
        #: used residents first.
        self._shapes: OrderedDict = OrderedDict()
        #: Next id to assign; equals ``max persisted or interned id + 1``.
        self._next_id: StateId = 0
        #: Persistent write-through sink and fallback tier (a persistent
        #: :class:`~repro.engine.store.StateStore`), or ``None``.
        self._store = store
        #: Persisted rows not currently resident; while positive, unknown
        #: shapes consult the store before being assigned a fresh id.  Zero
        #: on fresh stores, so the fully-resident hot path pays nothing.
        self._nonresident = 0
        #: Distinct persisted ids restored from the store so far (re-restores
        #: after eviction do not count twice) — the basis for the engine's
        #: ``hydration_rows_skipped`` statistic.  Only ids within the
        #: persisted-at-attach range count: rows this process interned and
        #: evicted come back through the same fallback but are not
        #: *hydration*.
        self._restored_ids: set = set()
        #: Highest id persisted when :meth:`bind_persisted` ran (-1: never).
        self._persisted_max: StateId = -1
        self.cons_hits = 0
        self.cons_misses = 0
        self.state_hits = 0
        self.state_misses = 0
        self.states_restored = 0
        self.states_evicted = 0
        self.cons_pruned = 0
        self.store_id_lookups = 0
        #: Shared KV read-through tier in front of the store fallbacks
        #: (:mod:`repro.cache`).  Only consulted where the store would be —
        #: the fully-resident hot path pays nothing — and scoped by the
        #: store's :meth:`~repro.engine.store.StateStore.cache_scope` token,
        #: because the id side of every entry is meaningless outside the
        #: store file that assigned it.  Resolved lazily on first fallback.
        self._kv = default_cache() if store is not None else None
        self._kv_scope: Optional[bytes] = None
        self.kv_id_hits = 0
        self.kv_row_hits = 0
        #: Low-water mark for :meth:`prune_cons` triggering (set by the
        #: engine's budget enforcement; see ``ExplorationEngine``).
        self._cons_floor = 0

    def _kv_scope_bytes(self) -> Optional[bytes]:
        """The store-scoped KV key prefix, or ``None`` when KV is off."""
        if self._kv is None:
            return None
        if self._kv_scope is None:
            scope_of = getattr(self._store, "cache_scope", None)
            scope = scope_of() if scope_of is not None else None
            if scope is None:
                # unattached or non-persistent store: ids have no durable
                # identity, so nothing can be shared — switch KV off
                self._kv = None
                return None
            self._kv_scope = scope.encode("ascii") + b"|"
        return self._kv_scope

    def _kv_publish_row(self, state_id: StateId, row: RowId) -> None:
        """Offer one persisted row's two mappings to the shared KV tier."""
        scope = self._kv_scope_bytes()
        if scope is None:
            return
        encoded = self.arena.encoded(row)
        id_bytes = b"%d" % state_id
        self._kv.put("shapes", b"i" + scope + encoded, id_bytes)
        self._kv.put("shapes", b"r" + scope + id_bytes, encoded)

    def cons(self, shape: Shape) -> Shape:
        """Return the canonical object for *shape* (hash-consing)."""
        canonical = self._cons.get(shape)
        if canonical is not None:
            self.cons_hits += 1
            return canonical
        self.cons_misses += 1
        self._cons[shape] = shape
        return shape

    def cons_tree(self, shape: Shape) -> Shape:
        """Hash-cons *shape* and every subtree of it, bottom-up.

        Used when a shape enters the engine from outside the incremental
        derivation path (store rows, worker shard hydration): the returned
        canonical object has canonical children all the way down, so equality
        checks against engine-derived shapes keep their identity
        short-circuit.
        """
        canonical = self._cons.get(shape)
        if canonical is not None:
            self.cons_hits += 1
            return canonical
        label, children = shape
        consed = (label, tuple(self.cons_tree(child) for child in children))
        self.cons_misses += 1
        self._cons[consed] = consed
        return consed

    def state_id(self, shape: Shape) -> tuple[StateId, bool]:
        """Intern a full-state shape; return ``(id, is_new)``.

        The resident tier answers first; when persisted non-resident rows
        exist, an unknown shape consults the store's reverse lookup and — on
        a hit — is restored resident under its persisted id.  Only a shape
        absent from both tiers gets a fresh id, so ids are bit-identical
        whether or not rows were hydrated or evicted in between.
        """
        row = self._row_of.get(shape)
        if row is None:
            row = self.arena.intern_cons(shape)
            self._row_of[shape] = row
        return self.state_id_row(row)

    def state_id_row(self, row: RowId) -> tuple[StateId, bool]:
        """Intern a full-state shape given as an arena row; return
        ``(id, is_new)``.

        The wire-decode entry point: frames materialise their shape tables
        straight into arena rows, so the whole resident-tier lookup is one
        int-keyed dict probe.  The store fallback hands the row's cached
        digest and canonical encoding to the reverse lookup — no re-encode,
        no tuple materialisation for already-persisted shapes.
        """
        existing = self._ids.get(row)
        if existing is not None:
            self.state_hits += 1
            self._shapes.move_to_end(existing)
            return existing, False
        arena = self.arena
        if self._nonresident > 0 and self._store is not None:
            # the shared KV read-through answers for the store when it can;
            # a hit counts as a store fallback consultation all the same,
            # so the interner's counters stay bit-identical with the cache
            # cold, warm, or absent
            scope = self._kv_scope_bytes()
            if scope is not None:
                cached = self._kv.get("shapes", b"i" + scope + arena.encoded(row))
                if cached is not None:
                    found = int(cached)
                    # an id at or above _next_id was minted after this
                    # interner bound its persisted range — it cannot be one
                    # of our non-resident rows, so fall through to the store
                    if 0 <= found < self._next_id:
                        self.store_id_lookups += 1
                        self._make_resident_row(found, row)
                        self.state_hits += 1
                        self.kv_id_hits += 1
                        return found, False
            self.store_id_lookups += 1
            found = self._store.get_state_id(
                None, digest=arena.stable_hash(row), encoded=arena.encoded(row)
            )
            if found is not None:
                self._make_resident_row(found, row)
                self.state_hits += 1
                self._kv_publish_row(found, row)
                return found, False
        self.state_misses += 1
        new_id = self._next_id
        self._next_id += 1
        self._ids[row] = new_id
        self._shapes[new_id] = row
        if self._store is not None:
            self._store.put_shape(
                new_id, None, encoded=arena.encoded(row), digest=arena.stable_hash(row)
            )
            self._kv_publish_row(new_id, row)
        return new_id, True

    def _make_resident(self, state_id: StateId, shape: Shape) -> Shape:
        """Register a store row on the resident tier (shared restore path)."""
        canonical = self.cons_tree(shape)
        row = self._row_of.get(canonical)
        if row is None:
            row = self.arena.intern_cons(canonical)
            self._row_of[canonical] = row
        self._make_resident_row(state_id, row)
        return canonical

    def _make_resident_row(self, state_id: StateId, row: RowId) -> None:
        if state_id not in self._shapes and self._nonresident > 0:
            self._nonresident -= 1
        self._ids[row] = state_id
        self._shapes[state_id] = row
        if state_id <= self._persisted_max:
            self._restored_ids.add(state_id)
        self.states_restored += 1

    def bind_persisted(self, max_state_id: StateId, row_count: int) -> None:
        """Attach *row_count* persisted rows with ids up to *max_state_id*
        without restoring any of them.

        New shapes get ids above the persisted range, ``len`` counts the
        persisted ids as assigned, and unknown shapes fall back to the
        store's reverse lookup while non-resident rows remain.  Idempotent —
        a retried hydration (after a mid-hydration failure) recomputes the
        non-resident count from what is actually resident.
        """
        self._next_id = max(self._next_id, max_state_id + 1)
        self._persisted_max = max(self._persisted_max, max_state_id)
        resident_persisted = sum(1 for sid in self._shapes if sid <= max_state_id)
        self._nonresident = max(0, row_count - resident_persisted)

    def restore(self, state_id: StateId, shape: Shape) -> None:
        """Re-intern a persisted shape under its recorded id (hydration).

        Unlike the historic bulk-hydration path this no longer requires
        dense, in-id-order restores: any persisted row may be restored at any
        time (the two-tier fallback does exactly that on first touch), and
        restoring an already-resident row is a harmless overwrite.  Restored
        rows are not written back to the store.
        """
        self._make_resident(state_id, shape)
        self._next_id = max(self._next_id, state_id + 1)

    def evict_states(self, keep: int) -> int:
        """Drop least-recently-used resident full-state shapes beyond *keep*.

        Only meaningful with a backing store (evicted rows are transparently
        restored through the reverse-lookup / row-read fallbacks); returns
        the number evicted.  Ids are never invalidated by eviction.
        """
        if self._store is None:
            return 0
        evicted = 0
        while len(self._shapes) > keep:
            state_id, row = self._shapes.popitem(last=False)
            del self._ids[row]
            self._nonresident += 1
            evicted += 1
        self.states_evicted += evicted
        return evicted

    def prune_cons(self, keep: Iterable[Shape] = ()) -> int:
        """Rebuild the subtree hash-consing table from *keep* (typically the
        engine's resident shape-map values) and drop the droppable arena
        memos (tuple→row, row→tuple).

        Dropped entries cost nothing but sharing: a re-consed subtree is a
        fresh-but-equal tuple, every consumer compares shapes structurally,
        and the arena's flat rows — the ground truth for ids, digests and
        encodings — are untouched.  Returns the number of cons entries
        dropped.
        """
        before = len(self._cons)
        fresh: dict = {}
        for shape in keep:
            fresh[shape] = shape
        self._cons = fresh
        self._cons_floor = len(fresh)
        self._row_of.clear()
        self.arena.drop_cons_cache()
        dropped = max(0, before - len(fresh))
        self.cons_pruned += dropped
        return dropped

    def cons_prune_due(self, floor: int = 4096) -> bool:
        """Whether the subtree cons table has grown enough (doubled since
        the last prune, and past *floor*) to be worth rebuilding."""
        return len(self._cons) > max(floor, 2 * self._cons_floor)

    def lookup(self, shape: Shape) -> Optional[StateId]:
        """The id of *shape* if it is resident, else ``None`` (the resident
        tier only; ``state_id`` is the store-consulting entry point)."""
        row = self.arena.find_cons(shape)
        if row is None:
            return None
        return self._ids.get(row)

    def shape_of(self, state_id: StateId) -> Shape:
        """The shape interned under *state_id* (restored from the store when
        not resident)."""
        row = self._shapes.get(state_id)
        if row is not None:
            self._shapes.move_to_end(state_id)
            return self.arena.cons_of(row)
        if self._store is not None and 0 <= state_id < self._next_id:
            scope = self._kv_scope_bytes()
            if scope is not None:
                encoded = self._kv.get("shapes", b"r" + scope + b"%d" % state_id)
                if encoded is not None:
                    self.kv_row_hits += 1
                    return self._make_resident(state_id, decode_shape_binary(encoded))
            stored = self._store.get_shape(state_id)
            if stored is not None:
                shape = self._make_resident(state_id, stored)
                self._kv_publish_row(state_id, self._shapes[state_id])
                return shape
        raise IndexError(
            f"state id {state_id} is not interned (and not in the backing store)"
        )

    def stable_hash_of(self, state_id: StateId) -> int:
        """The :func:`~repro.io.serialization.stable_shape_hash` of the shape
        interned under *state_id*, served from the arena row's cached digest
        (restoring the row from the store when not resident)."""
        row = self._shapes.get(state_id)
        if row is None:
            self.shape_of(state_id)  # restores the row resident
            row = self._shapes[state_id]
        else:
            self._shapes.move_to_end(state_id)
        return self.arena.stable_hash(row)

    @property
    def resident(self) -> int:
        """How many full-state shapes are resident right now."""
        return len(self._shapes)

    @property
    def states_restored_distinct(self) -> int:
        """Distinct persisted rows restored so far (eviction/re-restore
        cycles count once)."""
        return len(self._restored_ids)

    def __len__(self) -> int:
        """Assigned ids — resident or not — exactly as before partial
        hydration existed."""
        return self._next_id

    def stats(self) -> dict:
        """Counter snapshot for :class:`AnalysisResult` stats."""
        return {
            "interned_states": self._next_id,
            "interned_subtrees": len(self._cons),
            "states_resident": len(self._shapes),
            "state_hits": self.state_hits,
            "state_misses": self.state_misses,
            "cons_hits": self.cons_hits,
            "cons_misses": self.cons_misses,
            "states_restored": self.states_restored,
            "states_restored_distinct": len(self._restored_ids),
            "states_evicted": self.states_evicted,
            "cons_pruned": self.cons_pruned,
            "store_id_lookups": self.store_id_lookups,
            **self.arena.stats(),
        }


class IncrementalShaper:
    """Computes successor shapes incrementally from per-state shape maps."""

    def __init__(self, interner: ShapeInterner) -> None:
        self._interner = interner
        self.nodes_rehashed = 0  # shape rebuilds actually performed
        self.nodes_full_equivalent = 0  # what full per-successor walks would cost

    def full_map(self, tree: LabelledTree) -> dict[int, Shape]:
        """``node_id -> consed subtree shape`` for every node of *tree*."""
        cons = self._interner.cons
        shape_map: dict[int, Shape] = {}

        def build(node: Node) -> Shape:
            children = sorted(build(child) for child in node.children)
            shape = cons((node.label, tuple(children)))
            shape_map[node.node_id] = shape
            return shape

        build(tree.root)
        self.nodes_rehashed += tree.size()
        self.nodes_full_equivalent += tree.size()
        return shape_map

    def successor(
        self,
        instance: Instance,
        shape_map: dict[int, Shape],
        update: Update,
    ) -> tuple[Instance, dict[int, Shape], Shape]:
        """Apply *update* to a copy of *instance* and derive the successor's
        shape map from the parent's.

        Returns ``(successor instance, successor shape map, root shape)``.
        Only the nodes on the path from the updated leaf to the root are
        re-hashed; every untouched subtree reuses the parent's consed shape.
        """
        successor = instance.copy()
        new_map = dict(shape_map)
        if isinstance(update, Addition):
            leaf = successor.add_field(successor.node(update.parent_id), update.label)
            new_map[leaf.node_id] = self._interner.cons((update.label, ()))
            dirty = leaf.parent
            self.nodes_rehashed += 1
        else:
            node = successor.node(update.node_id)
            dirty = node.parent
            successor.remove_field(node)
            del new_map[update.node_id]
        cons = self._interner.cons
        while dirty is not None:
            children = sorted(new_map[child.node_id] for child in dirty.children)
            new_map[dirty.node_id] = cons((dirty.label, tuple(children)))
            self.nodes_rehashed += 1
            dirty = dirty.parent
        self.nodes_full_equivalent += successor.size()
        return successor, new_map, new_map[successor.root.node_id]

    def successor_shape(
        self,
        instance: Instance,
        shape_map: dict[int, Shape],
        update: Update,
    ) -> Shape:
        """The root shape of ``apply(update)`` *without* materialising the
        successor instance.

        Equivalent to ``successor(...)[2]`` — the same consed shapes, built
        by the same root-to-update-path rebuild — but skipping the deep copy
        of the instance and the successor shape map.  The frontier workers
        use it: since PR 4 they ship shape-table references instead of
        successor representatives, so the copy :meth:`successor` performs
        would be thrown away per candidate.
        """
        cons = self._interner.cons
        if isinstance(update, Addition):
            dirty = instance.node(update.parent_id)
            extra: Optional[Shape] = cons((update.label, ()))
            removed_id = None
            self.nodes_rehashed += 1
        else:
            node = instance.node(update.node_id)
            dirty = node.parent
            extra = None
            removed_id = update.node_id
        new_shape: Optional[Shape] = None
        rebuilt = dirty
        while dirty is not None:
            children = [
                new_shape if child is rebuilt else shape_map[child.node_id]
                for child in dirty.children
                if child.node_id != removed_id
            ]
            if extra is not None:
                children.append(extra)
                extra = None
            new_shape = cons((dirty.label, tuple(sorted(children))))
            self.nodes_rehashed += 1
            rebuilt = dirty
            dirty = dirty.parent
        self.nodes_full_equivalent += instance.size() + (1 if removed_id is None else -1)
        assert new_shape is not None  # the dirty node always exists
        return new_shape

    def stats(self) -> dict:
        """Counter snapshot for :class:`AnalysisResult` stats."""
        saved = self.nodes_full_equivalent - self.nodes_rehashed
        return {
            "nodes_rehashed": self.nodes_rehashed,
            "nodes_full_walk_equivalent": self.nodes_full_equivalent,
            "nodes_saved": saved,
        }


def map_isomorphism(source: Node, target: Node) -> dict[int, int]:
    """An explicit isomorphism (``source node_id -> target node_id``) between
    the isomorphic trees rooted at *source* and *target*.

    Children are matched by sorted subtree shape; within a group of
    same-shape siblings any pairing is an isomorphism (they are related by an
    automorphism), so the first consistent one is returned.

    Raises:
        ValueError: when the trees are not isomorphic.
    """
    if _subtree_shape(source) != _subtree_shape(target):
        raise ValueError("cannot map between non-isomorphic trees")
    mapping: dict[int, int] = {}
    stack = [(source, target)]
    while stack:
        from_node, to_node = stack.pop()
        mapping[from_node.node_id] = to_node.node_id
        stack.extend(
            zip(
                sorted(from_node.children, key=_subtree_shape),
                sorted(to_node.children, key=_subtree_shape),
            )
        )
    return mapping
