"""The unified exploration engine.

:class:`ExplorationEngine` subsumes the two legacy explorers of
:mod:`repro.analysis.statespace` behind one stateful object that every
decision procedure can share:

* **state identity** — instance shapes are hash-consed by a
  :class:`~repro.engine.interning.ShapeInterner`, so bounded-exploration state
  keys are O(1)-comparable ints and successor shapes are derived incrementally
  from the parent shape plus the applied update
  (:class:`~repro.engine.interning.IncrementalShaper`);

* **guard memoization** — access-rule and completion-formula evaluations go
  through a :class:`~repro.engine.guards.GuardCache` shared by every
  exploration the engine runs, so a semi-soundness analysis (one reachability
  sweep plus one completability check per suspicious state) evaluates each
  guard once instead of once per sweep;

* **canonical representatives** — each interned state keeps one
  representative instance; expansions are memoized against it, so re-visiting
  a state in a later exploration replays the cached successor list without
  touching a single formula;

* **pluggable frontiers** — exploration order is delegated to
  :mod:`repro.engine.strategies` (BFS / DFS / completion-guided best-first).

Explorations return an :class:`EngineGraph` (int-keyed); the legacy
:class:`~repro.analysis.statespace.StateGraph` API is available through
:meth:`EngineGraph.to_state_graph`, which the compatibility shims in
:mod:`repro.analysis.statespace` use.

Witness runs deserve a note: because representatives are canonical (shared
across explorations), the update recorded on a graph edge refers to node ids
of the *source state's representative*, which need not coincide with the ids
arising while replaying a run from the caller's start instance.
:meth:`EngineGraph.run_to` therefore translates each update through an
explicit isomorphism (:func:`~repro.engine.interning.map_isomorphism`) before
appending it, which keeps every extracted run replayable — and valid, since
guard values are isomorphism-invariant.

**Persistence and resume.**  The engine's working set can be backed by a
:class:`~repro.engine.store.StateStore` (``store=``).  With a persistent
backend (:class:`~repro.engine.store.SqliteStore`) every interned shape,
canonical representative (node ids included) and guard evaluation is written
through in batches, and :meth:`ExplorationEngine.explore` checkpoints its
frontier every ``checkpoint_every`` expansions — so an interrupted
exploration (``KeyboardInterrupt`` or an explicit ``step_limit``) can be
picked up by a *fresh process* with ``explore(resume=True)`` and finish with
exactly the states, transitions and truncation flags of an uninterrupted
run.  The differential suite in ``tests/engine/test_store_parity.py`` pins
that equivalence against the in-memory engine for every benchgen family.

**Bounded residency.**  Attaching to a populated store hydrates lazily —
only guard values load eagerly; shapes are pulled in on first touch through
the interner's store fallback, and representatives on first use — so memory
tracks what a run explores, not what the store holds.  A ``resident_budget``
additionally caps the resident working set (representatives, shape maps,
interned root shapes, memoized expansions), evicting least-recently-accessed
entries between expansions; everything evicted reloads or deterministically
recomputes from the store, so bounded runs are bit-identical to unbounded
ones (``tests/engine/test_residency.py``).  Note that a budget-bounded
graph stays store-dependent: keep the store open while reading shapes or
representatives off it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, Optional

from repro.core.canonical import canonical_depth1_state
from repro.core.guarded_form import Addition, Deletion, GuardedForm, Update
from repro.core.instance import Instance
from repro.core.runs import Run
from repro.core.tree import Shape
from repro.engine.guards import GuardCache
from repro.engine.interning import (
    IncrementalShaper,
    ShapeInterner,
    StateId,
    map_isomorphism,
)
from repro.engine.store import InMemoryStore, StateStore, exploration_run_key
from repro.engine.strategies import FrontierStrategy, completion_distance, make_strategy
from repro.exceptions import AnalysisError, ExplorationInterrupted
from repro.io.serialization import (
    decode_instance_with_ids,
    decode_update,
    encode_instance_with_ids,
    encode_update,
)
from repro.obs import default_telemetry

#: A memoized successor candidate:
#: (update, successor state id, is_addition, successor size, sibling copies
#: of the added label under the target node before the addition).
_Candidate = tuple


def enumerate_expansion(
    instance: Instance,
    shape_map: dict,
    schema,
    guards: GuardCache,
    state_id: StateId,
    make_candidate: Callable,
) -> list:
    """Enumerate the successor candidates of one state, in canonical order.

    This is the *single* definition of the engine's expansion semantics —
    node traversal order, guard queries, candidate order — shared between the
    serial :meth:`ExplorationEngine._expand` and the frontier worker
    processes of :mod:`repro.engine.workers`.  The two callers differ only in
    ``make_candidate(update, is_addition, successor size, copies before)``:
    the serial engine interns the successor and records its state id, a
    worker encodes the successor for the coordinator to intern later.
    Keeping the enumeration in one place is what structurally guarantees the
    serial-vs-parallel bit-identity the differential suite pins.
    """
    size = instance.size()
    candidates: list = []
    for node in instance.nodes():
        node_shape = shape_map[node.node_id]
        schema_node = schema.node_at(node.label_path())
        for schema_child in schema_node.children:
            label = schema_child.label
            if guards.addition_allowed(state_id, node, label, node_shape):
                update: Update = Addition(node.node_id, label)
                copies_before = len(node.children_with_label(label))
                candidates.append(make_candidate(update, True, size + 1, copies_before))
        if not node.is_root() and node.is_leaf():
            if guards.deletion_allowed(state_id, node, shape_map[node.parent.node_id]):
                candidates.append(make_candidate(Deletion(node.node_id), False, size - 1, 0))
    return candidates


class EngineGraph:
    """The result of one bounded exploration: an int-keyed state graph.

    States are :data:`~repro.engine.interning.StateId` ints interned by the
    owning engine; representative instances, shapes and completion values are
    resolved through the engine so that explorations share them.
    """

    def __init__(
        self,
        engine: "ExplorationEngine",
        guarded_form: GuardedForm,
        initial_id: StateId,
        start_instance: Instance,
    ) -> None:
        self.engine = engine
        self.guarded_form = guarded_form
        self.initial_id = initial_id
        self.start_instance = start_instance
        self._states: set = {initial_id}
        self.transitions: dict = {}  # StateId -> list[(Update, StateId)]
        self.parents: dict = {}  # StateId -> (StateId, Update)
        self.truncated_by_states = False
        self.truncated_by_size = False
        self.truncated_by_copies = False
        self.skipped_successors = 0
        #: Whether the exploration returned early because ``stop_on_complete``
        #: found a complete state (distinct from truncation: nothing was
        #: *skipped*, the remaining frontier was simply not needed).
        self.stopped_on_complete = False
        #: Whether this graph continued from a persisted checkpoint.
        self.resumed = False

    # ------------------------------------------------------------------ #
    # state access
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> set:
        """The explored state ids (a fresh set, like the legacy graphs)."""
        return set(self._states)

    @property
    def truncated(self) -> bool:
        """Whether any state or successor was skipped for any reason."""
        return self.truncated_by_states or self.truncated_by_size or self.truncated_by_copies

    def shape_of(self, state_id: StateId) -> Shape:
        """The interned shape of a state."""
        return self.engine.interner.shape_of(state_id)

    def representative(self, state_id: StateId) -> Instance:
        """The canonical representative instance (shared; do not mutate)."""
        return self.engine.representative(state_id)

    def instance_of(self, state_id: StateId) -> Instance:
        """A private copy of the representative instance of a state."""
        return self.engine.representative(state_id).copy()

    def iter_states(self) -> Iterator[tuple[StateId, Instance]]:
        """Iterate over (state id, representative) pairs."""
        for state_id in self._states:
            yield state_id, self.engine.representative(state_id)

    # ------------------------------------------------------------------ #
    # graph queries
    # ------------------------------------------------------------------ #

    def successors(self, state_id: StateId) -> list:
        """Outgoing ``(update, target id)`` edges of a state."""
        return self.transitions.get(state_id, [])

    def satisfying_states(self, predicate: Callable[[Instance], bool]) -> set:
        """States whose representative satisfies *predicate*."""
        return {
            state_id
            for state_id in self._states
            if predicate(self.engine.representative(state_id))
        }

    def complete_states(self) -> set:
        """States satisfying the completion formula (guard-cache backed)."""
        return self.engine.complete_ids(self)

    def backward_closure(self, targets: set) -> set:
        """States from which some state in *targets* is reachable within the
        explored graph."""
        predecessors: dict = {}
        for source, edges in self.transitions.items():
            for _, target in edges:
                predecessors.setdefault(target, set()).add(source)
        closure = set(targets)
        frontier = list(targets)
        while frontier:
            state = frontier.pop()
            for predecessor in predecessors.get(state, ()):
                if predecessor not in closure:
                    closure.add(predecessor)
                    frontier.append(predecessor)
        return closure

    # ------------------------------------------------------------------ #
    # witnesses
    # ------------------------------------------------------------------ #

    def run_to(self, target_id: StateId) -> Run:
        """A run from the exploration's start instance to *target_id*.

        The discovery edges along the parent chain reference node ids of the
        canonical representatives; each update is translated through an
        isomorphism onto the replayed instance, so the returned run is valid
        on the caller's start instance.
        """
        chain: list = []
        current = target_id
        while current != self.initial_id:
            parent, update = self.parents[current]
            chain.append((parent, update))
            current = parent
        chain.reverse()
        run = Run(self.guarded_form, [], start=self.start_instance.copy())
        replayed = self.start_instance.copy()
        engine = self.engine
        budget = engine.resident_budget
        for parent_id, update in chain:
            canonical = engine.representative(parent_id)
            iso = map_isomorphism(canonical.root, replayed.root)
            translated: Update
            if isinstance(update, Addition):
                translated = Addition(iso[update.parent_id], update.label)
            else:
                translated = Deletion(iso[update.node_id])
            run.updates.append(translated)
            replayed = self.guarded_form.apply_unchecked(replayed, translated, in_place=True)
            # each parent representative is needed exactly once here; a long
            # witness chain must not blow the resident budget
            if budget is not None and len(engine._reps) > budget:
                engine._enforce_budget()
        return run

    # ------------------------------------------------------------------ #
    # legacy view
    # ------------------------------------------------------------------ #

    def to_state_graph(self):
        """A legacy :class:`~repro.analysis.statespace.StateGraph` view.

        Keys are the interned shapes, so the view is a drop-in replacement for
        the output of the historic ``explore_bounded``; its ``run_to``
        delegates to :meth:`run_to` for isomorphism-safe witness extraction.
        """
        cls = _engine_state_graph_class()
        shape_of = self.engine.interner.shape_of
        graph = cls(
            guarded_form=self.guarded_form,
            initial_key=shape_of(self.initial_id),
            representatives={
                shape_of(state_id): self.engine.representative(state_id).copy()
                for state_id in self._states
            },
            transitions={
                shape_of(source): [(update, shape_of(target)) for update, target in edges]
                for source, edges in self.transitions.items()
            },
            parents={
                shape_of(child): (shape_of(parent), update)
                for child, (parent, update) in self.parents.items()
            },
            truncated_by_states=self.truncated_by_states,
            truncated_by_size=self.truncated_by_size,
            truncated_by_copies=self.truncated_by_copies,
            skipped_successors=self.skipped_successors,
        )
        graph._engine_graph = self
        graph._shape_to_id = {shape_of(state_id): state_id for state_id in self._states}
        return graph


def engine_for(
    guarded_form: GuardedForm,
    engine: Optional["ExplorationEngine"],
    frontier: Optional[str] = None,
    store: Optional[StateStore] = None,
    workers: int = 1,
    resident_budget: Optional[int] = None,
) -> "ExplorationEngine":
    """The engine to analyse *guarded_form* with: the caller's, or a fresh one.

    A *store* is only consulted when a fresh engine is built; a supplied
    engine keeps whatever store it was constructed with (and its own worker
    and residency configuration — *workers* and *resident_budget* are
    likewise ignored then).  ``workers > 1`` builds a
    :class:`~repro.engine.parallel.ParallelExplorationEngine`; the caller
    that triggered the construction is responsible for calling
    :meth:`ExplorationEngine.shutdown_workers` when done.

    Raises:
        AnalysisError: when the supplied engine was built for a different
            guarded form — its interned states, memoized expansions and
            completion cache would silently answer for the wrong form.
    """
    if engine is not None:
        if engine.guarded_form is not guarded_form:
            raise AnalysisError(
                "the supplied exploration engine is bound to guarded form "
                f"{engine.guarded_form.name!r}, not {guarded_form.name!r}; "
                "engines cache per-form state and cannot be shared across forms"
            )
        return engine
    if workers and workers > 1:
        from repro.engine.parallel import ParallelExplorationEngine

        return ParallelExplorationEngine(
            guarded_form,
            strategy=frontier or "bfs",
            store=store,
            workers=workers,
            resident_budget=resident_budget,
        )
    return ExplorationEngine(
        guarded_form,
        strategy=frontier or "bfs",
        store=store,
        resident_budget=resident_budget,
    )


_ENGINE_STATE_GRAPH_CLASS = None


def _engine_state_graph_class():
    """Lazily build the StateGraph subclass (avoids an import cycle with
    :mod:`repro.analysis.statespace`, whose shims import this module)."""
    global _ENGINE_STATE_GRAPH_CLASS
    if _ENGINE_STATE_GRAPH_CLASS is None:
        from repro.analysis.statespace import StateGraph

        class EngineStateGraph(StateGraph):
            """A legacy-shaped StateGraph whose witness extraction goes
            through the engine's isomorphism-translating ``run_to``."""

            _engine_graph: EngineGraph
            _shape_to_id: dict

            def run_to(self, key) -> Run:
                return self._engine_graph.run_to(self._shape_to_id[key])

        _ENGINE_STATE_GRAPH_CLASS = EngineStateGraph
    return _ENGINE_STATE_GRAPH_CLASS


class ExplorationEngine:
    """A reusable exploration engine for one guarded form.

    The engine owns the shape interner, guard cache, canonical state
    representatives and memoized expansions; every exploration it runs —
    bounded or depth-1, from any start instance, under any limits and any
    frontier strategy — shares them.  Analyses that perform several
    explorations of the same form (semi-soundness, CLI ``analyze``) should
    therefore construct one engine and reuse it.
    """

    def __init__(
        self,
        guarded_form: GuardedForm,
        limits=None,
        strategy: str = "bfs",
        store: Optional[StateStore] = None,
        checkpoint_every: int = 1000,
        resident_budget: Optional[int] = None,
        telemetry=None,
    ) -> None:
        self.guarded_form = guarded_form
        self.strategy = strategy
        self._limits = limits
        #: Telemetry recorder (``repro.obs``).  ``None`` resolves through
        #: :func:`~repro.obs.default_telemetry` — the innermost
        #: ``use_telemetry`` context, then ``REPRO_TRACE``, then the no-op
        #: default — so dispatcher-built engines inherit the CLI's recorder.
        self.telemetry = telemetry if telemetry is not None else default_telemetry()
        self.store = store if store is not None else InMemoryStore()
        self.store.telemetry = self.telemetry
        self.store.attach(guarded_form)
        store_cadence = getattr(self.store, "checkpoint_every", None)
        self.checkpoint_every = max(
            1, store_cadence if store_cadence is not None else checkpoint_every
        )
        if resident_budget is not None:
            if resident_budget < 1:
                raise AnalysisError("resident_budget must be a positive integer")
            if not self.store.persistent:
                raise AnalysisError(
                    "resident_budget needs a persistent store: without one "
                    "there is nowhere to evict resident state to"
                )
        #: Soft cap on resident per-state structures (representatives, shape
        #: maps, interned full-state shapes, memoized expansions).  Enforced
        #: between state expansions on a store-backed engine; ``None`` (the
        #: default) keeps everything resident.  Results are bit-identical
        #: either way — eviction only trades memory for store reads.
        self.resident_budget = resident_budget
        backing = self.store if self.store.persistent else None
        self.interner = ShapeInterner(store=backing)
        self.shaper = IncrementalShaper(self.interner)
        self.guards = GuardCache(guarded_form, store=backing, telemetry=self.telemetry)
        #: StateId -> resident representative Instance, in recency-of-access
        #: order (front = coldest; eviction pops from the front).
        self._reps: OrderedDict = OrderedDict()
        self._shape_maps: dict = {}  # StateId -> {node_id: consed subtree Shape}
        self._expansions: dict = {}  # StateId -> (candidates, guard queries)
        self._d1_expansions: dict = {}  # frozenset -> (moves, guard queries)
        self._scores: dict = {}  # state key -> completion_distance
        self.expansions_computed = 0
        self.expansions_reused = 0
        self.heuristic_evaluations = 0
        self.explorations_resumed = 0
        self.reps_evicted = 0
        self.expansions_evicted = 0
        #: Shape rows the store held when this engine hydrated; the basis
        #: for the ``hydration_rows_skipped`` statistic.
        self._persisted_rows_at_attach = 0
        #: Whether the engine bound itself to the store's persisted state.
        #: Hydration is deferred to the first exploration and performed at
        #: most once per engine: repeated ``explore()`` calls against the
        #: same engine must not re-scan (and can never double-restore) the
        #: store's guard table.
        self._hydrated = backing is None

    def _hydrate(self) -> None:
        """Bind the engine to its store's persisted state (lazily, once).

        Guard rows are loaded eagerly but binary rows are kept **undecoded**
        until a key is actually probed
        (:meth:`~repro.engine.guards.GuardCache.restore_raw`) — the binary
        encoding is canonical, so probing encodes the asked-for key instead
        of decoding the whole table.
        Shapes are **not** bulk-restored: the interner is told the persisted
        id range and row count (:meth:`ShapeInterner.bind_persisted`), and
        individual rows are pulled in on first touch through the two-tier
        fallback, so attaching to a large store costs memory proportional to
        what the run actually explores.  Representatives are likewise fetched
        lazily by :meth:`representative`.

        The ``_hydrated`` flag is only set after every step succeeded: an
        exception mid-hydration (corrupt row, decode error, Ctrl-C) leaves
        the engine un-hydrated, so the next exploration retries — and fails
        again — instead of silently exploring against a truncated table
        (every restore step is idempotent, so a retry after partial progress
        is safe).
        """
        if self._hydrated:
            return
        with self.telemetry.span("engine.hydrate"):
            raw_rows = self.store.load_guards_raw()
            if raw_rows is not None:
                # binary rows stay undecoded until a key is probed (the decode
                # used to dominate large-store attach); JSON rows still decode —
                # and surface corruption — here
                for row, value in raw_rows:
                    self.guards.restore_raw(row, value)
            else:
                for key, value in self.store.load_guards():
                    self.guards.restore(key, value)
            max_id = self.store.max_state_id()
            if max_id is not None:
                rows = self.store.shape_row_count()
                self.interner.bind_persisted(max_id, rows)
                self._persisted_rows_at_attach = rows
        self._hydrated = True

    # ------------------------------------------------------------------ #
    # registry
    # ------------------------------------------------------------------ #

    def representative(self, state_id: StateId) -> Instance:
        """The canonical representative instance of a state (shared).

        Served from the resident dict (refreshing its recency); on a
        store-backed engine, states not resident (hydrated lazily after a
        resume, or evicted) are decoded from the store with their original
        node ids.
        """
        rep = self._reps.get(state_id)
        if rep is None:
            blob = self.store.get_representative(state_id)
            if blob is None:
                raise AnalysisError(
                    f"state {state_id} has no canonical representative (not "
                    "registered by this engine and absent from its store)"
                )
            rep = decode_instance_with_ids(blob, self.guarded_form.schema)
            self._reps[state_id] = rep
        else:
            self._reps.move_to_end(state_id)
        return rep

    def evict_representatives(self, keep: int = 0) -> int:
        """Drop resident representatives (and their shape maps) down to the
        *keep* most recently accessed.

        The policy is recency of access, not id order: the states most
        likely to be touched again are the ones an in-flight exploration
        accessed last (its frontier), while the lowest ids are the oldest,
        coldest states.  Only meaningful on a store-backed engine, where
        evicted states are transparently reloaded on demand; returns the
        number evicted.  The property suite uses this to show eviction never
        changes interner ids.
        """
        if not self.store.persistent:
            return 0
        evicted = 0
        while len(self._reps) > keep:
            state_id, _ = self._reps.popitem(last=False)
            self._shape_maps.pop(state_id, None)
            evicted += 1
        self.reps_evicted += evicted
        return evicted

    def _enforce_budget(self) -> None:
        """Evict least-recently-used resident state down to the budget.

        Called between whole state expansions, never mid-expansion, so
        nothing the current expansion still holds can disappear under it.
        Everything evicted is transparently recoverable: representatives and
        full-state shapes reload from the store, shape maps and memoized
        expansions are recomputed deterministically (same representative,
        same cached guard values, same store-stable ids), so bounded-budget
        runs stay bit-identical to unbounded ones — the residency suite pins
        exactly that.
        """
        budget = self.resident_budget
        if budget is None or not self.store.persistent:
            return
        obs = self.telemetry
        # only an actual sweep (resident set over budget) earns a span;
        # the within-budget probe stays uninstrumented — it runs between
        # every pair of expansions
        sweeping = obs.enabled and len(self._reps) > budget
        sweep_started = obs.now() if sweeping else 0.0
        evicted_before = self.reps_evicted
        while len(self._reps) > budget:
            state_id, _ = self._reps.popitem(last=False)
            self._shape_maps.pop(state_id, None)
            if self._expansions.pop(state_id, None) is not None:
                self.expansions_evicted += 1
            self.reps_evicted += 1
        self.interner.evict_states(keep=budget)
        if sweeping:
            obs.metrics.counter("eviction_sweeps").inc()
            obs.metrics.histogram("eviction_sweep_seconds").observe(
                obs.end_span(
                    "engine.evict", sweep_started, evicted=self.reps_evicted - evicted_before
                )
            )
        # the subtree cons table grows with every distinct subtree ever seen;
        # rebuild it from the resident tier when it has doubled since the
        # last prune (cheap len check per enforcement, O(resident) to prune)
        if self.interner.cons_prune_due():
            keep: list = []
            for shape_map in self._shape_maps.values():
                keep.extend(shape_map.values())
            self.interner.prune_cons(keep)

    def _register(self, instance: Instance, shape_map=None) -> StateId:
        if shape_map is None:
            shape_map = self.shaper.full_map(instance)
        shape = shape_map[instance.root.node_id]
        state_id, is_new = self.interner.state_id(shape)
        if is_new:
            self._reps[state_id] = instance
            self._shape_maps[state_id] = shape_map
            if self.store.persistent:
                self.store.put_representative(state_id, encode_instance_with_ids(instance))
        return state_id

    def _shape_map_of(self, state_id: StateId) -> dict:
        """The node->shape map of a state's representative (rebuilt on demand
        for states reloaded from the store)."""
        shape_map = self._shape_maps.get(state_id)
        if shape_map is None:
            shape_map = self.shaper.full_map(self.representative(state_id))
            self._shape_maps[state_id] = shape_map
        return shape_map

    def _default_limits(self):
        if self._limits is None:
            from repro.analysis.results import ExplorationLimits

            self._limits = ExplorationLimits()
        return self._limits

    # ------------------------------------------------------------------ #
    # frontier construction
    # ------------------------------------------------------------------ #

    def _score_bounded(self, state_id: StateId) -> int:
        score = self._scores.get(state_id)
        if score is None:
            score = completion_distance(
                self.representative(state_id).root, self.guarded_form.completion
            )
            self._scores[state_id] = score
            self.heuristic_evaluations += 1
        return score

    def _score_depth1(self, state: frozenset) -> int:
        score = self._scores.get(state)
        if score is None:
            from repro.core.canonical import depth1_state_to_instance

            materialised = depth1_state_to_instance(self.guarded_form.schema, state)
            score = completion_distance(materialised.root, self.guarded_form.completion)
            self._scores[state] = score
            self.heuristic_evaluations += 1
        return score

    def _make_frontier(self, strategy: Optional[str], depth1: bool = False) -> FrontierStrategy:
        name = strategy or self.strategy
        scorer = self._score_depth1 if depth1 else self._score_bounded
        return make_strategy(name, scorer)

    # ------------------------------------------------------------------ #
    # bounded exploration (arbitrary depth, isomorphism dedup)
    # ------------------------------------------------------------------ #

    def explore(
        self,
        start: Optional[Instance] = None,
        limits=None,
        strategy: Optional[str] = None,
        *,
        stop_on_complete: bool = False,
        resume: bool = False,
        step_limit: Optional[int] = None,
    ) -> EngineGraph:
        """Explore the reachable instances of the guarded form.

        States are deduplicated by interned shape; the supplied (or the
        engine's default) :class:`~repro.analysis.results.ExplorationLimits`
        bound the search exactly as in the legacy explorer, and the graph's
        truncation flags record which limit was hit.

        Args:
            stop_on_complete: return as soon as a state satisfying the
                completion formula is discovered, instead of exhausting the
                budget (the graph's ``stopped_on_complete`` flag records
                this).  The default — off — explores exhaustively, which the
                parity suites pin.
            resume: continue from the checkpoint a previous identical
                exploration (same start shape, limits, strategy and
                early-exit policy) left in the engine's store; ignored when
                no such checkpoint exists.
            step_limit: expand at most this many states in this call, then
                checkpoint and raise
                :class:`~repro.exceptions.ExplorationInterrupted`.

        A ``KeyboardInterrupt`` during the exploration also checkpoints
        before propagating, so a Ctrl-C'd CLI ``analyze --store`` run can be
        picked up with ``--resume``.
        """
        self._hydrate()
        limits = limits if limits is not None else self._default_limits()
        form = self.guarded_form
        start_instance = (start if start is not None else form.initial_instance()).copy()
        strategy_name = strategy or self.strategy
        run_key = exploration_run_key(
            start_instance.shape(), limits, strategy_name, stop_on_complete
        )
        checkpoint = self.store.load_checkpoint(run_key) if resume else None
        if checkpoint is not None:
            graph, frontier = self._restore_exploration(checkpoint, start_instance, strategy)
            self.explorations_resumed += 1
        else:
            initial_id = self._register(start_instance)
            graph = EngineGraph(self, form, initial_id, start_instance)
            frontier = self._make_frontier(strategy)
            frontier.push(initial_id)
            if stop_on_complete and self.guards.completion(
                initial_id, self.representative(initial_id).root
            ):
                graph.stopped_on_complete = True
                self._finish_exploration(run_key, graph)
                return graph
        if checkpoint is not None and checkpoint.get("stopped_on_complete"):
            return graph
        states = graph._states
        expanded_this_call = 0
        in_flight: Optional[StateId] = None
        obs = self.telemetry
        obs_enabled = obs.enabled
        explore_started = obs.now()
        try:
            while frontier:
                if step_limit is not None and expanded_this_call >= step_limit:
                    self._save_checkpoint(run_key, graph, frontier)
                    raise ExplorationInterrupted(
                        f"exploration paused after {expanded_this_call} expansions "
                        f"({len(states)} states, {len(frontier)} frontier entries); "
                        "resume with explore(resume=True)",
                        states_explored=len(states),
                        frontier_size=len(frontier),
                    )
                state_id = frontier.pop()
                if state_id in graph.transitions:
                    continue  # an interrupted commit can leave a duplicate queued
                in_flight = state_id
                # the expansion accumulates into locals and commits to the
                # graph at the end, so a KeyboardInterrupt mid-expansion
                # leaves the graph at a clean state boundary (the handler
                # requeues the popped state)
                edges: list = []
                discovered: list = []
                fresh: set = set()
                truncated_by_size = truncated_by_states = truncated_by_copies = False
                skipped = 0
                found_complete = False
                for update, succ_id, is_addition, succ_size, copies_before in self._expand_from(
                    state_id, frontier
                ):
                    if is_addition:
                        if not limits.allows_instance_size(succ_size):
                            truncated_by_size = True
                            skipped += 1
                            continue
                        if (
                            limits.max_sibling_copies is not None
                            and copies_before >= limits.max_sibling_copies
                        ):
                            truncated_by_copies = True
                            skipped += 1
                            continue
                    if succ_id not in states and succ_id not in fresh:
                        if len(states) + len(fresh) >= limits.max_states:
                            truncated_by_states = True
                            skipped += 1
                            continue
                        fresh.add(succ_id)
                        discovered.append((succ_id, update))
                        if stop_on_complete and self.guards.completion(
                            succ_id, self.representative(succ_id).root
                        ):
                            found_complete = True
                    edges.append((update, succ_id))
                # commit order matters under a mid-commit interrupt: a
                # successor entered into `states` last is either fully
                # registered or still discoverable by the re-expansion
                for succ_id, update in discovered:
                    graph.parents[succ_id] = (state_id, update)
                    frontier.push(succ_id)
                    states.add(succ_id)
                graph.truncated_by_size |= truncated_by_size
                graph.truncated_by_states |= truncated_by_states
                graph.truncated_by_copies |= truncated_by_copies
                graph.skipped_successors += skipped
                graph.transitions[state_id] = edges
                in_flight = None
                expanded_this_call += 1
                if self.resident_budget is not None:
                    self._enforce_budget()
                if found_complete:
                    graph.stopped_on_complete = True
                    break
                if expanded_this_call % self.checkpoint_every == 0:
                    if self.store.persistent:
                        self._save_checkpoint(run_key, graph, frontier)
                    if obs_enabled:
                        # periodic residency sample: eviction churn shows up
                        # as a time series, not just an end-of-run peak
                        obs.sample_rss(
                            reps_resident=len(self._reps),
                            states_resident=self.interner.resident,
                        )
        except KeyboardInterrupt:
            if in_flight is not None and in_flight not in graph.transitions:
                frontier.requeue(in_flight)  # re-expand it first on resume
            self._save_checkpoint(run_key, graph, frontier)
            self.store.flush()
            raise
        finally:
            if obs_enabled:
                obs.end_span(
                    "engine.explore",
                    explore_started,
                    strategy=strategy_name,
                    states=len(states),
                    expanded=expanded_this_call,
                )
                obs.sample_rss(
                    reps_resident=len(self._reps),
                    states_resident=self.interner.resident,
                )
                drained = self.guards.take_eval_seconds()
                if drained:
                    obs.metrics.counter("guard_eval_seconds").inc(drained)
        self._finish_exploration(run_key, graph)
        return graph

    def _expand_from(self, state_id: StateId, frontier) -> list:
        """Expansion hook giving subclasses sight of the live frontier.

        The serial engine expands one state at a time;
        :class:`~repro.engine.parallel.ParallelExplorationEngine` overrides
        this to prefetch candidate expansions for the whole pending frontier
        on worker processes before delegating to :meth:`_expand`.
        """
        del frontier
        return self._expand(state_id)

    def _expand(self, state_id: StateId) -> list:
        """All successor candidates of a state, memoized across explorations.

        Candidates are *unfiltered*: exploration limits are applied by the
        caller, so the memo stays valid whatever limits a later exploration
        uses.
        """
        memo = self._expansions.get(state_id)
        if memo is not None:
            candidates, guard_queries = memo
            self.guards.credit_reuse(guard_queries)
            self.expansions_reused += 1
            return candidates
        instance = self.representative(state_id)
        shape_map = self._shape_map_of(state_id)
        guards = self.guards
        queries_before = guards.hits + guards.misses

        def candidate(update: Update, is_addition: bool, succ_size: int, copies: int) -> tuple:
            return (
                update,
                self._successor_id(instance, shape_map, update),
                is_addition,
                succ_size,
                copies,
            )

        candidates = enumerate_expansion(
            instance, shape_map, self.guarded_form.schema, guards, state_id, candidate
        )
        self._expansions[state_id] = (candidates, guards.hits + guards.misses - queries_before)
        self.expansions_computed += 1
        return candidates

    def _successor_id(self, instance: Instance, shape_map: dict, update: Update) -> StateId:
        # Most candidates land on an already-interned state, so derive the
        # root shape alone first (no instance copy, no successor shape map —
        # profiles showed ~19 full materialisations per genuinely new state)
        # and only materialise the representative when the id is fresh.  The
        # shaper pins successor_shape == successor()[2], and the store write
        # order (shape row, then representative) is unchanged, so ids and
        # rows stay bit-identical to the always-materialise path.
        root_shape = self.shaper.successor_shape(instance, shape_map, update)
        state_id, is_new = self.interner.state_id(root_shape)
        if is_new:
            successor, succ_map, _root = self.shaper.successor(instance, shape_map, update)
            self._reps[state_id] = successor
            self._shape_maps[state_id] = succ_map
            if self.store.persistent:
                self.store.put_representative(state_id, encode_instance_with_ids(successor))
        return state_id

    def complete_ids(self, graph: EngineGraph) -> set:
        """The states of *graph* satisfying the completion formula (cached)."""
        guards = self.guards
        budget = self.resident_budget
        complete: set = set()
        for state_id in graph.states:
            if guards.completion(state_id, self.representative(state_id).root):
                complete.add(state_id)
            # a completion sweep over a big graph would otherwise re-load
            # every evicted representative and keep it resident
            if budget is not None and len(self._reps) > budget:
                self._enforce_budget()
        return complete

    # ------------------------------------------------------------------ #
    # checkpointing (store-backed interruption and resume)
    # ------------------------------------------------------------------ #

    def _save_checkpoint(self, run_key: str, graph: EngineGraph, frontier) -> None:
        """Snapshot an in-flight exploration into the store.

        Checkpoints are only taken between whole state expansions, so the
        transitions recorded for every expanded state are complete; the
        frontier is saved in re-push order (see
        :meth:`~repro.engine.strategies.FrontierStrategy.pending`).
        """
        payload = {
            "version": 1,
            "done": not frontier,
            "initial_id": graph.initial_id,
            "start_instance": encode_instance_with_ids(graph.start_instance),
            "states": sorted(graph._states),
            "frontier": frontier.pending(),
            "transitions": [
                [source, [[encode_update(update), target] for update, target in edges]]
                for source, edges in graph.transitions.items()
            ],
            "parents": [
                [child, parent, encode_update(update)]
                for child, (parent, update) in graph.parents.items()
            ],
            "truncated_by_states": graph.truncated_by_states,
            "truncated_by_size": graph.truncated_by_size,
            "truncated_by_copies": graph.truncated_by_copies,
            "skipped_successors": graph.skipped_successors,
            "stopped_on_complete": graph.stopped_on_complete,
        }
        self.store.save_checkpoint(run_key, payload)

    def _restore_exploration(
        self, checkpoint: dict, start_instance: Instance, strategy: Optional[str]
    ) -> tuple[EngineGraph, FrontierStrategy]:
        """Rebuild the graph and frontier an interrupted exploration saved."""
        persisted_start = decode_instance_with_ids(
            checkpoint["start_instance"], self.guarded_form.schema
        )
        del start_instance  # isomorphic to the persisted one (same run key)
        graph = EngineGraph(
            self, self.guarded_form, checkpoint["initial_id"], persisted_start
        )
        graph._states = set(checkpoint["states"])
        # the checkpointed states are this run's working set: restore their
        # shapes now (partial hydration would otherwise leave states the
        # resumed run never re-pops unreadable once the store is closed).
        # NOT under a resident budget — a bounded engine must never
        # materialise the whole checkpointed set (its graphs are documented
        # store-dependent: keep the store open)
        if self.resident_budget is None:
            for state_id in graph._states:
                self.interner.shape_of(state_id)
        graph.transitions = {
            source: [(decode_update(update), target) for update, target in edges]
            for source, edges in checkpoint["transitions"]
        }
        graph.parents = {
            child: (parent, decode_update(update))
            for child, parent, update in checkpoint["parents"]
        }
        graph.truncated_by_states = checkpoint["truncated_by_states"]
        graph.truncated_by_size = checkpoint["truncated_by_size"]
        graph.truncated_by_copies = checkpoint["truncated_by_copies"]
        graph.skipped_successors = checkpoint["skipped_successors"]
        graph.stopped_on_complete = checkpoint.get("stopped_on_complete", False)
        graph.resumed = True
        frontier = self._make_frontier(strategy)
        for state_id in checkpoint["frontier"]:
            frontier.push(state_id)
        return graph, frontier

    def _finish_exploration(self, run_key: str, graph: EngineGraph) -> None:
        """Flush pending rows and mark the run's checkpoint as finished.

        A finished checkpoint is kept (marked ``done``) rather than deleted:
        resuming it later returns the completed graph immediately, which is
        what lets a re-run ``analyze --resume`` skip a finished sweep.
        """
        if not self.store.persistent and self.store.load_checkpoint(run_key) is None:
            return  # pure in-memory run that was never interrupted: no trace
        empty = self._make_frontier("bfs")
        self._save_checkpoint(run_key, graph, empty)
        self.store.flush()

    # ------------------------------------------------------------------ #
    # depth-1 exploration (canonical label-set states, Lemma 4.3)
    # ------------------------------------------------------------------ #

    def explore_depth1(self, start: Optional[Instance] = None, strategy: Optional[str] = None):
        """Build the complete canonical-state graph of a depth-1 form.

        Returns the legacy
        :class:`~repro.analysis.statespace.Depth1StateGraph` (its states are
        tiny frozensets already; the engine contributes guard memoization —
        support-projected, so the Theorem 5.1 SAT workloads share evaluations
        across exponentially many states — and the frontier strategy).

        Raises:
            ValueError: when the schema has depth greater than 1.
        """
        self._hydrate()
        form = self.guarded_form
        if form.schema_depth() > 1:
            raise ValueError(
                "explore_depth1 only applies to depth-1 guarded forms; use "
                "explore_bounded for deeper schemas"
            )
        from repro.analysis.statespace import Depth1StateGraph, Depth1Transition

        start_instance = start if start is not None else form.initial_instance()
        initial = canonical_depth1_state(start_instance)
        graph = Depth1StateGraph(form, initial)
        frontier = self._make_frontier(strategy, depth1=True)
        graph.states.add(initial)
        frontier.push(initial)
        while frontier:
            state = frontier.pop()
            if state in graph.transitions:
                continue  # a state can be queued twice under non-FIFO frontiers
            transitions = [
                Depth1Transition(kind, label, state, target)
                for kind, label, target in self._expand_depth1(state)
            ]
            graph.transitions[state] = transitions
            for transition in transitions:
                if transition.target not in graph.states:
                    graph.states.add(transition.target)
                    frontier.push(transition.target)
        if self.store.persistent:
            self.store.flush()  # depth-1 runs persist guard values, not checkpoints
        return graph

    def _expand_depth1(self, state: frozenset) -> list:
        memo = self._d1_expansions.get(state)
        if memo is not None:
            moves, guard_queries = memo
            self.guards.credit_reuse(guard_queries)
            self.expansions_reused += 1
            return moves
        guards = self.guards
        queries_before = guards.hits + guards.misses
        moves: list = []
        for schema_child in self.guarded_form.schema.root.children:
            label = schema_child.label
            if guards.d1_addition_allowed(state, label):
                target = frozenset(state | {label})
                if target != state:
                    moves.append(("add", label, target))
        for label in sorted(state):
            if guards.d1_deletion_allowed(state, label):
                moves.append(("del", label, frozenset(state - {label})))
        self._d1_expansions[state] = (moves, guards.hits + guards.misses - queries_before)
        self.expansions_computed += 1
        return moves

    def complete_depth1_states(self, graph) -> set:
        """The canonical states of *graph* satisfying the completion formula."""
        guards = self.guards
        return {state for state in graph.states if guards.d1_completion(state)}

    # ------------------------------------------------------------------ #
    # worker lifecycle (no-op on the serial engine)
    # ------------------------------------------------------------------ #

    def shutdown_workers(self) -> None:
        """Release any worker processes held by this engine.

        The serial engine owns none; the parallel engine overrides this.
        Analyses that build an engine internally call it unconditionally, so
        it must stay safe (and idempotent) on every engine flavour.
        """

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def stats_snapshot(self) -> dict:
        """All engine counters, flattened for ``AnalysisResult.stats``."""
        snapshot = dict(self.guards.stats())
        for key, value in self.interner.stats().items():
            snapshot[f"intern_{key}"] = value
        for key, value in self.shaper.stats().items():
            snapshot[f"shape_{key}"] = value
        snapshot["expansions_computed"] = self.expansions_computed
        snapshot["expansions_reused"] = self.expansions_reused
        snapshot["heuristic_evaluations"] = self.heuristic_evaluations
        snapshot["registered_states"] = len(self._reps)
        snapshot["frontier_strategy"] = self.strategy
        snapshot["explorations_resumed"] = self.explorations_resumed
        # residency: how much of the working set is actually in memory, and
        # how much of a populated store's shape table hydration pulled in
        snapshot["resident_budget"] = self.resident_budget
        snapshot["reps_resident"] = len(self._reps)
        snapshot["states_resident"] = self.interner.resident
        snapshot["reps_evicted"] = self.reps_evicted
        snapshot["expansions_evicted"] = self.expansions_evicted
        snapshot["hydration_rows_skipped"] = max(
            0, self._persisted_rows_at_attach - self.interner.states_restored_distinct
        )
        for key, value in self.store.stats().items():
            snapshot[f"store_{key}"] = value
        snapshot["telemetry_enabled"] = self.telemetry.enabled
        if self.telemetry.enabled:
            snapshot["obs"] = self.telemetry.snapshot()
        return snapshot
