"""Pluggable frontier strategies for the exploration engine.

The legacy explorers hard-coded breadth-first search.  The engine instead
delegates frontier ordering to a :class:`FrontierStrategy`:

* ``"bfs"`` — FIFO, the legacy order; shortest witness runs.
* ``"dfs"`` — LIFO; low frontier memory, reaches deep states early.
* ``"guided"`` — best-first on :func:`completion_distance`, a syntactic
  estimate of how far a state is from satisfying the completion formula.
  On completable forms this tends to intern the complete state early, which
  keeps witness extraction cheap and makes future early-exit policies
  (ROADMAP open item) effective.

Exhaustive explorations visit the same state set under every strategy; only
the discovery order (and hence which states a truncated exploration keeps)
differs.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Hashable, Optional

from repro.core.formulas.ast import And, Bottom, Exists, Formula, Not, Or, Top
from repro.core.formulas.semantics import evaluate
from repro.core.tree import Node
from repro.exceptions import AnalysisError

#: Names accepted by :func:`make_strategy` (and the CLI ``--frontier`` flag).
STRATEGIES = ("bfs", "dfs", "guided")


def completion_distance(node: Node, formula: Formula) -> int:
    """A non-negative estimate of how far *node* is from satisfying *formula*.

    0 means the formula is already satisfied.  The estimate counts the atomic
    sub-formulas whose truth value would have to flip: conjunctions add their
    operands' distances, disjunctions take the cheaper branch.
    """
    if isinstance(formula, Top):
        return 0
    if isinstance(formula, Bottom):
        return 1
    if isinstance(formula, Exists):
        return 0 if evaluate(node, formula) else 1
    if isinstance(formula, Not):
        return 0 if evaluate(node, formula) else 1
    if isinstance(formula, And):
        return completion_distance(node, formula.left) + completion_distance(
            node, formula.right
        )
    if isinstance(formula, Or):
        return min(
            completion_distance(node, formula.left),
            completion_distance(node, formula.right),
        )
    raise AnalysisError(f"cannot score unknown formula node {formula!r}")


class FrontierStrategy:
    """Interface: an ordered collection of pending state keys."""

    name = "abstract"

    def push(self, state: Hashable) -> None:
        raise NotImplementedError

    def pop(self) -> Hashable:
        raise NotImplementedError

    def pending(self) -> list:
        """The queued states, ordered so that re-``push``-ing them into a
        fresh instance of the same strategy reproduces the pop order exactly
        (including insertion-order tie-breaking).  This is what exploration
        checkpoints persist."""
        raise NotImplementedError

    def requeue(self, state: Hashable) -> None:
        """Put a just-popped state back at the *front* of the pop order.

        Used when an interrupt lands mid-expansion: the state must be
        re-expanded first on resume, as if it had never been popped.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class BreadthFirstFrontier(FrontierStrategy):
    """FIFO frontier — the legacy exploration order."""

    name = "bfs"

    def __init__(self) -> None:
        self._queue: deque = deque()

    def push(self, state: Hashable) -> None:
        self._queue.append(state)

    def pop(self) -> Hashable:
        return self._queue.popleft()

    def pending(self) -> list:
        return list(self._queue)

    def requeue(self, state: Hashable) -> None:
        self._queue.appendleft(state)

    def __len__(self) -> int:
        return len(self._queue)


class DepthFirstFrontier(FrontierStrategy):
    """LIFO frontier."""

    name = "dfs"

    def __init__(self) -> None:
        self._stack: list = []

    def push(self, state: Hashable) -> None:
        self._stack.append(state)

    def pop(self) -> Hashable:
        return self._stack.pop()

    def pending(self) -> list:
        return list(self._stack)

    def requeue(self, state: Hashable) -> None:
        self._stack.append(state)  # top of the stack is the pop position

    def __len__(self) -> int:
        return len(self._stack)


class GuidedFrontier(FrontierStrategy):
    """Best-first frontier ordered by a caller-supplied score (lower first).

    Ties break by insertion order, so ``guided`` degenerates to BFS when the
    scorer is constant.
    """

    name = "guided"

    def __init__(self, scorer: Callable[[Hashable], int]) -> None:
        self._scorer = scorer
        self._heap: list = []
        self._counter = 0

    def push(self, state: Hashable) -> None:
        heapq.heappush(self._heap, (self._scorer(state), self._counter, state))
        self._counter += 1

    def pop(self) -> Hashable:
        return heapq.heappop(self._heap)[2]

    def pending(self) -> list:
        # insertion order: re-pushing recomputes scores (the scorer is
        # deterministic) and reproduces the same counter-based tie-breaks
        return [state for _, _, state in sorted(self._heap, key=lambda entry: entry[1])]

    def requeue(self, state: Hashable) -> None:
        # the heap position is score-determined; a re-queued state keeps its
        # priority class (ties order it after existing equals, which is the
        # best a recomputed counter can do)
        self.push(state)

    def __len__(self) -> int:
        return len(self._heap)


def make_strategy(
    name: str, scorer: Optional[Callable[[Hashable], int]] = None
) -> FrontierStrategy:
    """Instantiate the frontier strategy called *name*.

    ``"guided"`` requires a *scorer* (the engine supplies a cached
    :func:`completion_distance`); the other strategies ignore it.
    """
    if name == "bfs":
        return BreadthFirstFrontier()
    if name == "dfs":
        return DepthFirstFrontier()
    if name == "guided":
        if scorer is None:
            raise AnalysisError("the guided frontier strategy needs a scorer")
        return GuidedFrontier(scorer)
    raise AnalysisError(
        f"unknown frontier strategy {name!r}; expected one of {', '.join(STRATEGIES)}"
    )
