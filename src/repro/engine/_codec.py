"""Optional C-accelerated codec primitives (varint runs, arena hashing).

The wire codec (:mod:`repro.engine.wire`) and the shape arena
(:mod:`repro.engine.arena`) spend their hot loops decoding **runs** of
unsigned LEB128 varints and CRC-hashing canonical shape encodings.  Both
operations have a mandatory pure-Python implementation in this module; when
the :mod:`cffi` toolchain is available the same two primitives are compiled
once into a tiny C extension (cached under ``~/.cache/repro-codec``, or
``$REPRO_CODEC_CACHE``) and used instead.

The two paths are **bit-identical by construction** — same truncation and
overflow rejections, same CRC-32 (IEEE, matching :func:`zlib.crc32`) — and
the differential Hypothesis suite in
``tests/property/test_arena_properties.py`` pins that equivalence on random
buffers and random frames.

``REPRO_PURE=1`` in the environment forces the pure path (the CI matrix runs
the full tier-1 suite this way so the fallback can never rot);
:func:`set_pure` toggles it at runtime for in-process differential tests and
benchmarks.  Consumers should look the dispatch functions up through the
module (``_codec.decode_uvarint_run``), not ``from``-import them, so the
toggle takes effect.

Both decoders reject varints that do not fit in 64 bits.  Legitimate wire
values (node ids, table indices, byte lengths, counts) are far below that
bound; the cap is what lets the C side use native integers while staying
exactly as strict as the pure side.
"""

from __future__ import annotations

import importlib.util
import os
import shutil
import zlib

from repro.exceptions import WireFormatError

#: Bumped whenever the C source below changes, so stale cached builds are
#: never loaded.
_CODEC_VERSION = 1

_U64_MAX = (1 << 64) - 1

_CDEF = """
long long repro_decode_uvarint_run(const unsigned char *buf, long long len,
                                   long long pos, long long count,
                                   unsigned long long *out);
unsigned int repro_crc32(const unsigned char *buf, long long len);
"""

_C_SOURCE = r"""
#include <stdint.h>

long long repro_decode_uvarint_run(const unsigned char *buf, long long len,
                                   long long pos, long long count,
                                   unsigned long long *out)
{
    long long i;
    for (i = 0; i < count; i++) {
        unsigned long long value = 0;
        int shift = 0;
        for (;;) {
            unsigned char b;
            unsigned long long bits;
            if (pos >= len)
                return -1; /* truncated mid-value */
            b = buf[pos++];
            bits = (unsigned long long)(b & 0x7F);
            if (shift >= 64 || bits > (0xFFFFFFFFFFFFFFFFULL >> shift))
                return -2; /* value exceeds 64 bits */
            value |= bits << shift;
            if (!(b & 0x80))
                break;
            shift += 7;
        }
        out[i] = value;
    }
    return pos;
}

static uint32_t crc_table[256];
static int crc_table_ready = 0;

unsigned int repro_crc32(const unsigned char *buf, long long len)
{
    uint32_t crc = 0xFFFFFFFFu;
    long long i;
    if (!crc_table_ready) {
        uint32_t n;
        for (n = 0; n < 256; n++) {
            uint32_t c = n;
            int k;
            for (k = 0; k < 8; k++)
                c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
            crc_table[n] = c;
        }
        crc_table_ready = 1;
    }
    for (i = 0; i < len; i++)
        crc = crc_table[(crc ^ buf[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}
"""


# --------------------------------------------------------------------------- #
# pure-Python implementations (the mandatory fallback)
# --------------------------------------------------------------------------- #


def pure_decode_uvarint_run(data, pos: int, count: int) -> tuple[list, int]:
    """Decode *count* LEB128 varints starting at *pos* in one batched loop.

    Returns ``(values, new pos)``.  Single-byte varints (the overwhelming
    majority on real frames) take the one-comparison fast path; multi-byte
    continuations fall into the generic loop.

    Raises:
        WireFormatError: truncation mid-value, or a value exceeding 64 bits
            (the C path's native-integer bound, enforced identically here).
    """
    out: list = []
    append = out.append
    size = len(data)
    for _ in range(count):
        if pos >= size:
            raise WireFormatError("truncated varint run: buffer ended mid-value")
        byte = data[pos]
        pos += 1
        if byte < 0x80:
            append(byte)
            continue
        value = byte & 0x7F
        shift = 7
        while True:
            if pos >= size:
                raise WireFormatError("truncated varint run: buffer ended mid-value")
            byte = data[pos]
            pos += 1
            bits = byte & 0x7F
            if shift >= 64 or bits > (_U64_MAX >> shift):
                raise WireFormatError("varint overflow: value exceeds 64 bits")
            value |= bits << shift
            if byte < 0x80:
                break
            shift += 7
        append(value)
    return out, pos


def pure_arena_hash(data) -> int:
    """CRC-32 (IEEE) of *data* — exactly :func:`zlib.crc32`."""
    return zlib.crc32(data)


# --------------------------------------------------------------------------- #
# C extension: build-once cache, auto-detection
# --------------------------------------------------------------------------- #


def _cache_dir() -> str:
    root = os.environ.get("REPRO_CODEC_CACHE")
    if not root:
        xdg = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
        root = os.path.join(xdg, "repro-codec")
    return root


def _find_cached(cache: str, module_name: str):
    try:
        entries = sorted(os.listdir(cache))
    except OSError:
        return None
    for entry in entries:
        if entry.startswith(module_name) and entry.endswith(".so"):
            return os.path.join(cache, entry)
    return None


def _load_extension(module_name: str, so_path: str):
    spec = importlib.util.spec_from_file_location(module_name, so_path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load codec extension from {so_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _build_extension(cache: str, module_name: str) -> str:
    from cffi import FFI

    builder = FFI()
    builder.cdef(_CDEF)
    builder.set_source(module_name, _C_SOURCE)
    build_dir = os.path.join(cache, f"build-{os.getpid()}")
    os.makedirs(build_dir, exist_ok=True)
    try:
        built = builder.compile(tmpdir=build_dir)
        target = os.path.join(cache, os.path.basename(built))
        os.replace(built, target)  # atomic even when two processes race
        return target
    finally:
        shutil.rmtree(build_dir, ignore_errors=True)


def _try_load_accelerator():
    cache = _cache_dir()
    module_name = f"_repro_codec_v{_CODEC_VERSION}"
    try:
        os.makedirs(cache, exist_ok=True)
        so_path = _find_cached(cache, module_name)
        if so_path is None:
            so_path = _build_extension(cache, module_name)
        return _load_extension(module_name, so_path)
    except Exception:  # noqa: BLE001 - any failure means "pure fallback"
        return None


_ext = None if os.environ.get("REPRO_PURE") else _try_load_accelerator()

#: Whether the C extension compiled/loaded.  Stays ``True`` while
#: :func:`set_pure` temporarily forces the pure path — it reports
#: availability, not the current dispatch.
ACCELERATED = _ext is not None

if _ext is not None:
    _ffi = _ext.ffi
    _lib = _ext.lib

    def c_decode_uvarint_run(data, pos: int, count: int) -> tuple[list, int]:
        """C-backed batched varint decode (zero-copy via ``from_buffer``)."""
        buf = _ffi.from_buffer("unsigned char[]", data, require_writable=False)
        out = _ffi.new("unsigned long long[]", count) if count else _ffi.NULL
        rc = _lib.repro_decode_uvarint_run(buf, len(data), pos, count, out)
        if rc == -1:
            raise WireFormatError("truncated varint run: buffer ended mid-value")
        if rc < 0:
            raise WireFormatError("varint overflow: value exceeds 64 bits")
        return (_ffi.unpack(out, count) if count else []), rc

    def c_arena_hash(data) -> int:
        buf = _ffi.from_buffer("unsigned char[]", data, require_writable=False)
        return _lib.repro_crc32(buf, len(data))

else:
    c_decode_uvarint_run = None  # type: ignore[assignment]
    c_arena_hash = None  # type: ignore[assignment]


# --------------------------------------------------------------------------- #
# dispatch
# --------------------------------------------------------------------------- #

_pure_forced = bool(os.environ.get("REPRO_PURE"))

decode_uvarint_run = pure_decode_uvarint_run
arena_hash = pure_arena_hash


def _bind() -> None:
    global decode_uvarint_run, arena_hash
    if ACCELERATED and not _pure_forced:
        decode_uvarint_run = c_decode_uvarint_run
        # arena_hash stays on zlib.crc32 even when accelerated: CPython's
        # zlib is already optimized C (~10x the table-driven repro_crc32 on
        # large buffers).  repro_crc32 exists as an independent second
        # implementation of the digest, pinned bit-identical by the
        # differential suite, so the on-wire/on-disk hash contract is
        # cross-checked rather than defined by one library.
        arena_hash = pure_arena_hash
    else:
        decode_uvarint_run = pure_decode_uvarint_run
        arena_hash = pure_arena_hash


def set_pure(flag: bool) -> bool:
    """Force (or release) the pure-Python path at runtime.

    Returns the previous setting, so callers can restore it::

        previous = _codec.set_pure(True)
        try:
            ...
        finally:
            _codec.set_pure(previous)

    Only affects this process — worker subprocesses inherit ``REPRO_PURE``
    from the environment instead.
    """
    global _pure_forced
    previous = _pure_forced
    _pure_forced = bool(flag)
    _bind()
    return previous


def is_pure() -> bool:
    """Whether the pure-Python path is currently dispatched."""
    return not ACCELERATED or _pure_forced


_bind()
