"""Persistent state stores for the exploration engine.

The engine's working set — interned shapes, canonical representative
instances, guard-cache entries and in-flight exploration checkpoints — lives
in in-memory dicts by default, which caps ``max_states`` at whatever fits in
RAM and ties an exploration to one process.  This module puts a storage
protocol underneath:

* :class:`StateStore` — the backend interface.  The engine *writes through*
  to it (every newly interned shape, registered representative and evaluated
  guard is offered to the store) and *hydrates* from it on construction, so a
  fresh process attached to a populated store resumes with the exact state
  ids, representatives (node-id-for-node-id) and guard values of the process
  that wrote it.

* :class:`InMemoryStore` — the extracted default behaviour.  Nothing is
  serialised; shapes/representatives/guards stay solely in the engine's own
  structures (``persistent`` is ``False``, so the engine skips the
  write-through entirely and the hot path is unchanged).  Exploration
  checkpoints *are* kept, in a plain dict, so step-budgeted explorations can
  be interrupted and resumed within one process without a database.

* :class:`SqliteStore` — an sqlite3-backed store.  Writes are batched
  (``batch_size`` buffered rows per ``executemany`` flush) and reads of
  shapes/representatives go through an :class:`LRUCache`, so the exploration
  hot path neither serialises per row nor touches the database for recently
  used states.  A fingerprint of the guarded form is recorded on first attach
  and verified on every later one — a store can never silently answer for the
  wrong form.

Checkpoints are keyed by a digest of the exploration parameters (start
shape, limits, strategy, early-exit flag), so several explorations — e.g.
the per-suspicious-state completability sweeps of a semi-soundness analysis —
can each keep their own resumable frontier in one store.

Store counters (row reads/writes, cache hits/misses, flushes) surface in
``AnalysisResult.stats["engine"]`` under ``store_*`` keys via
:meth:`ExplorationEngine.stats_snapshot`.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
import uuid
from pathlib import Path
from typing import Iterator, Optional

from repro.core.guarded_form import GuardedForm
from repro.core.tree import Shape
from repro.engine.interning import StateId
from repro.engine.sqlite_base import (  # noqa: F401  (re-exported: old import path)
    _BUSY_TIMEOUT_MS,
    _MISS,
    LRUCache,
    SqliteBacked,
)
from repro.exceptions import StoreError
from repro.io.serialization import (
    decode_guard_row,
    decode_shape_binary,
    decode_shape_row,
    encode_guard_key,
    encode_guard_key_binary,
    encode_shape,
    encode_shape_binary,
    form_fingerprint,
    stable_shape_hash,
    stable_shape_hash_of_encoding,
)
from repro.obs import NO_TELEMETRY

#: Version stamp written to store metadata; bumped on layout changes.  The
#: ``shape_hash`` reverse-lookup column did not bump it: old stores are
#: migrated in place on open, and old builds can still read migrated stores
#: (they simply ignore the extra column).
STORE_SCHEMA_VERSION = "1"


class StateStore:
    """Backend interface for persisting engine state.

    ``persistent`` tells the engine whether write-through and hydration are
    worthwhile; the in-memory default returns ``False`` and the engine then
    skips every serialisation on the hot path.
    """

    #: Whether rows written here survive the engine (and the process).
    persistent = False

    #: When set, overrides the engine's ``checkpoint_every`` cadence for
    #: explorations backed by this store (the CLI plumbs its
    #: ``--checkpoint-every`` through here).
    checkpoint_every: Optional[int] = None

    #: Telemetry recorder.  The engine that owns the store assigns its own
    #: recorder here on construction; the class default is the free no-op,
    #: so standalone stores pay one attribute check per instrumented call.
    telemetry = NO_TELEMETRY

    # -- lifecycle ----------------------------------------------------- #

    def attach(self, guarded_form: GuardedForm) -> None:
        """Bind the store to *guarded_form*, verifying any recorded identity.

        Raises:
            StoreError: when the store already belongs to a different form.
        """

    def flush(self) -> None:
        """Persist all buffered writes."""

    def close(self) -> None:
        """Flush and release the backing resources."""

    # -- interned shapes ----------------------------------------------- #

    def put_shape(
        self,
        state_id: StateId,
        shape: Optional[Shape],
        *,
        encoded: Optional[bytes] = None,
        digest: Optional[int] = None,
    ) -> None:
        """Record a newly interned full-state shape.

        Callers holding an arena row pass its cached canonical *encoded*
        bytes and CRC *digest* (and may pass ``shape=None``); plain callers
        pass the nested-tuple shape alone and the store derives both.
        """

    def load_shapes(self) -> Iterator[tuple[StateId, Shape]]:
        """All persisted ``(state id, shape)`` rows, ordered by id."""
        return iter(())

    def load_shapes_for_shard(self, shard: int, nshards: int) -> Iterator[tuple[StateId, Shape]]:
        """The ``(state id, shape)`` rows of one hash shard, ordered by id.

        A row belongs to shard ``stable_shape_hash(shape) % nshards`` — the
        same partitioning the parallel engine assigns frontier states to
        workers by, so a worker can hydrate exactly its own slice.
        """
        del shard, nshards
        return iter(())

    def get_state_id(
        self,
        shape: Optional[Shape],
        *,
        digest: Optional[int] = None,
        encoded: Optional[bytes] = None,
    ) -> Optional[StateId]:
        """The persisted id of *shape*, or ``None`` (reverse lookup).

        This is what lets the interner stay partially hydrated: an unknown
        shape is checked against the store before a fresh id is assigned.
        As with :meth:`put_shape`, arena-backed callers pass the cached
        *digest*/*encoded* pair instead of (or alongside) the tuple.
        """
        del shape, digest, encoded
        return None

    def max_state_id(self) -> Optional[StateId]:
        """The highest persisted state id, or ``None`` on an empty store."""
        return None

    def shape_row_count(self) -> int:
        """How many shape rows the store holds (buffered writes included)."""
        return 0

    # -- canonical representatives ------------------------------------- #

    def put_representative(self, state_id: StateId, blob: str) -> None:
        """Record the serialised canonical representative of a state."""

    def get_representative(self, state_id: StateId) -> Optional[str]:
        """The serialised representative of a state, or ``None``."""
        return None

    # -- guard-cache entries ------------------------------------------- #

    def put_guard(self, key: tuple, value: bool) -> None:
        """Record one memoized guard evaluation."""

    def load_guards(self) -> Iterator[tuple[tuple, bool]]:
        """All persisted ``(key, value)`` guard entries."""
        return iter(())

    def load_guards_raw(self):
        """All persisted guard entries as raw ``(encoded row, value)`` pairs,
        or ``None`` when the backend has no row encoding (callers fall back
        to :meth:`load_guards`).  Raw rows feed
        :meth:`~repro.engine.guards.GuardCache.restore_raw`, which defers
        binary-row decoding until a key is actually probed."""
        return None

    # -- exploration checkpoints --------------------------------------- #

    def save_checkpoint(self, run_key: str, payload: dict) -> None:
        """Persist the frontier/graph snapshot of one exploration."""

    def load_checkpoint(self, run_key: str) -> Optional[dict]:
        """The last snapshot saved under *run_key*, or ``None``."""
        return None

    def clear_checkpoint(self, run_key: str) -> None:
        """Drop the snapshot saved under *run_key*."""

    # -- reporting ------------------------------------------------------ #

    def stats(self) -> dict:
        """Counter snapshot, merged into the engine's ``store_*`` stats."""
        return {"backend": type(self).__name__}

    def describe(self) -> dict:
        """Row counts and identity metadata (the ``store info`` CLI view)."""
        return {"backend": type(self).__name__, "persistent": self.persistent}

    def cache_scope(self) -> Optional[str]:
        """Token scoping shared-cache (KV) entries that embed this store's ids.

        State ids are assigned per store, so shape→id mappings published to a
        cross-process KV cache are only valid against the exact store file
        that assigned them.  Persistent backends answer a unique token minted
        when the store file was first attached (a recreated file gets a fresh
        token, invalidating stale mappings); non-persistent backends answer
        ``None`` and their ids are never published.
        """
        return None


class InMemoryStore(StateStore):
    """The default, process-local backend (current behaviour, extracted).

    Shapes, representatives and guard values live only in the engine's own
    dicts; this store merely keeps exploration checkpoints so step-budgeted
    explorations remain resumable inside one process.
    """

    persistent = False

    def __init__(self) -> None:
        self._checkpoints: dict[str, dict] = {}
        self.checkpoint_saves = 0

    def attach(self, guarded_form: GuardedForm) -> None:
        del guarded_form  # nothing to verify: the store dies with the engine

    def save_checkpoint(self, run_key: str, payload: dict) -> None:
        self._checkpoints[run_key] = payload
        self.checkpoint_saves += 1

    def load_checkpoint(self, run_key: str) -> Optional[dict]:
        return self._checkpoints.get(run_key)

    def clear_checkpoint(self, run_key: str) -> None:
        self._checkpoints.pop(run_key, None)

    def stats(self) -> dict:
        return {
            "backend": "memory",
            "checkpoint_saves": self.checkpoint_saves,
        }

    def describe(self) -> dict:
        return {
            "backend": "memory",
            "persistent": False,
            "checkpoints": len(self._checkpoints),
        }


class SqliteStore(SqliteBacked, StateStore):
    """An sqlite3-backed :class:`StateStore` with batching and LRU reads.

    Args:
        path: database file (created on demand; ``":memory:"`` works too).
        batch_size: buffered rows across all tables before an automatic
            flush; checkpoint saves always flush first so the database is
            consistent at every resume point.
        cache_size: capacity of each of the shape and representative LRU
            read caches.
        binary_shapes: store shape rows in the wire codec's binary framing
            (:func:`~repro.io.serialization.encode_shape_binary`) instead of
            JSON text.  The read path auto-detects the format per row
            (:func:`~repro.io.serialization.decode_shape_row`), so stores
            written by either configuration — even mixed ones — open
            interchangeably.  Binary rows are also byte-for-byte the shape
            arena's cached canonical encoding, so the reverse lookup degrades
            to bytes equality — no decode at all on the hot attach path.
        binary_guards: likewise for guard rows — keys in the wire frames'
            tagged term codec (:func:`~repro.io.serialization.
            encode_guard_key_binary`) instead of tagged JSON text, which
            profiles showed dominating store-backed engine hydration.  Reads
            auto-detect per row (:func:`~repro.io.serialization.
            decode_guard_row`), so mixed stores open interchangeably.
    """

    persistent = True

    _DB_ROLE = "sqlite state store"

    _TABLES = (
        "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)",
        "CREATE TABLE IF NOT EXISTS shapes "
        "(id INTEGER PRIMARY KEY, shape TEXT NOT NULL, shape_hash INTEGER)",
        "CREATE TABLE IF NOT EXISTS representatives (id INTEGER PRIMARY KEY, blob TEXT NOT NULL)",
        "CREATE TABLE IF NOT EXISTS guards (key TEXT PRIMARY KEY, value INTEGER NOT NULL)",
        "CREATE TABLE IF NOT EXISTS checkpoints (run_key TEXT PRIMARY KEY, payload TEXT NOT NULL)",
    )

    _INDEXES = (
        # the reverse-lookup path: shape -> persisted id without hydrating
        # the whole table (collisions are resolved by decoding candidates)
        "CREATE INDEX IF NOT EXISTS shapes_shape_hash ON shapes (shape_hash)",
    )

    def __init__(
        self,
        path: "str | Path",
        batch_size: int = 512,
        cache_size: int = 8192,
        checkpoint_every: Optional[int] = None,
        binary_shapes: bool = False,
        binary_guards: bool = False,
    ) -> None:
        self.batch_size = max(1, batch_size)
        self.checkpoint_every = checkpoint_every
        self.binary_shapes = binary_shapes
        self.binary_guards = binary_guards
        self.shape_hash_rows_migrated = 0
        self.migration_seconds = 0.0
        self._open_sqlite(path)
        # write buffers are keyed dicts, so reads can be served from them
        # without forcing a premature flush (INSERT OR REPLACE semantics);
        # shapes keep (tuple or None, digest, canonical encoding) so the
        # reverse lookup covers unflushed rows by bytes equality alone
        self._pending_shapes: dict[int, tuple[Optional[Shape], int, bytes]] = {}
        self._pending_by_hash: dict[int, list[int]] = {}
        self._pending_reps: dict[int, str] = {}
        self._pending_guards: dict[tuple, bool] = {}
        self.shape_cache = LRUCache(cache_size)
        self.representative_cache = LRUCache(cache_size)
        self.rows_written = 0
        self.rows_read = 0
        self.flushes = 0
        self.checkpoint_saves = 0
        self.id_lookups = 0
        self.id_lookup_hits = 0
        self.flush_seconds = 0.0
        self.checkpoint_seconds = 0.0

    def _after_tables(self) -> None:
        self._migrate_shape_hash_column()

    def _migrate_shape_hash_column(self) -> None:
        """One-shot migration: add and backfill ``shape_hash`` on old stores.

        Stores written before the reverse-lookup path existed have a
        two-column ``shapes`` table; the column is added in place and every
        pre-existing row's digest backfilled (decode, hash, update) on first
        open.  New rows always carry their digest, so the backfill runs at
        most once per store lifetime.
        """
        started = time.perf_counter()
        columns = {row[1] for row in self._conn.execute("PRAGMA table_info(shapes)")}
        if "shape_hash" not in columns:
            self._conn.execute("ALTER TABLE shapes ADD COLUMN shape_hash INTEGER")
        # backfill in bounded batches, paginated by primary key: the whole
        # point of the column is small-RAM attach to huge tables, so the
        # migration must neither materialise the table nor re-scan the
        # already-backfilled prefix per batch (the shape_hash index does not
        # exist yet at this point)
        last_id = -1
        while True:
            rows = self._conn.execute(
                "SELECT id, shape FROM shapes WHERE id > ? AND shape_hash IS NULL "
                "ORDER BY id LIMIT 4096",
                (last_id,),
            ).fetchall()
            if not rows:
                break
            self._conn.executemany(
                "UPDATE shapes SET shape_hash = ? WHERE id = ?",
                [
                    (
                        stable_shape_hash_of_encoding(row)
                        if isinstance(row, bytes)
                        else stable_shape_hash(decode_shape_row(row)),
                        sid,
                    )
                    for sid, row in rows
                ],
            )
            self._conn.commit()
            self.shape_hash_rows_migrated += len(rows)
            last_id = rows[-1][0]
        elapsed = time.perf_counter() - started
        self.migration_seconds += elapsed
        obs = self.telemetry
        if obs.enabled and self.shape_hash_rows_migrated:
            obs.end_span(
                "store.migrate_shape_hash",
                obs.now() - elapsed,
                rows=self.shape_hash_rows_migrated,
            )

    # -- lifecycle ----------------------------------------------------- #

    def attach(self, guarded_form: GuardedForm) -> None:
        version = self._get_meta("schema_version")
        if version is not None and version != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"state store {self.path} uses layout version {version}, "
                f"this build expects {STORE_SCHEMA_VERSION}"
            )
        fingerprint = form_fingerprint(guarded_form)
        recorded = self._get_meta("form_fingerprint")
        if recorded is not None and recorded != fingerprint:
            raise StoreError(
                f"state store {self.path} belongs to guarded form "
                f"{self._get_meta('form_name')!r}, not {guarded_form.name!r}; "
                "its shapes, guard values and checkpoints cannot be reused"
            )
        if recorded is None:
            self._set_meta("schema_version", STORE_SCHEMA_VERSION)
            self._set_meta("form_fingerprint", fingerprint)
            self._set_meta("form_name", guarded_form.name)
            self._conn.commit()
        # a unique id minted once per store file, scoping any shared-cache
        # entries that embed this store's state ids (see cache_scope): a
        # store recreated at the same path gets a fresh uuid, so stale
        # shape→id mappings in a long-lived KV can never answer for it
        if self._get_meta("store_uuid") is None:
            self._set_meta("store_uuid", uuid.uuid4().hex)
            self._conn.commit()

    def cache_scope(self) -> Optional[str]:
        return self._get_meta("store_uuid")

    def flush(self) -> None:
        if not (self._pending_shapes or self._pending_reps or self._pending_guards):
            return
        started = time.perf_counter()
        pending = self._pending_rows()
        if self._pending_shapes:
            if self.binary_shapes:
                rows = [
                    (sid, encoded, digest)
                    for sid, (_shape, digest, encoded) in self._pending_shapes.items()
                ]
            else:
                rows = [
                    (
                        sid,
                        encode_shape(
                            shape if shape is not None else decode_shape_binary(encoded)
                        ),
                        digest,
                    )
                    for sid, (shape, digest, encoded) in self._pending_shapes.items()
                ]
            self._conn.executemany(
                "INSERT OR REPLACE INTO shapes (id, shape, shape_hash) VALUES (?, ?, ?)",
                rows,
            )
            self._pending_shapes.clear()
            self._pending_by_hash.clear()
        if self._pending_reps:
            self._conn.executemany(
                "INSERT OR REPLACE INTO representatives (id, blob) VALUES (?, ?)",
                list(self._pending_reps.items()),
            )
            self._pending_reps.clear()
        if self._pending_guards:
            encode_key = encode_guard_key_binary if self.binary_guards else encode_guard_key
            self._conn.executemany(
                "INSERT OR REPLACE INTO guards (key, value) VALUES (?, ?)",
                [(encode_key(key), int(value)) for key, value in self._pending_guards.items()],
            )
            self._pending_guards.clear()
        self._conn.commit()
        self.flushes += 1
        elapsed = time.perf_counter() - started
        self.flush_seconds += elapsed
        obs = self.telemetry
        if obs.enabled:
            obs.end_span("store.flush", obs.now() - elapsed, rows=pending)
            obs.metrics.histogram("store_flush_seconds").observe(elapsed)

    def close(self) -> None:
        self.flush()
        self._conn.close()

    def _pending_rows(self) -> int:
        return (
            len(self._pending_shapes)
            + len(self._pending_reps)
            + len(self._pending_guards)
        )

    def _maybe_flush(self) -> None:
        if self._pending_rows() >= self.batch_size:
            self.flush()

    # -- interned shapes ----------------------------------------------- #

    def put_shape(
        self,
        state_id: StateId,
        shape: Optional[Shape],
        *,
        encoded: Optional[bytes] = None,
        digest: Optional[int] = None,
    ) -> None:
        if encoded is None:
            encoded = encode_shape_binary(shape)
        if digest is None:
            digest = stable_shape_hash_of_encoding(encoded)
        self._pending_shapes[state_id] = (shape, digest, encoded)
        self._pending_by_hash.setdefault(digest, []).append(state_id)
        if shape is not None:
            # a cached None means "absent from the store", so a row whose
            # tuple was never materialised must not poison the cache
            self.shape_cache.put(state_id, shape)
        self.rows_written += 1
        self._maybe_flush()

    def get_shape(self, state_id: StateId) -> Optional[Shape]:
        """One persisted shape by id (LRU-cached, negative lookups too)."""
        cached = self.shape_cache.get(state_id, _MISS)
        if cached is not _MISS:
            return cached
        pending = self._pending_shapes.get(state_id)
        if pending is not None:
            shape = pending[0] if pending[0] is not None else decode_shape_binary(pending[2])
            self.shape_cache.put(state_id, shape)
            return shape
        row = self._conn.execute(
            "SELECT shape FROM shapes WHERE id = ?", (state_id,)
        ).fetchone()
        if row is None:
            self.shape_cache.put(state_id, None)
            return None
        self.rows_read += 1
        shape = decode_shape_row(row[0])
        self.shape_cache.put(state_id, shape)
        return shape

    def get_state_id(
        self,
        shape: Optional[Shape],
        *,
        digest: Optional[int] = None,
        encoded: Optional[bytes] = None,
    ) -> Optional[StateId]:
        """The persisted id of *shape*, or ``None`` (reverse lookup).

        Served through the ``shape_hash`` index.  Binary candidate rows are
        compared as bytes against the canonical encoding (the encoding is
        injective, so bytes equality *is* shape equality — no decode at
        all); JSON rows fall back to decode-and-compare.  Hash collisions
        therefore cost at most a decode, never a wrong answer.  Buffered
        rows are checked first — eviction under a resident budget may ask
        for a row the write batch has not flushed yet.
        """
        if encoded is None:
            encoded = encode_shape_binary(shape)
        if digest is None:
            digest = stable_shape_hash_of_encoding(encoded)
        for sid in self._pending_by_hash.get(digest, ()):
            pending = self._pending_shapes.get(sid)
            if pending is not None and pending[2] == encoded:
                return sid
        self.id_lookups += 1
        for sid, row in self._conn.execute(
            "SELECT id, shape FROM shapes WHERE shape_hash = ?", (digest,)
        ):
            self.rows_read += 1
            if isinstance(row, bytes):
                if row != encoded:
                    continue
                if shape is not None:
                    self.shape_cache.put(sid, shape)
                self.id_lookup_hits += 1
                return sid
            decoded = decode_shape_row(row)
            if shape is None:
                shape = decode_shape_binary(encoded)
            if decoded == shape:
                self.shape_cache.put(sid, decoded)
                self.id_lookup_hits += 1
                return sid
        return None

    def max_state_id(self) -> Optional[StateId]:
        top = self._conn.execute("SELECT MAX(id) FROM shapes").fetchone()[0]
        if self._pending_shapes:
            pending_top = max(self._pending_shapes)
            top = pending_top if top is None else max(top, pending_top)
        return top

    def shape_row_count(self) -> int:
        count = self._conn.execute("SELECT COUNT(*) FROM shapes").fetchone()[0]
        # buffered ids are always new (the interner writes each id through
        # exactly once), so the union is a plain sum
        return count + len(self._pending_shapes)

    def load_shapes(self) -> Iterator[tuple[StateId, Shape]]:
        self.flush()
        for state_id, row in self._conn.execute(
            "SELECT id, shape FROM shapes ORDER BY id"
        ):
            self.rows_read += 1
            yield state_id, decode_shape_row(row)

    def load_shapes_for_shard(self, shard: int, nshards: int) -> Iterator[tuple[StateId, Shape]]:
        self.flush()
        for state_id, row in self._conn.execute(
            "SELECT id, shape FROM shapes "
            "WHERE shape_hash IS NOT NULL AND (shape_hash % ?) = ? ORDER BY id",
            (nshards, shard),
        ):
            self.rows_read += 1
            yield state_id, decode_shape_row(row)

    # -- canonical representatives ------------------------------------- #

    def put_representative(self, state_id: StateId, blob: str) -> None:
        self._pending_reps[state_id] = blob
        self.representative_cache.put(state_id, blob)
        self.rows_written += 1
        self._maybe_flush()

    def get_representative(self, state_id: StateId) -> Optional[str]:
        cached = self.representative_cache.get(state_id, _MISS)
        if cached is not _MISS:
            return cached
        pending = self._pending_reps.get(state_id)
        if pending is not None:
            self.representative_cache.put(state_id, pending)
            return pending
        row = self._conn.execute(
            "SELECT blob FROM representatives WHERE id = ?", (state_id,)
        ).fetchone()
        if row is None:
            self.representative_cache.put(state_id, None)
            return None
        self.rows_read += 1
        self.representative_cache.put(state_id, row[0])
        return row[0]

    # -- guard-cache entries ------------------------------------------- #

    def put_guard(self, key: tuple, value: bool) -> None:
        self._pending_guards[key] = value
        self.rows_written += 1
        self._maybe_flush()

    def load_guards(self) -> Iterator[tuple[tuple, bool]]:
        self.flush()
        for row, value in self._conn.execute("SELECT key, value FROM guards"):
            self.rows_read += 1
            yield decode_guard_row(row), bool(value)

    def load_guards_raw(self):
        self.flush()
        rows = []
        for row, value in self._conn.execute("SELECT key, value FROM guards"):
            self.rows_read += 1
            rows.append((row, bool(value)))
        return rows

    # -- exploration checkpoints --------------------------------------- #

    def save_checkpoint(self, run_key: str, payload: dict) -> None:
        started = time.perf_counter()
        self.flush()  # the checkpoint must only reference persisted rows
        self._conn.execute(
            "INSERT OR REPLACE INTO checkpoints (run_key, payload) VALUES (?, ?)",
            (run_key, json.dumps(payload, separators=(",", ":"))),
        )
        self._conn.commit()
        self.checkpoint_saves += 1
        elapsed = time.perf_counter() - started
        self.checkpoint_seconds += elapsed
        obs = self.telemetry
        if obs.enabled:
            # flush + WAL-synced commit: the store's durability point
            obs.end_span("store.checkpoint", obs.now() - elapsed)
            obs.metrics.histogram("store_checkpoint_seconds").observe(elapsed)

    def load_checkpoint(self, run_key: str) -> Optional[dict]:
        self.flush()
        row = self._conn.execute(
            "SELECT payload FROM checkpoints WHERE run_key = ?", (run_key,)
        ).fetchone()
        if row is None:
            return None
        self.rows_read += 1
        try:
            return json.loads(row[0])
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt checkpoint in {self.path}: {exc}") from exc

    def clear_checkpoint(self, run_key: str) -> None:
        self._conn.execute("DELETE FROM checkpoints WHERE run_key = ?", (run_key,))
        self._conn.commit()

    # -- reporting ------------------------------------------------------ #

    def stats(self) -> dict:
        return {
            "backend": "sqlite",
            "rows_written": self.rows_written,
            "rows_read": self.rows_read,
            "flushes": self.flushes,
            "flush_seconds": round(self.flush_seconds, 6),
            "checkpoint_saves": self.checkpoint_saves,
            "checkpoint_seconds": round(self.checkpoint_seconds, 6),
            "migration_seconds": round(self.migration_seconds, 6),
            "id_lookups": self.id_lookups,
            "id_lookup_hits": self.id_lookup_hits,
            "shape_hash_rows_migrated": self.shape_hash_rows_migrated,
            "shape_cache_hits": self.shape_cache.hits,
            "shape_cache_misses": self.shape_cache.misses,
            "shape_cache_evictions": self.shape_cache.evictions,
            "representative_cache_hits": self.representative_cache.hits,
            "representative_cache_misses": self.representative_cache.misses,
        }

    def describe(self) -> dict:
        self.flush()
        counts = {
            table: self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in ("shapes", "representatives", "guards", "checkpoints")
        }
        pending = [
            run_key
            for run_key, payload in self._conn.execute(
                "SELECT run_key, payload FROM checkpoints"
            )
            if not json.loads(payload).get("done", False)
        ]
        return {
            "backend": "sqlite",
            "persistent": True,
            "path": self.path,
            "shape_codec": "binary" if self.binary_shapes else "json",
            "guard_codec": "binary" if self.binary_guards else "json",
            "form_name": self._get_meta("form_name"),
            "form_fingerprint": self._get_meta("form_fingerprint"),
            "schema_version": self._get_meta("schema_version"),
            "interned_shapes": counts["shapes"],
            "representatives": counts["representatives"],
            "guard_entries": counts["guards"],
            "checkpoints": counts["checkpoints"],
            "resumable_checkpoints": len(pending),
        }


def load_shard_shape_rows(
    path: "str | Path", shard: int, nshards: int, limit: Optional[int] = None
) -> list:
    """The shapes of one hash shard of the store at *path*, decoded.

    Used by frontier worker processes to pre-cons their own
    ``stable_shape_hash % nshards`` slice of a populated store's shape table
    — and only that slice — through a short-lived read-only connection.
    *limit* bounds the rows returned (pre-warming is an optimisation; a
    worker must never materialise an unbounded shard).  An empty, missing,
    or pre-migration store yields no rows.
    """
    query = (
        "SELECT shape FROM shapes "
        "WHERE shape_hash IS NOT NULL AND (shape_hash % ?) = ? ORDER BY id"
    )
    params: tuple = (nshards, shard)
    if limit is not None:
        query += " LIMIT ?"
        params += (limit,)
    try:
        conn = sqlite3.connect(str(path))
        try:
            conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            rows = conn.execute(query, params).fetchall()
        finally:
            conn.close()
    except sqlite3.Error:
        return []
    return [decode_shape_row(row) for (row,) in rows]


def load_guard_rows(path: "str | Path") -> list:
    """All persisted guard entries of the store at *path*, decoded.

    Used by frontier worker processes to hydrate their local guard caches
    from the coordinator's store through their own (short-lived, read-only)
    connection; an empty or yet-uncreated store yields no rows.
    """
    try:
        conn = sqlite3.connect(str(path))
        try:
            conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            rows = conn.execute("SELECT key, value FROM guards").fetchall()
        finally:
            conn.close()
    except sqlite3.Error:
        return []
    return [(decode_guard_row(row), bool(value)) for row, value in rows]


def load_guard_rows_raw(path: "str | Path") -> list:
    """All persisted guard entries of the store at *path*, **undecoded**.

    The raw variant of :func:`load_guard_rows`: worker processes seed their
    guard caches through :meth:`~repro.engine.guards.GuardCache.restore_raw`,
    so binary rows are only decoded (in fact, only *matched*, by canonical
    encoding) when the worker actually probes the key.
    """
    try:
        conn = sqlite3.connect(str(path))
        try:
            conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            rows = conn.execute("SELECT key, value FROM guards").fetchall()
        finally:
            conn.close()
    except sqlite3.Error:
        return []
    return [(row, bool(value)) for row, value in rows]


def write_guard_rows(path: "str | Path", entries: list, binary: bool = False) -> None:
    """Write worker-evaluated guard entries into the store at *path*.

    One short transaction through the WAL per batch; rows are keyed, so
    concurrent writers replaying the same evaluation are idempotent.
    *binary* selects the row codec and must match the owning store's
    ``binary_guards`` configuration (mixed rows still read back fine — the
    read path auto-detects — but matching keeps the keyed idempotence).
    Sync failures (e.g. a reader holding the database exclusively past the
    busy timeout) are swallowed: the entries also travel back to the
    coordinator in the worker's result message, so losing the write-through
    costs at most a re-evaluation in a later process.
    """
    if not entries:
        return
    encode_key = encode_guard_key_binary if binary else encode_guard_key
    try:
        conn = sqlite3.connect(str(path))
        try:
            conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            conn.executemany(
                "INSERT OR REPLACE INTO guards (key, value) VALUES (?, ?)",
                [(encode_key(key), int(value)) for key, value in entries],
            )
            conn.commit()
        finally:
            conn.close()
    except sqlite3.Error:  # pragma: no cover - contention fallback
        pass


def open_store(path: "str | Path | None", **kwargs) -> StateStore:
    """The store for *path*: :class:`SqliteStore` when given, else in-memory."""
    if path is None:
        return InMemoryStore()
    return SqliteStore(path, **kwargs)


def exploration_run_key(
    start_shape: Shape,
    limits,
    strategy: str,
    stop_on_complete: bool,
) -> str:
    """Checkpoint key identifying one exploration's parameters.

    Two explorations share a checkpoint exactly when they would traverse the
    state space identically: same start shape, same limits, same frontier
    strategy, same early-exit policy.
    """
    payload = json.dumps(
        {
            "start": encode_shape(start_shape),
            "limits": [
                limits.max_states,
                limits.max_instance_nodes,
                limits.max_sibling_copies,
            ],
            "strategy": strategy,
            "stop_on_complete": stop_on_complete,
        },
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
