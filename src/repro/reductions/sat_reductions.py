"""SAT reductions (Theorem 5.1 and Theorem 5.6).

* :func:`sat_to_completability` — Theorem 5.1: a propositional formula is
  satisfiable iff a guarded form with one depth-1 field per variable,
  all-permissive access rules and the formula itself (with variables read as
  field labels) as completion formula is completable.  This establishes
  NP-hardness of completability for ``F(A+, φ−, 1)``.

* :func:`sat_to_non_semisoundness` — Theorem 5.6: a 3-CNF formula ``ψ`` is
  satisfiable iff a certain positive guarded form is **not** semi-sound,
  establishing coNP-hardness of semi-soundness for ``F(A+, φ+, 1)``.

  One detail of the paper's construction is adjusted: the paper lists
  addition rules ``A(add, xi) = x̄i`` / ``A(add, x̄i) = xi`` alongside the
  deletion rules.  With those additions every reachable instance could grow
  back to the initial all-literals instance, which satisfies the completion
  formula ``neg(ψ)`` whenever ``ψ`` has at least one clause — making every
  such form semi-sound and breaking the stated equivalence.  The proof sketch
  only needs the deletions (choosing an assignment by deleting the
  complementary literal), so this implementation omits the addition rules;
  the equivalence "ψ satisfiable ⟺ form not semi-sound" is then validated
  against the DPLL solver in the test-suite.  See DESIGN.md.
"""

from __future__ import annotations

from repro.core.access import RuleTable
from repro.core.formulas.ast import Bottom, Formula
from repro.core.formulas.builders import conj_all, disj_all, label
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.schema import Schema, depth_one_schema
from repro.exceptions import ReductionError
from repro.logic.propositional import (
    CnfFormula,
    PropAnd,
    PropAtom,
    PropFalse,
    PropFormula,
    PropNot,
    PropOr,
    PropTrue,
)


def _propositional_to_completion(formula: PropFormula) -> Formula:
    """Translate a propositional formula into a guarded-form formula over
    depth-1 field labels (variable ``x`` becomes the label ``x``)."""
    from repro.core.formulas.ast import And, Not, Or, Top

    if isinstance(formula, PropTrue):
        return Top()
    if isinstance(formula, PropFalse):
        return Bottom()
    if isinstance(formula, PropAtom):
        return label(formula.name)
    if isinstance(formula, PropNot):
        return Not(_propositional_to_completion(formula.operand))
    if isinstance(formula, PropAnd):
        return And(
            _propositional_to_completion(formula.left),
            _propositional_to_completion(formula.right),
        )
    if isinstance(formula, PropOr):
        return Or(
            _propositional_to_completion(formula.left),
            _propositional_to_completion(formula.right),
        )
    raise ReductionError(f"cannot translate propositional formula {formula!r}")


def sat_to_completability(formula: "CnfFormula | PropFormula") -> GuardedForm:
    """Theorem 5.1: reduce satisfiability of *formula* to completability.

    The resulting guarded form lies in ``F(A+, φ−, 1)``: one field per
    variable, every access rule is the (positive) constant ``true``, the
    initial instance is empty and the completion formula is the propositional
    formula read over field labels.
    """
    prop = formula.to_formula() if isinstance(formula, CnfFormula) else formula
    variables = sorted(prop.variables())
    if not variables:
        raise ReductionError("the formula must mention at least one variable")
    schema = depth_one_schema(variables)
    rules = RuleTable.from_dict(schema, {}, default="true")
    return GuardedForm(
        schema,
        rules,
        completion=_propositional_to_completion(prop),
        initial_instance=Instance.empty(schema),
        name=f"SAT completability reduction ({len(variables)} variables)",
    )


def positive_literal_label(variable: str) -> str:
    """Label representing "the variable is true" in Theorem 5.6's encoding."""
    return variable


def negative_literal_label(variable: str) -> str:
    """Label representing "the variable is false" in Theorem 5.6's encoding."""
    return f"{variable}_neg"


def sat_to_non_semisoundness(cnf: CnfFormula) -> GuardedForm:
    """Theorem 5.6: reduce satisfiability of a CNF to non-semi-soundness.

    The guarded form lies in ``F(A+, φ+, 1)``.  Its initial instance contains
    both literal fields of every variable; deleting the field ``x`` (allowed
    while ``x_neg`` is present) commits ``x`` to *false* and vice versa, so
    the reachable instances are exactly the partial assignments keeping at
    least one literal per variable.  The completion formula ``neg(ψ)`` holds
    iff some clause is already falsified; an instance encoding a satisfying
    assignment therefore cannot be completed, and one exists iff ``ψ`` is
    satisfiable.
    """
    variables = sorted(cnf.variables())
    if not variables:
        raise ReductionError("the CNF must mention at least one variable")
    labels = []
    for variable in variables:
        labels.append(positive_literal_label(variable))
        labels.append(negative_literal_label(variable))
    schema = depth_one_schema(labels)

    rules = RuleTable(schema)
    for variable in variables:
        positive = positive_literal_label(variable)
        negative = negative_literal_label(variable)
        # deleting one literal is allowed while the complementary literal is
        # still present (a positive rule); additions stay forbidden — see the
        # module docstring for why the paper's addition rules are omitted.
        rules.set_delete_rule(positive, label(negative))
        rules.set_delete_rule(negative, label(positive))

    # neg(ψ): a clause is falsified when the complement of each of its
    # literals is present.
    clause_negations = []
    for clause in cnf:
        complements = []
        for literal in clause:
            if literal.positive:
                complements.append(label(negative_literal_label(literal.variable)))
            else:
                complements.append(label(positive_literal_label(literal.variable)))
        clause_negations.append(conj_all(complements))
    completion = disj_all(clause_negations)

    initial = Instance.from_paths(schema, labels)
    return GuardedForm(
        schema,
        rules,
        completion=completion,
        initial_instance=initial,
        name=f"SAT semi-soundness reduction ({len(variables)} variables, {len(cnf)} clauses)",
    )


def assignment_instance(guarded_form: GuardedForm, assignment: dict[str, bool]) -> Instance:
    """The instance of Theorem 5.6's form encoding a total *assignment*
    (present positive label ⟺ the variable is true).  Used by tests to check
    that exactly the satisfying assignments are incompletable."""
    schema: Schema = guarded_form.schema
    paths = []
    for variable, value in assignment.items():
        paths.append(
            positive_literal_label(variable) if value else negative_literal_label(variable)
        )
    return Instance.from_paths(schema, paths)
