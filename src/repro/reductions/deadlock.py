"""The reachable-deadlock problem and its reduction to completability.

Theorem 4.6 shows PSPACE-hardness of completability for ``F(A−, φ−, 1)`` by
reducing the *reachable deadlock* problem:

    given graphs ``G1 … Gk`` with disjoint vertex sets, start vertices
    ``v1 … vk`` and a set ``T`` of pairs of edges from different graphs, where
    a configuration ``(a1, …, ak)`` steps to ``(b1, …, bk)`` by moving two
    components simultaneously along a pair of edges in ``T`` — is a
    configuration without successors (a deadlock) reachable?

This module provides the problem model (:class:`DeadlockProblem`), an
explicit-state checker used as the independent oracle
(:func:`deadlock_reachable`), a seeded random generator for benchmark
workloads (:func:`random_deadlock_problem`), and the reduction itself
(:func:`deadlock_to_completability`).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.access import RuleTable
from repro.core.formulas.ast import Formula
from repro.core.formulas.builders import conj, conj_all, disj_all, label, lnot
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.schema import depth_one_schema
from repro.exceptions import ReductionError

#: A directed edge of one component graph.
Edge = tuple[str, str]
#: A synchronised transition: a pair of edges taken simultaneously.
PairedTransition = tuple[Edge, Edge]


@dataclass(frozen=True)
class DeadlockProblem:
    """An instance of the reachable-deadlock problem.

    Attributes:
        components: for each component, the set of its vertices (vertex names
            must be globally unique across components).
        initial: the start vertex of each component (``initial[i]`` belongs to
            ``components[i]``).
        transitions: the set ``T`` of synchronised edge pairs; both edges of a
            pair must belong to two *different* components.
    """

    components: tuple[frozenset, ...]
    initial: tuple[str, ...]
    transitions: tuple[PairedTransition, ...]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.initial):
            raise ReductionError("need exactly one start vertex per component")
        seen: set[str] = set()
        for vertices in self.components:
            overlap = seen & set(vertices)
            if overlap:
                raise ReductionError(f"vertex names reused across components: {sorted(overlap)}")
            seen |= set(vertices)
        for index, vertex in enumerate(self.initial):
            if vertex not in self.components[index]:
                raise ReductionError(
                    f"start vertex {vertex!r} does not belong to component {index}"
                )
        for (a, b), (c, d) in self.transitions:
            first = self.component_of(a)
            second = self.component_of(c)
            if self.component_of(b) != first or self.component_of(d) != second:
                raise ReductionError("each edge of a pair must stay within one component")
            if first == second:
                raise ReductionError("the two edges of a pair must belong to different components")

    @classmethod
    def build(
        cls,
        components: Sequence[Iterable[str]],
        initial: Sequence[str],
        transitions: Iterable[PairedTransition],
    ) -> "DeadlockProblem":
        """Convenience constructor accepting plain lists/sets."""
        return cls(
            tuple(frozenset(vertices) for vertices in components),
            tuple(initial),
            tuple(transitions),
        )

    def component_of(self, vertex: str) -> int:
        """Index of the component a vertex belongs to."""
        for index, vertices in enumerate(self.components):
            if vertex in vertices:
                return index
        raise ReductionError(f"unknown vertex {vertex!r}")

    def vertices(self) -> list[str]:
        """All vertices, across all components."""
        result: list[str] = []
        for vertices in self.components:
            result.extend(sorted(vertices))
        return result

    # ------------------------------------------------------------------ #
    # explicit-state semantics (the oracle)
    # ------------------------------------------------------------------ #

    def successors(self, configuration: tuple[str, ...]) -> list[tuple[str, ...]]:
        """All configurations reachable in one synchronised step."""
        result = []
        for (a, b), (c, d) in self.transitions:
            i = self.component_of(a)
            j = self.component_of(c)
            if configuration[i] == a and configuration[j] == c:
                successor = list(configuration)
                successor[i] = b
                successor[j] = d
                result.append(tuple(successor))
        return result

    def is_deadlock(self, configuration: tuple[str, ...]) -> bool:
        """Whether *configuration* has no successor."""
        return not self.successors(configuration)


def deadlock_reachable(problem: DeadlockProblem) -> bool:
    """Explicit-state check whether a deadlock configuration is reachable.

    This is the independent oracle the tests compare the guarded-form
    reduction against; it enumerates reachable configurations breadth-first
    (exponential in the number of components, which is exactly why the
    problem is PSPACE-complete).
    """
    start = tuple(problem.initial)
    seen = {start}
    frontier = deque([start])
    while frontier:
        configuration = frontier.popleft()
        successors = problem.successors(configuration)
        if not successors:
            return True
        for successor in successors:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return False


def random_deadlock_problem(
    num_components: int,
    vertices_per_component: int,
    num_transitions: int,
    seed: Optional[int] = None,
) -> DeadlockProblem:
    """Generate a random reachable-deadlock instance (benchmark workloads).

    Generated edges never stay in place (``a ≠ b``); the reduction of
    Theorem 4.6 encodes a move by deleting the source vertex and adding the
    target vertex, which cannot express a self-loop, and the paper's
    configuration/transition model does not need them.
    """
    if num_components < 2:
        raise ReductionError("need at least two components")
    if vertices_per_component < 2:
        raise ReductionError("need at least two vertices per component")
    rng = random.Random(seed)
    components = [
        [f"g{c}_v{i}" for i in range(vertices_per_component)]
        for c in range(num_components)
    ]
    initial = [component[0] for component in components]
    transitions: list[PairedTransition] = []
    for _ in range(num_transitions):
        i, j = rng.sample(range(num_components), 2)
        first = tuple(rng.sample(components[i], 2))
        second = tuple(rng.sample(components[j], 2))
        transitions.append((first, second))
    return DeadlockProblem.build(components, initial, transitions)


# --------------------------------------------------------------------------- #
# the reduction of Theorem 4.6
# --------------------------------------------------------------------------- #


def vertex_label(vertex: str) -> str:
    """Schema label of the field representing a vertex."""
    return f"v_{vertex}"


def transition_node_label(index: int) -> str:
    """Schema label of the control field of transition *index*."""
    return f"tr{index}"


def deadlock_to_completability(problem: DeadlockProblem) -> GuardedForm:
    """Theorem 4.6: reduce reachable deadlock to depth-1 completability.

    The resulting guarded form lies in ``F(A−, φ−, 1)`` and is completable iff
    *problem* has a reachable deadlock.
    """
    transitions = list(problem.transitions)
    vertex_labels = [vertex_label(v) for v in problem.vertices()]
    control_labels = [transition_node_label(i) for i in range(len(transitions))]
    schema = depth_one_schema(vertex_labels + control_labels)

    #: conf — no control field is present (the instance encodes a plain
    #: configuration rather than a transition in progress).
    conf = (
        lnot(disj_all(label(name) for name in control_labels))
        if control_labels
        else conj()
    )

    rules = RuleTable(schema)

    # control fields drive the synchronised moves
    for index, ((a, b), (c, d)) in enumerate(transitions):
        control = transition_node_label(index)
        rules.set_add_rule(
            control, conj(conf, label(vertex_label(a)), label(vertex_label(c)))
        )
        rules.set_delete_rule(
            control,
            conj(
                lnot(label(vertex_label(a))),
                lnot(label(vertex_label(c))),
                label(vertex_label(b)),
                label(vertex_label(d)),
            ),
        )

    # vertex fields are added/deleted under the direction of the control field
    for vertex in problem.vertices():
        added_by = []
        deleted_by = []
        for index, ((a, b), (c, d)) in enumerate(transitions):
            control = label(transition_node_label(index))
            if vertex in (b, d):
                added_by.append(control)
            if vertex in (a, c):
                deleted_by.append(control)
        field = vertex_label(vertex)
        if added_by:
            rules.set_add_rule(field, conj(lnot(label(field)), disj_all(added_by)))
        if deleted_by:
            rules.set_delete_rule(field, disj_all(deleted_by))

    # the completion formula describes a deadlock: a plain configuration in
    # which no transition pair is jointly enabled
    blockers: list[Formula] = [conf]
    for (a, _b), (c, _d) in transitions:
        blockers.append(lnot(conj(label(vertex_label(a)), label(vertex_label(c)))))
    completion = conj_all(blockers)

    initial = Instance.from_paths(schema, [vertex_label(v) for v in problem.initial])
    return GuardedForm(
        schema,
        rules,
        completion=completion,
        initial_instance=initial,
        name=(
            f"reachable-deadlock reduction ({len(problem.components)} components, "
            f"{len(transitions)} transitions)"
        ),
    )
