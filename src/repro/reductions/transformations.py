"""Guarded-form transformations (Corollary 4.2, Section 4.2, Corollary 4.7).

Three constructions in the paper relate fragments to one another:

* :func:`eliminate_deletions` (Corollary 4.2) — replaces every deletion by the
  addition of a ``deleted`` marker child, showing that undecidability does not
  hinge on deletions (at the price of one extra level of depth).
* :func:`make_completion_positive` (Section 4.2) — adds a ``final`` field whose
  addition rule is the old completion formula, turning any completion formula
  into the positive formula ``final`` while preserving both analysis
  problems.  This is why every hardness result for the ``φ−`` fragments also
  holds for ``φ+`` when the access rules are unrestricted.
* :func:`completability_to_semisoundness` (Corollary 4.7) — for depth-1 forms,
  builds a form that is semi-sound iff the original is completable, by adding
  a ``reset``/``build`` phase that can always return to the initial instance.
"""

from __future__ import annotations

from repro.core.access import RuleTable
from repro.core.canonical import canonical_depth1_state
from repro.core.formulas.ast import (
    And,
    Bottom,
    Exists,
    Filter,
    Formula,
    Not,
    Or,
    Parent,
    PathExpr,
    Slash,
    Step,
    Top,
)
from repro.core.formulas.builders import conj, conj_all, label, lnot
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.labels import fresh_label
from repro.exceptions import ReductionError


# --------------------------------------------------------------------------- #
# Corollary 4.2: eliminating deletions
# --------------------------------------------------------------------------- #


def eliminate_deletions(guarded_form: GuardedForm, marker: str = "deleted") -> GuardedForm:
    """Replace deletions by additions of a *marker* child (Corollary 4.2).

    Every non-root schema node receives a new child labelled *marker* (made
    fresh if the label is already in use).  A node carrying the marker is
    treated as absent: every label step ``l`` in every formula is rewritten to
    ``l[¬marker]``, the old deletion rule of an edge becomes the addition rule
    of its marker child, additions below a marked node are blocked, and a node
    may only be marked when all its children are already marked (mirroring the
    original leaf-only deletions).  The transformed form has no deletion
    rights at all and its depth grows by one.
    """
    marker_label = fresh_label(marker, guarded_form.schema.field_labels())

    new_schema = guarded_form.schema.copy()
    original_edges = guarded_form.schema.edges_list()
    for edge in original_edges:
        new_schema.add_field(edge.path, marker_label)

    def rewrite(formula: Formula) -> Formula:
        return _rewrite_marking(formula, marker_label)

    rules = RuleTable(new_schema)
    for edge in original_edges:
        original_add = guarded_form.rules.add_rule(edge.path)
        original_del = guarded_form.rules.delete_rule(edge.path)
        # additions of the original field: as before, but never below a node
        # that is itself marked deleted
        rules.set_add_rule(edge.path, And(rewrite(original_add), Not(label(marker_label))))
        # "deleting" the field: add the marker below it; the original rule was
        # evaluated at the parent, hence the leading ``..``; the node must not
        # be marked already and all its children must already be marked
        child_conditions: list[Formula] = []
        for child_label in guarded_form.schema.child_labels(edge.path):
            child_conditions.append(
                Not(Exists(Filter(Step(child_label), Not(label(marker_label)))))
            )
        guard = conj_all(
            [
                Exists(Filter(Parent(), rewrite(original_del))),
                Not(label(marker_label)),
                *child_conditions,
            ]
        )
        rules.set_add_rule(edge.path + (marker_label,), guard)

    initial = Instance.from_shape(new_schema, guarded_form.initial_instance().shape())
    return GuardedForm(
        new_schema,
        rules,
        completion=rewrite(guarded_form.completion),
        initial_instance=initial,
        name=f"{guarded_form.name} [deletion-free]",
    )


def _rewrite_marking(formula: Formula, marker: str) -> Formula:
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_rewrite_marking(formula.operand, marker))
    if isinstance(formula, And):
        return And(
            _rewrite_marking(formula.left, marker), _rewrite_marking(formula.right, marker)
        )
    if isinstance(formula, Or):
        return Or(
            _rewrite_marking(formula.left, marker), _rewrite_marking(formula.right, marker)
        )
    if isinstance(formula, Exists):
        return Exists(_rewrite_marking_path(formula.path, marker))
    raise ReductionError(f"cannot rewrite formula {formula!r}")


def _rewrite_marking_path(path: PathExpr, marker: str) -> PathExpr:
    if isinstance(path, Parent):
        return path
    if isinstance(path, Step):
        return Filter(path, Not(Exists(Step(marker))))
    if isinstance(path, Slash):
        return Slash(
            _rewrite_marking_path(path.left, marker),
            _rewrite_marking_path(path.right, marker),
        )
    if isinstance(path, Filter):
        return Filter(
            _rewrite_marking_path(path.path, marker),
            _rewrite_marking(path.condition, marker),
        )
    raise ReductionError(f"cannot rewrite path {path!r}")


# --------------------------------------------------------------------------- #
# Section 4.2: making the completion formula positive
# --------------------------------------------------------------------------- #


def make_completion_positive(guarded_form: GuardedForm, final_field: str = "final") -> GuardedForm:
    """Turn the completion formula into a single positive field (Section 4.2).

    A fresh *final_field* is added below the root whose addition rule is the
    original completion formula (strengthened with ``¬final`` so the field is
    added at most once, which keeps finite-state forms finite-state); the new
    completion formula is just the field itself.  Completability and
    semi-soundness are preserved because the new field is mentioned nowhere
    else, so its presence does not influence any other rule.
    """
    final_label = fresh_label(final_field, guarded_form.schema.field_labels())
    new_schema = guarded_form.schema.copy()
    new_schema.add_field((), final_label)

    rules = guarded_form.rules.copy(new_schema)
    rules.set_add_rule(final_label, And(guarded_form.completion, Not(label(final_label))))
    rules.set_delete_rule(final_label, Bottom())

    initial = Instance.from_shape(new_schema, guarded_form.initial_instance().shape())
    return GuardedForm(
        new_schema,
        rules,
        completion=label(final_label),
        initial_instance=initial,
        name=f"{guarded_form.name} [positive completion]",
    )


# --------------------------------------------------------------------------- #
# Corollary 4.7: completability -> semi-soundness (depth 1)
# --------------------------------------------------------------------------- #


def completability_to_semisoundness(
    guarded_form: GuardedForm,
    reset_field: str = "reset",
    build_field: str = "build",
) -> GuardedForm:
    """Corollary 4.7: build a form that is semi-sound iff *guarded_form* is
    completable (depth-1 forms only).

    Two phase fields are added.  Adding ``reset`` suspends the original rules
    and allows deleting every field; once the form is empty, ``build`` can be
    added, ``reset`` removed, the initial instance is rebuilt field by field,
    and ``build`` is removed when the canonical initial instance has been
    restored.  Every reachable instance can therefore return to the initial
    instance, so the new form is semi-sound exactly when the original can be
    completed from its initial instance.
    """
    if guarded_form.schema_depth() > 1:
        raise ReductionError(
            "the Corollary 4.7 construction is defined for depth-1 guarded forms"
        )
    field_labels = sorted(guarded_form.schema.field_labels())
    taken = set(field_labels)
    reset_label = fresh_label(reset_field, taken)
    taken.add(reset_label)
    build_label = fresh_label(build_field, taken)

    new_schema = guarded_form.schema.copy()
    new_schema.add_field((), reset_label)
    new_schema.add_field((), build_label)

    normal_phase = conj(lnot(label(reset_label)), lnot(label(build_label)))
    initial_state = canonical_depth1_state(guarded_form.initial_instance())

    rules = RuleTable(new_schema)
    for field in field_labels:
        original_add = guarded_form.rules.add_rule(field)
        original_del = guarded_form.rules.delete_rule(field)
        add_guard: Formula = And(original_add, normal_phase)
        if field in initial_state:
            add_guard = Or(add_guard, And(label(build_label), Not(label(field))))
        rules.set_add_rule(field, add_guard)
        rules.set_delete_rule(field, Or(And(original_del, normal_phase), label(reset_label)))

    rules.set_add_rule(reset_label, conj(lnot(label(reset_label)), lnot(label(build_label))))
    rules.set_delete_rule(reset_label, label(build_label))

    empty_of_fields = conj_all([lnot(label(field)) for field in field_labels] or [Top()])
    rules.set_add_rule(
        build_label,
        conj(label(reset_label), lnot(label(build_label)), empty_of_fields),
    )
    is_initial_again = conj_all(
        [lnot(label(reset_label))]
        + [label(field) for field in sorted(initial_state)]
        + [lnot(label(field)) for field in field_labels if field not in initial_state]
    )
    rules.set_delete_rule(build_label, is_initial_again)

    completion = conj(
        guarded_form.completion, lnot(label(reset_label)), lnot(label(build_label))
    )
    initial = Instance.from_shape(new_schema, guarded_form.initial_instance().shape())
    return GuardedForm(
        new_schema,
        rules,
        completion=completion,
        initial_instance=initial,
        name=f"{guarded_form.name} [reset/build]",
    )
