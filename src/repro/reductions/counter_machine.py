"""Two-counter machines (the source problem of Theorem 4.1).

The paper models an inputless two-counter machine as a triple ``(Q, F, δ)``
with a deterministic transition function

    ``δ : Q × {0, +} × {0, +} → Q × {−, 0, +} × {−, 0, +}``

read as: in state ``q``, with each counter tested for zero/non-zero, move to a
new state and increment/decrement/keep each counter.  The halting problem of
such machines (on empty input) is undecidable, which is what Theorem 4.1
transfers to the completability problem.

This module provides the machine model, an interpreter (the independent
oracle used to validate the reduction of :mod:`repro.reductions.two_counter`),
and a few concrete machines used by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.exceptions import ReductionError

#: Zero-test outcomes for a counter.
ZERO = "0"
POSITIVE = "+"

#: Counter actions.
DECREMENT = -1
KEEP = 0
INCREMENT = 1

#: A transition key: (state, counter-1 test, counter-2 test).
TransitionKey = tuple[str, str, str]
#: A transition effect: (next state, counter-1 action, counter-2 action).
TransitionEffect = tuple[str, int, int]


@dataclass(frozen=True)
class Configuration:
    """A configuration ``(q, n, m)`` of a two-counter machine."""

    state: str
    counter1: int
    counter2: int

    def __post_init__(self) -> None:
        if self.counter1 < 0 or self.counter2 < 0:
            raise ReductionError("counters can never become negative")

    def tests(self) -> tuple[str, str]:
        """The zero-tests ``(s1, s2)`` of the two counters."""
        return (
            POSITIVE if self.counter1 > 0 else ZERO,
            POSITIVE if self.counter2 > 0 else ZERO,
        )


@dataclass
class CounterMachineRun:
    """The result of running a machine for a bounded number of steps."""

    halted: bool
    accepted: bool
    steps: int
    final: Configuration
    trace: list[Configuration] = field(default_factory=list)


class TwoCounterMachine:
    """An inputless, deterministic two-counter machine ``(Q, F, δ)``.

    The machine halts when it reaches an accepting state, or when no
    transition is defined for the current (state, zero-test, zero-test)
    combination; only the former counts as *accepting*.  The reduction of
    Theorem 4.1 encodes "the machine eventually reaches an accepting state",
    so :meth:`run` reports both notions.
    """

    def __init__(
        self,
        states: Iterable[str],
        initial_state: str,
        accepting_states: Iterable[str],
        transitions: Mapping[TransitionKey, TransitionEffect],
    ) -> None:
        self.states = tuple(dict.fromkeys(states))
        self.initial_state = initial_state
        self.accepting_states = frozenset(accepting_states)
        self.transitions: dict[TransitionKey, TransitionEffect] = dict(transitions)
        self._validate()

    def _validate(self) -> None:
        known = set(self.states)
        if self.initial_state not in known:
            raise ReductionError(f"initial state {self.initial_state!r} is not a state")
        unknown_accepting = self.accepting_states - known
        if unknown_accepting:
            raise ReductionError(f"accepting states {sorted(unknown_accepting)} are not states")
        for (state, test1, test2), (target, act1, act2) in self.transitions.items():
            if state not in known or target not in known:
                raise ReductionError(
                    f"transition {(state, test1, test2)} -> {(target, act1, act2)} "
                    "mentions an unknown state"
                )
            if test1 not in (ZERO, POSITIVE) or test2 not in (ZERO, POSITIVE):
                raise ReductionError("zero tests must be '0' or '+'")
            if act1 not in (DECREMENT, KEEP, INCREMENT) or act2 not in (
                DECREMENT,
                KEEP,
                INCREMENT,
            ):
                raise ReductionError("counter actions must be -1, 0 or +1")
            if test1 == ZERO and act1 == DECREMENT:
                raise ReductionError(
                    "a transition cannot decrement counter 1 when it is tested zero"
                )
            if test2 == ZERO and act2 == DECREMENT:
                raise ReductionError(
                    "a transition cannot decrement counter 2 when it is tested zero"
                )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def initial_configuration(self, counter1: int = 0, counter2: int = 0) -> Configuration:
        """The starting configuration (counters default to zero, i.e. the
        empty-input halting problem of the paper)."""
        return Configuration(self.initial_state, counter1, counter2)

    def step(self, configuration: Configuration) -> Optional[Configuration]:
        """One transition, or ``None`` when the machine is stuck/accepting."""
        if configuration.state in self.accepting_states:
            return None
        key = (configuration.state,) + configuration.tests()
        effect = self.transitions.get(key)
        if effect is None:
            return None
        target, act1, act2 = effect
        return Configuration(
            target,
            configuration.counter1 + act1,
            configuration.counter2 + act2,
        )

    def run(
        self,
        max_steps: int,
        start: Optional[Configuration] = None,
        keep_trace: bool = False,
    ) -> CounterMachineRun:
        """Run for at most *max_steps* transitions.

        ``halted`` is true when the machine stopped (accepting state reached
        or no transition applicable) before the step budget ran out;
        ``accepted`` is true when it stopped in an accepting state.
        """
        current = start if start is not None else self.initial_configuration()
        trace = [current] if keep_trace else []
        for step_index in range(max_steps):
            successor = self.step(current)
            if successor is None:
                return CounterMachineRun(
                    halted=True,
                    accepted=current.state in self.accepting_states,
                    steps=step_index,
                    final=current,
                    trace=trace,
                )
            current = successor
            if keep_trace:
                trace.append(current)
        return CounterMachineRun(
            halted=current.state in self.accepting_states or self.step(current) is None,
            accepted=current.state in self.accepting_states,
            steps=max_steps,
            final=current,
            trace=trace,
        )

    def reaches_accepting_state(self, max_steps: int) -> Optional[bool]:
        """Whether the machine reaches an accepting state within *max_steps*
        transitions; ``None`` when the budget ran out without halting (the
        question is undecidable in general, so a bounded interpreter can only
        answer definitely-yes or give up)."""
        outcome = self.run(max_steps)
        if outcome.accepted:
            return True
        if outcome.halted:
            return False
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TwoCounterMachine(states={len(self.states)}, "
            f"transitions={len(self.transitions)})"
        )


# --------------------------------------------------------------------------- #
# concrete machines used by tests, examples and benchmarks
# --------------------------------------------------------------------------- #


def counting_machine(target: int) -> TwoCounterMachine:
    """A machine that increments counter 1 *target* times and then accepts.

    Halts (accepts) after exactly *target* increment transitions; used to
    check that the Theorem 4.1 reduction tracks counter values faithfully.
    """
    if target < 0:
        raise ReductionError("target must be non-negative")
    states = [f"q{i}" for i in range(target + 1)] + ["halt"]
    transitions: dict[TransitionKey, TransitionEffect] = {}
    for i in range(target):
        for test1 in (ZERO, POSITIVE):
            transitions[(f"q{i}", test1, ZERO)] = (f"q{i + 1}", INCREMENT, KEEP)
            transitions[(f"q{i}", test1, POSITIVE)] = (f"q{i + 1}", INCREMENT, KEEP)
    for test1 in (ZERO, POSITIVE):
        for test2 in (ZERO, POSITIVE):
            transitions[(f"q{target}", test1, test2)] = ("halt", KEEP, KEEP)
    return TwoCounterMachine(states, "q0", ["halt"], transitions)


def transfer_machine(initial: int) -> TwoCounterMachine:
    """A machine started with counter 1 = *initial* that moves counter 1 into
    counter 2 one unit at a time and accepts when counter 1 reaches zero.

    Exercises both the decrement and the increment gadgets of the reduction.
    Use ``two_counter_to_guarded_form(machine, initial_counter1=initial)``.
    """
    transitions: dict[TransitionKey, TransitionEffect] = {
        ("move", POSITIVE, ZERO): ("move", DECREMENT, INCREMENT),
        ("move", POSITIVE, POSITIVE): ("move", DECREMENT, INCREMENT),
        ("move", ZERO, ZERO): ("done", KEEP, KEEP),
        ("move", ZERO, POSITIVE): ("done", KEEP, KEEP),
    }
    del initial  # the starting counter value is supplied when running/reducing
    return TwoCounterMachine(["move", "done"], "move", ["done"], transitions)


def diverging_machine() -> TwoCounterMachine:
    """A machine that increments counter 1 forever and never accepts.

    Its reduction is a guarded form that is *not* completable; since the
    property is undecidable in general, only bounded exploration is possible
    and the benchmarks use this machine to demonstrate exactly that.
    """
    transitions: dict[TransitionKey, TransitionEffect] = {
        ("loop", ZERO, ZERO): ("loop", INCREMENT, KEEP),
        ("loop", POSITIVE, ZERO): ("loop", INCREMENT, KEEP),
        ("loop", ZERO, POSITIVE): ("loop", INCREMENT, KEEP),
        ("loop", POSITIVE, POSITIVE): ("loop", INCREMENT, KEEP),
    }
    return TwoCounterMachine(["loop", "halt"], "loop", ["halt"], transitions)


def collatz_like_machine() -> TwoCounterMachine:
    """A small machine with a non-trivial halting pattern: it alternately
    moves units between the counters, dropping one unit per round, and accepts
    when both counters are empty.  Used by the examples to show a machine
    whose halting is not obvious from the transition table alone."""
    transitions: dict[TransitionKey, TransitionEffect] = {
        # move counter 1 to counter 2, losing the last unit
        ("a", POSITIVE, ZERO): ("a", DECREMENT, INCREMENT),
        ("a", POSITIVE, POSITIVE): ("a", DECREMENT, INCREMENT),
        ("a", ZERO, POSITIVE): ("b", KEEP, DECREMENT),
        ("a", ZERO, ZERO): ("halt", KEEP, KEEP),
        # move counter 2 back to counter 1, losing the last unit
        ("b", ZERO, POSITIVE): ("b", INCREMENT, DECREMENT),
        ("b", POSITIVE, POSITIVE): ("b", INCREMENT, DECREMENT),
        ("b", POSITIVE, ZERO): ("a", DECREMENT, KEEP),
        ("b", ZERO, ZERO): ("halt", KEEP, KEEP),
    }
    return TwoCounterMachine(["a", "b", "halt"], "a", ["halt"], transitions)
