"""Reduction from two-counter machines to completability (Theorem 4.1).

Theorem 4.1 proves the completability and semi-soundness problems undecidable
for ``F(A−, φ−, ∞)`` (already at depth 2) by simulating an inputless
two-counter machine with a guarded form:

* a configuration ``(q, n, m)`` is represented by an instance with a child
  ``st_q`` below the root, ``n`` children labelled ``c1`` and ``m`` children
  labelled ``c2`` (the paper's ``Conf(q, n, m)``);
* every machine transition becomes a family of access rules that walk the
  instance through a *transition gadget*: a node ``t<i>`` marks the transition
  in progress, the counters are adjusted with the marking trick the paper
  describes (increment: mark all ``c1`` with ``d``, add the single unmarked
  ``c1``, unmark; decrement: mark the victim with ``d``, mark all others with
  ``dd``, unmark and delete the sole unmarked leaf, unmark the rest), the
  state child is swapped, and the gadget cleans up after itself;
* the completion formula is "some accepting state is present and no
  transition is in progress".

The guarded form is completable iff the machine eventually reaches an
accepting state — an undecidable property.  The proof sketch in the paper
gives the increment rules explicitly and describes the decrement procedure in
prose; this module completes the construction (the per-phase guards below)
and the test-suite validates it against the interpreter of
:mod:`repro.reductions.counter_machine` on machines with known behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.core.access import AccessRight, RuleTable
from repro.core.formulas.ast import Exists, Filter, Formula, Parent, Slash, Step
from repro.core.formulas.builders import (
    conj,
    conj_all,
    disj_all,
    filtered,
    label,
    lnot,
    parent_path,
)
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.exceptions import ReductionError
from repro.reductions.counter_machine import (
    Configuration,
    DECREMENT,
    INCREMENT,
    KEEP,
    POSITIVE,
    TwoCounterMachine,
)

#: Label of a state field for machine state ``q``.
def state_label(state: str) -> str:
    """Schema label used for machine state *state*."""
    return f"st_{state}"


def transition_label(index: int) -> str:
    """Schema label marking transition *index* as in progress."""
    return f"t{index}"


def _fin_label(counter: int, index: int) -> str:
    return f"fin{counter}_t{index}"


_COUNTER = {1: "c1", 2: "c2"}
_MARK = "d"
_SECOND_MARK = "dd"


class _RuleAccumulator:
    """Collects per-edge disjuncts and assembles the final rule table."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._disjuncts: dict[tuple[AccessRight, str], list[Formula]] = {}

    def allow(self, right: AccessRight, edge: str, guard: Formula) -> None:
        self._disjuncts.setdefault((right, edge), []).append(guard)

    def build(self) -> RuleTable:
        table = RuleTable(self.schema)
        for (right, edge), guards in self._disjuncts.items():
            table.set_rule(right, edge, disj_all(guards))
        return table


def two_counter_to_guarded_form(
    machine: TwoCounterMachine,
    initial_counter1: int = 0,
    initial_counter2: int = 0,
) -> GuardedForm:
    """Build the guarded form of Theorem 4.1 for *machine*.

    The initial instance encodes the configuration
    ``(machine.initial_state, initial_counter1, initial_counter2)`` — the
    paper starts from the empty input, i.e. both counters zero, but the tests
    also exercise non-zero starts.

    The resulting guarded form is completable iff the machine eventually
    reaches an accepting state from that configuration.
    """
    transitions = sorted(machine.transitions.items())
    transition_indices = list(range(len(transitions)))

    schema = _build_schema(machine, transition_indices)
    rules = _RuleAccumulator(schema)

    all_transition_labels = [transition_label(i) for i in transition_indices]
    cleanliness = _cleanliness_formula(transition_indices)

    for index, ((source, test1, test2), (target, act1, act2)) in enumerate(transitions):
        t_label = transition_label(index)
        fin1 = _fin_label(1, index)
        fin2 = _fin_label(2, index)

        # -- initiation: only from a clean configuration matching the tests --
        sigma1 = label(_COUNTER[1]) if test1 == POSITIVE else lnot(label(_COUNTER[1]))
        sigma2 = label(_COUNTER[2]) if test2 == POSITIVE else lnot(label(_COUNTER[2]))
        no_other_transition = conj_all(
            lnot(label(other)) for other in all_transition_labels
        )
        rules.allow(
            AccessRight.ADD,
            t_label,
            conj(label(state_label(source)), sigma1, sigma2, no_other_transition, cleanliness),
        )

        # -- counter gadgets ------------------------------------------------
        _counter_rules(rules, counter=1, index=index, action=act1)
        _counter_rules(rules, counter=2, index=index, action=act2)

        # -- state switch -----------------------------------------------------
        gadget_done = conj(
            label(fin1),
            label(fin2),
            lnot(label("m1")),
            lnot(label("m2")),
            _counters_unmarked(),
        )
        if target != source:
            rules.allow(
                AccessRight.ADD,
                state_label(target),
                conj(label(t_label), gadget_done, lnot(label(state_label(target)))),
            )
            rules.allow(
                AccessRight.DEL,
                state_label(source),
                conj(label(t_label), label(state_label(target))),
            )
            switched = conj(label(state_label(target)), lnot(label(state_label(source))))
        else:
            switched = label(state_label(target))

        # -- cleanup ----------------------------------------------------------
        # The gadget node is removed once both counters are done (their fin
        # flags are present and all marks are cleaned up) and the state has
        # been switched; the leftover fin flags are removed afterwards (they
        # merely block the next transition's initiation until deleted).
        rules.allow(
            AccessRight.DEL,
            t_label,
            conj(switched, gadget_done),
        )
        rules.allow(AccessRight.DEL, fin1, lnot(label(t_label)))
        rules.allow(AccessRight.DEL, fin2, lnot(label(t_label)))

    completion = disj_all(
        conj(
            label(state_label(state)),
            conj_all(lnot(label(other)) for other in all_transition_labels),
        )
        for state in sorted(machine.accepting_states)
    )

    initial = _initial_instance(schema, machine, initial_counter1, initial_counter2)
    return GuardedForm(
        schema,
        rules.build(),
        completion=completion,
        initial_instance=initial,
        name=f"two-counter simulation ({len(machine.states)} states, "
        f"{len(transitions)} transitions)",
    )


# --------------------------------------------------------------------------- #
# construction helpers
# --------------------------------------------------------------------------- #


def _build_schema(machine: TwoCounterMachine, transition_indices: list[int]) -> Schema:
    fields: dict[str, dict] = {}
    for state in machine.states:
        fields[state_label(state)] = {}
    fields[_COUNTER[1]] = {_MARK: {}, _SECOND_MARK: {}}
    fields[_COUNTER[2]] = {_MARK: {}, _SECOND_MARK: {}}
    fields["m1"] = {}
    fields["m2"] = {}
    for index in transition_indices:
        fields[transition_label(index)] = {}
        fields[_fin_label(1, index)] = {}
        fields[_fin_label(2, index)] = {}
    return Schema.from_dict(fields)


def _initial_instance(
    schema: Schema, machine: TwoCounterMachine, counter1: int, counter2: int
) -> Instance:
    if counter1 < 0 or counter2 < 0:
        raise ReductionError("initial counter values must be non-negative")
    instance = Instance.empty(schema)
    instance.add_field(instance.root, state_label(machine.initial_state))
    for _ in range(counter1):
        instance.add_field(instance.root, _COUNTER[1])
    for _ in range(counter2):
        instance.add_field(instance.root, _COUNTER[2])
    return instance


def _counters_unmarked() -> Formula:
    """No counter node carries a mark (evaluated at the root)."""
    return conj(
        lnot(filtered(_COUNTER[1], disj_all([label(_MARK), label(_SECOND_MARK)]))),
        lnot(filtered(_COUNTER[2], disj_all([label(_MARK), label(_SECOND_MARK)]))),
    )


def _cleanliness_formula(transition_indices: list[int]) -> Formula:
    """No gadget artefacts are present (evaluated at the root)."""
    parts: list[Formula] = [lnot(label("m1")), lnot(label("m2")), _counters_unmarked()]
    for index in transition_indices:
        parts.append(lnot(label(_fin_label(1, index))))
        parts.append(lnot(label(_fin_label(2, index))))
    return conj_all(parts)


def _counter_rules(rules: _RuleAccumulator, counter: int, index: int, action: int) -> None:
    """Install the per-transition rules adjusting one counter."""
    t_label = transition_label(index)
    counter_label = _COUNTER[counter]
    mark_edge = f"{counter_label}/{_MARK}"
    second_mark_edge = f"{counter_label}/{_SECOND_MARK}"
    m_label = f"m{counter}"
    fin = _fin_label(counter, index)

    all_marked = lnot(filtered(counter_label, lnot(label(_MARK))))
    some_unmarked = filtered(counter_label, lnot(label(_MARK)))
    any_first_mark = filtered(counter_label, label(_MARK))
    any_second_mark = filtered(counter_label, label(_SECOND_MARK))

    if action == KEEP:
        rules.allow(AccessRight.ADD, fin, conj(label(t_label), lnot(label(fin))))
        return

    if action == INCREMENT:
        # 1. mark every existing counter node
        rules.allow(
            AccessRight.ADD,
            mark_edge,
            conj(
                parent_path(1, t_label),
                lnot(parent_path(1, m_label)),
                lnot(parent_path(1, fin)),
                lnot(label(_MARK)),
            ),
        )
        # 2. declare marking finished
        rules.allow(
            AccessRight.ADD,
            m_label,
            conj(label(t_label), lnot(label(m_label)), lnot(label(fin)), all_marked),
        )
        # 3. add exactly one new (unmarked) counter node
        rules.allow(
            AccessRight.ADD,
            counter_label,
            conj(label(t_label), label(m_label), lnot(label(fin)), all_marked),
        )
        # 4. declare the increment finished once the unmarked node exists
        rules.allow(
            AccessRight.ADD,
            fin,
            conj(label(t_label), label(m_label), lnot(label(fin)), some_unmarked),
        )
        # 5. remove the marks and the marking flag
        rules.allow(
            AccessRight.DEL,
            mark_edge,
            conj(parent_path(1, t_label), parent_path(1, fin)),
        )
        rules.allow(
            AccessRight.DEL,
            m_label,
            conj(label(t_label), label(fin), lnot(any_first_mark)),
        )
        return

    # "some sibling counter node carries the (first / second) mark", evaluated
    # at a counter node itself: ../c[mark]
    sibling_first_mark = Exists(
        Slash(Parent(), Filter(Step(counter_label), label(_MARK)))
    )
    sibling_second_mark = Exists(
        Slash(Parent(), Filter(Step(counter_label), label(_SECOND_MARK)))
    )

    if action == DECREMENT:
        # 1. mark exactly one counter node with the first mark
        rules.allow(
            AccessRight.ADD,
            mark_edge,
            conj(
                parent_path(1, t_label),
                lnot(sibling_first_mark),
                lnot(sibling_second_mark),
                lnot(parent_path(1, m_label)),
                lnot(parent_path(1, fin)),
                lnot(label(_MARK)),
            ),
        )
        # 2. mark every other counter node with the second mark
        rules.allow(
            AccessRight.ADD,
            second_mark_edge,
            conj(
                parent_path(1, t_label),
                sibling_first_mark,
                lnot(parent_path(1, m_label)),
                lnot(parent_path(1, fin)),
                lnot(label(_MARK)),
                lnot(label(_SECOND_MARK)),
            ),
        )
        # 3. declare marking finished (every node carries one of the marks)
        rules.allow(
            AccessRight.ADD,
            m_label,
            conj(
                label(t_label),
                any_first_mark,
                lnot(
                    filtered(
                        counter_label,
                        conj(lnot(label(_MARK)), lnot(label(_SECOND_MARK))),
                    )
                ),
                lnot(label(m_label)),
                lnot(label(fin)),
            ),
        )
        # 4. unmark the victim…
        rules.allow(
            AccessRight.DEL,
            mark_edge,
            conj(parent_path(1, t_label), parent_path(1, m_label)),
        )
        # 5. …and delete it (it is the only counter leaf: all others carry dd)
        rules.allow(
            AccessRight.DEL,
            counter_label,
            conj(label(t_label), label(m_label), lnot(any_first_mark), lnot(label(fin))),
        )
        # 6. declare the decrement finished (every remaining node carries dd)
        rules.allow(
            AccessRight.ADD,
            fin,
            conj(
                label(t_label),
                label(m_label),
                lnot(any_first_mark),
                lnot(filtered(counter_label, lnot(label(_SECOND_MARK)))),
                lnot(label(fin)),
            ),
        )
        # 7. remove the second marks and the marking flag
        rules.allow(
            AccessRight.DEL,
            second_mark_edge,
            conj(parent_path(1, t_label), parent_path(1, fin)),
        )
        rules.allow(
            AccessRight.DEL,
            m_label,
            conj(
                label(t_label),
                label(fin),
                lnot(any_first_mark),
                lnot(any_second_mark),
            ),
        )
        return

    raise ReductionError(f"unknown counter action {action!r}")


# --------------------------------------------------------------------------- #
# decoding
# --------------------------------------------------------------------------- #


def configuration_of_instance(
    instance: Instance, machine: TwoCounterMachine
) -> Optional[Configuration]:
    """Decode the machine configuration represented by *instance*.

    Returns ``None`` when the instance is not a *clean* configuration (a
    transition gadget is in progress, marks are present, or the state child is
    missing or ambiguous).  Used by the validation tests to compare the
    reachable clean instances of the reduction with the interpreter's trace.
    """
    root = instance.root
    states_present = [
        state
        for state in machine.states
        if root.has_child_with_label(state_label(state))
    ]
    if len(states_present) != 1:
        return None
    for child in root.children:
        if child.label.startswith("t") and child.label[1:].isdigit():
            return None
        if child.label in ("m1", "m2"):
            return None
        if child.label.startswith("fin"):
            return None
        if child.label in (_COUNTER[1], _COUNTER[2]) and child.children:
            return None
    counter1 = len(root.children_with_label(_COUNTER[1]))
    counter2 = len(root.children_with_label(_COUNTER[2]))
    return Configuration(states_present[0], counter1, counter2)
