"""The paper's reductions, together with the source-problem substrates.

Every hardness result in the paper is established by a reduction; this
package makes each of them executable and pairs it with an independent
implementation of the source problem so the reductions can be validated end
to end:

===========================  =================================================
paper result                 modules
===========================  =================================================
Theorem 4.1 / Corollary 4.2  :mod:`repro.reductions.counter_machine` (two-
                             counter machines + interpreter),
                             :mod:`repro.reductions.two_counter` (reduction to
                             completability / semi-soundness)
Theorem 5.1 / Theorem 5.6    :mod:`repro.logic` (CNF + DPLL),
                             :mod:`repro.reductions.sat_reductions`
Corollary 4.5 / Theorem 5.3  :mod:`repro.logic.qbf` (QBF + evaluator),
                             :mod:`repro.reductions.qsat_reductions`
Theorem 4.6                  :mod:`repro.reductions.deadlock` (reachable
                             deadlock problem + checker + reduction)
Corollary 4.2, §4.2,         :mod:`repro.reductions.transformations`
Corollary 4.7                (deletion elimination, positive completion,
                             completability → semi-soundness)
===========================  =================================================
"""

from repro.reductions.counter_machine import (
    CounterMachineRun,
    TwoCounterMachine,
    counting_machine,
    diverging_machine,
    transfer_machine,
)
from repro.reductions.deadlock import (
    DeadlockProblem,
    deadlock_reachable,
    deadlock_to_completability,
    random_deadlock_problem,
)
from repro.reductions.qsat_reductions import (
    qbf_to_satisfiability_formula,
    qsat2k_to_semisoundness,
)
from repro.reductions.sat_reductions import (
    sat_to_completability,
    sat_to_non_semisoundness,
)
from repro.reductions.transformations import (
    completability_to_semisoundness,
    eliminate_deletions,
    make_completion_positive,
)
from repro.reductions.two_counter import (
    configuration_of_instance,
    two_counter_to_guarded_form,
)

__all__ = [
    "TwoCounterMachine",
    "CounterMachineRun",
    "counting_machine",
    "diverging_machine",
    "transfer_machine",
    "two_counter_to_guarded_form",
    "configuration_of_instance",
    "sat_to_completability",
    "sat_to_non_semisoundness",
    "qbf_to_satisfiability_formula",
    "qsat2k_to_semisoundness",
    "DeadlockProblem",
    "deadlock_reachable",
    "deadlock_to_completability",
    "random_deadlock_problem",
    "eliminate_deletions",
    "make_completion_positive",
    "completability_to_semisoundness",
]
