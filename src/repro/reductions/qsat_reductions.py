"""QBF reductions (Corollary 4.5 and Theorem 5.3).

* :func:`qbf_to_satisfiability_formula` — the Corollary 4.5 construction: a
  quantified Boolean formula with one variable per (alternating) quantifier
  block is true iff a certain path formula is satisfiable.  This establishes
  PSPACE-hardness of formula satisfiability; the encoding follows the paper's
  worked example for ``∃x∀y∃z (x ∨ y ∧ ¬z)``.

* :func:`qsat2k_to_semisoundness` — the Theorem 5.3 construction: a QSAT₂ₖ
  instance (``∃X₁∀Y₁…∃Xₖ∀Yₖ ψ`` with equal-sized blocks) is true iff the
  constructed guarded form — which lies in ``F(A+, φ−, k)`` — is **not**
  semi-sound.  This establishes Π₂ᵏ-hardness of semi-soundness for positive
  access rules at depth ``k`` (and PSPACE-hardness at unbounded depth,
  Corollary 5.4, since the construction is uniform in ``k``).
"""

from __future__ import annotations

from repro.core.access import RuleTable
from repro.core.formulas.ast import (
    And,
    Exists,
    Filter,
    Formula,
    Not,
    Or,
    Parent,
    PathExpr,
    Slash,
    Step,
    Top,
)
from repro.core.formulas.builders import conj_all, disj_all, iff, label
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.exceptions import ReductionError
from repro.logic.propositional import (
    CnfFormula,
    PropAnd,
    PropAtom,
    PropFalse,
    PropFormula,
    PropNot,
    PropOr,
    PropTrue,
)
from repro.logic.qbf import QBF


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #


def _steps_path(steps: list[PathExpr]) -> PathExpr:
    if not steps:
        raise ReductionError("empty path")
    path = steps[0]
    for step in steps[1:]:
        path = Slash(path, step)
    return path


def _ancestor_then(levels: int, label_name: str) -> PathExpr:
    """The path ``../../…/label`` with *levels* parent steps (0 = just the label)."""
    steps: list[PathExpr] = [Parent() for _ in range(levels)]
    steps.append(Step(label_name))
    return _steps_path(steps)


def _matrix_to_formula(matrix: "PropFormula | CnfFormula", mapping: dict[str, PathExpr]) -> Formula:
    """Translate a propositional matrix into a guarded-form formula, replacing
    each variable by the path expression *mapping* assigns to it."""
    prop = matrix.to_formula() if isinstance(matrix, CnfFormula) else matrix
    return _prop_to_formula(prop, mapping)


def _prop_to_formula(prop: PropFormula, mapping: dict[str, PathExpr]) -> Formula:
    if isinstance(prop, PropTrue):
        return Top()
    if isinstance(prop, PropFalse):
        return Not(Top())
    if isinstance(prop, PropAtom):
        try:
            return Exists(mapping[prop.name])
        except KeyError as exc:
            raise ReductionError(f"no path mapping for variable {prop.name!r}") from exc
    if isinstance(prop, PropNot):
        return Not(_prop_to_formula(prop.operand, mapping))
    if isinstance(prop, PropAnd):
        return And(
            _prop_to_formula(prop.left, mapping), _prop_to_formula(prop.right, mapping)
        )
    if isinstance(prop, PropOr):
        return Or(
            _prop_to_formula(prop.left, mapping), _prop_to_formula(prop.right, mapping)
        )
    raise ReductionError(f"cannot translate propositional formula {prop!r}")


# --------------------------------------------------------------------------- #
# Corollary 4.5: QBF -> formula satisfiability
# --------------------------------------------------------------------------- #


def assignment_node_label(level: int) -> str:
    """Label of the assignment node for quantifier level *level* (1-based)."""
    return f"asg{level}"


def qbf_to_satisfiability_formula(qbf: QBF) -> Formula:
    """Corollary 4.5: encode the truth of *qbf* as formula satisfiability.

    The QBF must be in prenex form with strictly alternating single-variable
    blocks starting with ``∃`` (the shape of the paper's example); use several
    variables per block by currying them into consecutive blocks of the same
    quantifier — the construction only relies on the nesting order.

    Assignments for the level-*i* variable are encoded by ``asg{i}`` nodes: an
    ``asg{i}`` node with a child labelled by the variable name represents
    "true", one without represents "false".  The resulting formula is
    satisfiable (by some node of some tree) iff the QBF evaluates to true.
    """
    if not qbf.blocks:
        raise ReductionError("the QBF needs at least one quantifier block")
    for block in qbf.blocks:
        if len(block.variables) != 1:
            raise ReductionError(
                "qbf_to_satisfiability_formula expects one variable per block; "
                "split larger blocks into consecutive blocks of the same quantifier"
            )
    if qbf.blocks[0].quantifier != "exists":
        raise ReductionError("the outermost block must be existential")

    levels = len(qbf.blocks)
    variables = [block.variables[0] for block in qbf.blocks]
    quantifiers = [block.quantifier for block in qbf.blocks]

    conjuncts: list[Formula] = []

    # (4.1)-style conjunct: along every full chain of assignment nodes the
    # substituted matrix holds.
    mapping = {
        variables[i]: _ancestor_then(levels - (i + 1), variables[i])
        for i in range(levels)
    }
    matrix_formula = _matrix_to_formula(qbf.matrix, mapping)
    full_chain = _steps_path([Step(assignment_node_label(i + 1)) for i in range(levels)])
    conjuncts.append(Not(Exists(Filter(full_chain, Not(matrix_formula)))))

    # per-level structure: existential levels make one consistent choice,
    # universal levels provide both choices — each requirement quantified over
    # every chain of assignment nodes above it ((4.2)–(4.4) in the paper).
    for index in range(levels):
        level = index + 1
        variable = variables[index]
        node_label = assignment_node_label(level)
        if quantifiers[index] == "exists":
            requirement: Formula = iff(
                Exists(Slash(Step(node_label), Step(variable))),
                Not(Exists(Filter(Step(node_label), Not(label(variable))))),
            )
        else:
            # both truth values must be represented by some assignment node
            requirement = And(
                Exists(Filter(Step(node_label), label(variable))),
                Exists(Filter(Step(node_label), Not(label(variable)))),
            )
        conjuncts.append(_quantify_over_prefix(index, requirement))

    return conj_all(conjuncts)


def _quantify_over_prefix(level_index: int, requirement: Formula) -> Formula:
    """Require *requirement* at every node reached by the chain of assignment
    nodes above *level_index* (at the evaluation node itself for level 0)."""
    if level_index == 0:
        return requirement
    prefix = _steps_path(
        [Step(assignment_node_label(i + 1)) for i in range(level_index)]
    )
    return Not(Exists(Filter(prefix, Not(requirement))))


# --------------------------------------------------------------------------- #
# Theorem 5.3: QSAT_2k -> semi-soundness
# --------------------------------------------------------------------------- #


def forall_label(level: int) -> str:
    """Label of the ``∀``-assignment container node for universal block *level*."""
    return f"forall{level}"


def qsat2k_to_semisoundness(qbf: QBF) -> GuardedForm:
    """Theorem 5.3: reduce a QSAT₂ₖ instance to (non-)semi-soundness.

    The QBF must have ``2k`` strictly alternating blocks starting with ``∃``.
    The resulting guarded form has schema depth ``k``, positive access rules
    and an unrestricted completion formula; it is **not** semi-sound iff the
    QBF is true.
    """
    blocks = qbf.blocks
    if len(blocks) % 2 != 0 or not blocks:
        raise ReductionError("QSAT_2k needs an even, positive number of blocks")
    if not qbf.starts_with_exists() or not qbf.is_strictly_alternating():
        raise ReductionError("QSAT_2k blocks must strictly alternate starting with ∃")
    k = len(blocks) // 2
    exist_blocks = [blocks[2 * i].variables for i in range(k)]
    forall_blocks = [blocks[2 * i + 1].variables for i in range(k)]

    # ---- schema -----------------------------------------------------------
    # root: uc, X¹ variables, Yᵏ variables, and the ∀¹ container; each ∀ⁱ
    # container holds Xⁱ⁺¹, Yⁱ and the next container.
    def container_dict(level: int) -> dict:
        children: dict[str, dict] = {}
        for variable in exist_blocks[level]:
            children[variable] = {}
        for variable in forall_blocks[level - 1]:
            children[variable] = {}
        if level < k - 1:
            children[forall_label(level + 1)] = container_dict(level + 1)
        return children

    root_children: dict[str, dict] = {"uc": {}}
    for variable in exist_blocks[0]:
        root_children[variable] = {}
    for variable in forall_blocks[k - 1]:
        root_children[variable] = {}
    if k >= 2:
        root_children[forall_label(1)] = container_dict(1)
    schema = Schema.from_dict(root_children)

    # ---- access rules -------------------------------------------------------
    rules = RuleTable(schema)
    last_universal = set(forall_blocks[k - 1])
    for edge in schema.edges_list():
        target = edge.label
        if target == "uc" and edge.depth == 1:
            rules.set_add_rule(edge, label("uc"))
            rules.set_delete_rule(edge, Top())
            continue
        if edge.depth == 1 and target in last_universal:
            rules.set_add_rule(edge, Top())
            rules.set_delete_rule(edge, Top())
            continue
        # everything else: allowed while uc is present at the root
        parent_depth = edge.depth - 1
        if parent_depth == 0:
            guard: Formula = label("uc")
        else:
            guard = Exists(_ancestor_then(parent_depth, "uc"))
        rules.set_add_rule(edge, guard)
        rules.set_delete_rule(edge, guard)

    # ---- completion formula -------------------------------------------------
    disjuncts: list[Formula] = [label("uc")]

    # "some ∀ⁱ⁻¹ context misses an assignment of the i-th universal block":
    # reaching a chain ∀¹/…/∀ⁱ⁻¹ whose node has no ∀ⁱ child agreeing with the
    # values currently encoded in the root's Yᵏ fields.
    for i in range(1, k):  # i = 1 .. k-1 (there is no ∀ᵏ container)
        eta = conj_all(
            iff(
                label(variable),
                Exists(_ancestor_then(i, last_variable)),
            )
            for variable, last_variable in zip(
                forall_blocks[i - 1], forall_blocks[k - 1]
            )
        )
        inner = Not(Exists(Filter(Step(forall_label(i)), eta)))
        if i == 1:
            disjuncts.append(inner)
        else:
            prefix = _steps_path([Step(forall_label(j)) for j in range(1, i)])
            disjuncts.append(Exists(Filter(prefix, inner)))

    # "the matrix is falsified at the deepest context"
    mapping: dict[str, PathExpr] = {}
    for i in range(k):
        for variable in exist_blocks[i]:
            mapping[variable] = _ancestor_then(k - (i + 1), variable)
    for i in range(k - 1):
        for variable in forall_blocks[i]:
            mapping[variable] = _ancestor_then(k - 1 - (i + 1), variable)
    for variable in forall_blocks[k - 1]:
        mapping[variable] = _ancestor_then(k - 1, variable)
    negated_matrix = Not(_matrix_to_formula(qbf.matrix, mapping))
    if k == 1:
        disjuncts.append(negated_matrix)
    else:
        prefix = _steps_path([Step(forall_label(j)) for j in range(1, k)])
        disjuncts.append(Exists(Filter(prefix, negated_matrix)))

    completion = disj_all(disjuncts)

    initial = Instance.empty(schema)
    initial.add_field(initial.root, "uc")
    return GuardedForm(
        schema,
        rules,
        completion=completion,
        initial_instance=initial,
        name=f"QSAT_2k semi-soundness reduction (k={k}, block size {len(exist_blocks[0])})",
    )
