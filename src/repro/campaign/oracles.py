"""Differential oracles a campaign runs every generated form through.

Each oracle re-executes a form's exploration down a different engine path and
checks the result against the plain serial reference — every generated form
is a differential test case, and a disagreement is a bug surfaced by the
campaign rather than by a hand-written regression test:

``legacy``
    the unified engine vs the pre-engine reference explorers
    (:func:`~repro.analysis.statespace.legacy_explore_depth1` /
    :func:`~repro.analysis.statespace.legacy_explore_bounded`);
``serial-parallel``
    bit-identity of a ``workers=2`` :class:`ParallelExplorationEngine` run —
    state ids *and* node-id-exact transitions;
``resume``
    kill-and-resume: the exploration is repeatedly interrupted by a step
    budget, each continuation in a fresh engine + store handle (standing in
    for a fresh process), and must converge to the uninterrupted graph;
``budget``
    ``resident_budget``-bounded store-backed run vs the unbounded reference;
``codec``
    the pure-Python codec vs the C-accelerated one (trivially agreeing, with
    a note, when the accelerator is unavailable);
``cache``
    cold and warm runs against one shared KV cache (:mod:`repro.cache`) vs
    the uncached reference — the cache must be a pure observer.

Oracles receive a shared :class:`ExecutionContext` so the serial reference
(and the depth-1 canonical graph, where the form allows one) is computed once
per form no matter how many oracles consume it.  ``resolve_stack`` maps the
CLI's comma-separated oracle names to instances; the campaign runner treats
any object with ``name`` / ``sample_every`` / ``check`` as an oracle, which
is how the triage tests inject a deliberately-wrong one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.analysis.completability import decide_completability
from repro.analysis.results import ExplorationLimits
from repro.cache import MemoryKV, use_cache
from repro.core.guarded_form import GuardedForm
from repro.engine import ExplorationEngine, ParallelExplorationEngine, SqliteStore
from repro.engine import _codec
from repro.exceptions import CampaignError, ExplorationInterrupted


@dataclass
class OracleOutcome:
    """One oracle's verdict on one form."""

    oracle: str
    agree: bool
    detail: str = ""


def exact_edges(graph) -> dict:
    """Node-id-exact transition lists of an engine graph (bit-identity key)."""
    return {
        source: [
            (
                type(update).__name__,
                getattr(update, "parent_id", None),
                getattr(update, "node_id", None),
                getattr(update, "label", None),
                target,
            )
            for update, target in edges
        ]
        for source, edges in graph.transitions.items()
    }


def engine_graphs_identical(graph, reference) -> bool:
    """Whether two engine graphs are bit-identical (ids and exact edges)."""
    return graph.states == reference.states and exact_edges(graph) == exact_edges(
        reference
    )


def depth1_transition_sets(graph) -> dict:
    return {
        state: {(t.kind, t.label, t.target) for t in transitions}
        for state, transitions in graph.transitions.items()
    }


@dataclass
class ExecutionContext:
    """Everything the oracle stack shares about one form's execution.

    The serial reference ``explore()`` run and (for depth-1 forms) the
    exhaustive canonical graph are computed lazily and memoized: the first
    oracle that needs one pays for it, later oracles reuse it.
    """

    form: GuardedForm
    kind: str  # "depth1" | "bounded"
    limits: ExplorationLimits
    workdir: Optional[Path] = None  # scratch dir for store-backed oracles
    _reference: Optional[object] = field(default=None, repr=False)
    _reference_engine: Optional[ExplorationEngine] = field(default=None, repr=False)
    _depth1_graph: Optional[object] = field(default=None, repr=False)
    _depth1_engine: Optional[ExplorationEngine] = field(default=None, repr=False)
    reference_seconds: float = 0.0
    depth1_seconds: float = 0.0

    def reference(self):
        """The serial in-memory ``explore()`` graph (the parity baseline)."""
        if self._reference is None:
            self._reference_engine = ExplorationEngine(self.form, limits=self.limits)
            started = time.perf_counter()
            self._reference = self._reference_engine.explore()
            self.reference_seconds = time.perf_counter() - started
        return self._reference

    def reference_engine(self) -> ExplorationEngine:
        self.reference()
        return self._reference_engine

    def depth1_graph(self):
        """The exhaustive canonical depth-1 graph (depth-1 forms only)."""
        if self._depth1_graph is None:
            self._depth1_engine = ExplorationEngine(self.form)
            started = time.perf_counter()
            self._depth1_graph = self._depth1_engine.explore_depth1()
            self.depth1_seconds = time.perf_counter() - started
        return self._depth1_graph

    def depth1_engine(self) -> ExplorationEngine:
        self.depth1_graph()
        return self._depth1_engine

    def store_path(self, tag: str) -> Path:
        if self.workdir is None:
            raise CampaignError("store-backed oracles need an execution workdir")
        self.workdir.mkdir(parents=True, exist_ok=True)
        return self.workdir / f"{tag}.db"


class Oracle:
    """Base class: a named differential check over an :class:`ExecutionContext`.

    ``sample_every``: the runner applies the oracle to every Nth spec of the
    campaign queue (deterministically, by spec index) — expensive oracles can
    be sampled under ``--smoke`` without losing reproducibility.
    """

    name = "oracle"
    sample_every = 1

    def check(self, ctx: ExecutionContext) -> OracleOutcome:  # pragma: no cover
        raise NotImplementedError

    def _agree(self, detail: str = "") -> OracleOutcome:
        return OracleOutcome(self.name, True, detail)

    def _disagree(self, detail: str) -> OracleOutcome:
        return OracleOutcome(self.name, False, detail)


class LegacyOracle(Oracle):
    """Engine exploration vs the pre-engine reference explorers."""

    name = "legacy"

    def check(self, ctx: ExecutionContext) -> OracleOutcome:
        from repro.analysis.statespace import (
            legacy_explore_bounded,
            legacy_explore_depth1,
        )

        if ctx.kind == "depth1":
            graph = ctx.depth1_graph()
            legacy = legacy_explore_depth1(ctx.form)
            if graph.states != legacy.states:
                return self._disagree(
                    f"engine explored {len(graph.states)} canonical states, "
                    f"legacy {len(legacy.states)}"
                )
            if depth1_transition_sets(graph) != depth1_transition_sets(legacy):
                return self._disagree("depth-1 transition sets differ from legacy")
            return self._agree()
        graph = ctx.reference()
        legacy = legacy_explore_bounded(ctx.form, limits=ctx.limits)
        engine_shapes = {graph.shape_of(s) for s in graph.states}
        if engine_shapes != legacy.states:
            return self._disagree(
                f"engine explored {len(engine_shapes)} shapes, legacy "
                f"{len(legacy.states)}"
            )
        return self._agree()


class SerialParallelOracle(Oracle):
    """Serial vs ``--workers 2`` bit-identity (the PR 3 contract)."""

    name = "serial-parallel"
    workers = 2

    def check(self, ctx: ExecutionContext) -> OracleOutcome:
        reference = ctx.reference()
        engine = ParallelExplorationEngine(
            ctx.form, limits=ctx.limits, workers=self.workers, min_wave=1
        )
        try:
            graph = engine.explore()
        finally:
            engine.shutdown_workers()
        if not engine_graphs_identical(graph, reference):
            return self._disagree(
                f"parallel graph diverged from serial ({len(graph.states)} vs "
                f"{len(reference.states)} states)"
            )
        return self._agree()


class ResumeOracle(Oracle):
    """Cold run vs kill-and-resume through a persistent store."""

    name = "resume"

    def check(self, ctx: ExecutionContext) -> OracleOutcome:
        reference = ctx.reference()
        step = max(9, len(reference.states) // 3)
        path = ctx.store_path("resume")
        graph = None
        rounds = 0
        while graph is None:
            rounds += 1
            if rounds > 200:
                return self._disagree("kill-and-resume loop failed to converge")
            engine = ExplorationEngine(
                ctx.form,
                limits=ctx.limits,
                store=SqliteStore(path),
                checkpoint_every=step,
            )
            try:
                graph = engine.explore(resume=True, step_limit=step)
            except ExplorationInterrupted:
                pass
            engine.store.close()
        if not engine_graphs_identical(graph, reference):
            return self._disagree(
                f"resumed graph diverged after {rounds} interruptions "
                f"({len(graph.states)} vs {len(reference.states)} states)"
            )
        return self._agree(f"{rounds} interruptions")


class BudgetOracle(Oracle):
    """Unbudgeted vs ``--resident-budget`` parity (the PR 5 contract)."""

    name = "budget"

    def check(self, ctx: ExecutionContext) -> OracleOutcome:
        reference = ctx.reference()
        budget = max(4, len(reference.states) // 4)
        store = SqliteStore(ctx.store_path("budget"), binary_shapes=True, binary_guards=True)
        engine = ExplorationEngine(
            ctx.form, limits=ctx.limits, store=store, resident_budget=budget
        )
        graph = engine.explore()
        store.close()
        if not engine_graphs_identical(graph, reference):
            return self._disagree(
                f"resident_budget={budget} run diverged from unbounded "
                f"({len(graph.states)} vs {len(reference.states)} states)"
            )
        return self._agree(f"budget {budget}")


class CodecOracle(Oracle):
    """Pure-Python vs C-accelerated codec bit-identity (the PR 6 contract)."""

    name = "codec"

    def check(self, ctx: ExecutionContext) -> OracleOutcome:
        if not _codec.ACCELERATED or _codec.is_pure():
            return self._agree("accelerator unavailable; pure-only host")
        reference = ctx.reference()
        store = SqliteStore(ctx.store_path("codec"), binary_shapes=True, binary_guards=True)
        engine = ExplorationEngine(ctx.form, limits=ctx.limits, store=store)
        was_pure = _codec.set_pure(True)
        try:
            graph = engine.explore()
        finally:
            _codec.set_pure(was_pure)
        store.close()
        if not engine_graphs_identical(graph, reference):
            return self._disagree("pure-codec graph diverged from accelerated")
        return self._agree()


class CacheOracle(Oracle):
    """Cached vs uncached exploration bit-identity (the PR 10 contract).

    Runs the form twice under one shared in-memory KV — cold, then warm, so
    the second run's guard probes are served by the cache — and requires both
    graphs node-id-exact against the uncached serial reference.
    """

    name = "cache"

    def check(self, ctx: ExecutionContext) -> OracleOutcome:
        reference = ctx.reference()
        kv = MemoryKV()
        with use_cache(kv):
            cold = ExplorationEngine(ctx.form, limits=ctx.limits).explore()
            warm_engine = ExplorationEngine(ctx.form, limits=ctx.limits)
            warm = warm_engine.explore()
        if not engine_graphs_identical(cold, reference):
            return self._disagree("cold cached graph diverged from uncached")
        if not engine_graphs_identical(warm, reference):
            return self._disagree("warm cached graph diverged from uncached")
        kv_hits = warm_engine.guards.kv_hits
        return self._agree(f"{kv_hits} warm guard probes served by the KV")


#: Registry keyed by oracle name (the ``--oracles`` vocabulary).
ORACLES: dict[str, type] = {
    oracle.name: oracle
    for oracle in (
        LegacyOracle,
        SerialParallelOracle,
        ResumeOracle,
        BudgetOracle,
        CodecOracle,
        CacheOracle,
    )
}

#: The default stack: every oracle, on every form.
DEFAULT_STACK = ("legacy", "serial-parallel", "resume", "budget", "codec", "cache")

#: How often the worker-pool oracle runs under ``--smoke`` (spawning a pool
#: per form dominates a large smoke campaign's wall time; sampling keeps the
#: parallel path covered without it).
SMOKE_PARALLEL_SAMPLE = 25


def resolve_stack(names, smoke: bool = False) -> list[Oracle]:
    """Instantiate the oracle stack for *names* (in the given order).

    Raises:
        CampaignError: on an unknown oracle name.
    """
    stack: list[Oracle] = []
    for name in names:
        cls = ORACLES.get(name)
        if cls is None:
            raise CampaignError(
                f"unknown oracle {name!r}; known oracles: {', '.join(sorted(ORACLES))}"
            )
        oracle = cls()
        if smoke and name == "serial-parallel":
            oracle.sample_every = SMOKE_PARALLEL_SAMPLE
        stack.append(oracle)
    return stack


def decide_outcome(ctx: ExecutionContext):
    """The form's completability verdict, reusing the context's engine."""
    engine = ctx.depth1_engine() if ctx.kind == "depth1" else ctx.reference_engine()
    return decide_completability(ctx.form, limits=ctx.limits, engine=engine)
