"""The campaign runner: drain a form queue through the oracle stack.

``run_campaign`` expands a :class:`CampaignConfig` into the deterministic
spec queue (:func:`~repro.campaign.generator.campaign_specs`), skips the
specs its store already holds rows for, and drains the rest in batches —
serially or fanned across a process pool via
:func:`~repro.engine.parallel.drain_task_queue`.  Each batch commits as one
transaction, so a campaign killed between batches resumes exactly where it
stopped and converges on the same store an uninterrupted run produces (the
crash test in ``tests/campaign/test_campaign_runner.py`` pins this).

Every disagreement is minimized before it is reported: the runner re-runs
the disagreeing oracle on the same seed at shrinking scales
(:func:`~repro.campaign.generator.shrink_scales`) and writes the smallest
still-disagreeing form — plus the spec to regenerate it — as a JSON artifact
next to the store.  A disagreement is thus never just a boolean in a row; it
is a committed, replayable repro.
"""

from __future__ import annotations

import json
import resource
import statistics
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis.results import ExplorationLimits
from repro.campaign.generator import (
    FAMILIES,
    FormSpec,
    campaign_specs,
    form_digest,
    generate_form,
    shrink_scales,
)
from repro.campaign.oracles import (
    DEFAULT_STACK,
    ExecutionContext,
    decide_outcome,
    resolve_stack,
)
from repro.campaign.store import CampaignRow, CampaignStore
from repro.engine.parallel import drain_task_queue
from repro.io.serialization import guarded_form_to_dict
from repro.obs import default_telemetry

#: State caps for a campaign's per-form explorations.  Smoke keeps each form
#: in the hundreds-of-states range so thousands of forms stay tractable.
SMOKE_MAX_STATES = 400
FULL_MAX_STATES = 1500

#: Stall detection needs this many committed same-family wall times before a
#: family median is trusted (a median of one or two forms flags noise).
STALL_MIN_SAMPLES = 3

#: Forms faster than this are never stalls, whatever the family median says —
#: at sub-50ms scales scheduler jitter alone produces large multiples.
STALL_FLOOR_SECONDS = 0.05


def campaign_limits(smoke: bool) -> ExplorationLimits:
    return ExplorationLimits(
        max_states=SMOKE_MAX_STATES if smoke else FULL_MAX_STATES,
        max_instance_nodes=40,
    )


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's rows.

    ``workers`` and ``batch_size`` shape *how* the queue is drained, not
    what the rows contain, so they are excluded from the store-bound
    configuration payload — a campaign interrupted at ``--workers 4`` may
    resume at ``--workers 1``.  The observability knobs
    (``heartbeat_every``, ``stall_multiple``) are likewise non-semantic and
    stay out of the payload: turning heartbeats on must not invalidate a
    resumable store.
    """

    families: Sequence[str] = ("all",)
    count: int = 100
    base_seed: int = 0
    oracles: Sequence[str] = DEFAULT_STACK
    smoke: bool = False
    workers: int = 1
    batch_size: int = 25
    #: Emit a structured heartbeat event every N completed forms (0 = off).
    heartbeat_every: int = 0
    #: Flag a form as stalled when its wall clock exceeds this multiple of
    #: the family median (needs :data:`STALL_MIN_SAMPLES` prior samples).
    stall_multiple: float = 4.0
    #: Drain the queue through a pod server instead of in-process: every
    #: form is submitted to this base URL as an inlined ``completability``
    #: request and the committed row is built from the service's wire
    #: result.  Like ``workers``, this changes the *vehicle*, not the row
    #: semantics, so it stays out of the resume fingerprint.
    submit_url: Optional[str] = None

    def payload(self) -> dict:
        """The row-determining configuration (the store's resume guard)."""
        return {
            "families": list(self.families),
            "count": self.count,
            "base_seed": self.base_seed,
            "oracles": list(self.oracles),
            "smoke": self.smoke,
            "max_states": campaign_limits(self.smoke).max_states,
        }


@dataclass
class CampaignSummary:
    """What ``run_campaign`` hands back to the CLI."""

    total: int
    executed: int
    skipped: int
    disagreements: list = field(default_factory=list)  # CampaignRow dicts
    artifacts: list = field(default_factory=list)  # Path strings
    interrupted: bool = False  # stopped early by max_batches
    stalls: list = field(default_factory=list)  # stall event dicts


class CampaignPulse:
    """Heartbeat and stall bookkeeping for one :func:`run_campaign` call.

    Wall-clock times are fed per completed form; a form counts as stalled
    when its wall time exceeds ``stall_multiple`` × the median of the wall
    times its family committed *before* it (so one pathological form cannot
    dilute the very median that should flag it).  Heartbeats and stalls are
    handed to the ``on_event`` callback as plain dicts — the CLI prints them
    as JSON lines — and, when a telemetry recorder is active, mirrored as a
    queue-depth gauge and trace instants.
    """

    def __init__(self, config: CampaignConfig, total: int, done: int, on_event) -> None:
        self.every = max(0, config.heartbeat_every)
        self.multiple = config.stall_multiple
        self.total = total
        self.done = done
        self.on_event = on_event
        self.obs = default_telemetry()
        self.started = time.perf_counter()
        self.stalls: list = []
        self._wall: dict = {}  # family -> wall seconds of committed forms
        self._last_beat = done

    def form_done(self, spec: FormSpec, wall: float) -> None:
        self.done += 1
        prior = self._wall.setdefault(spec.family, [])
        median = (
            statistics.median(prior) if len(prior) >= STALL_MIN_SAMPLES else None
        )
        prior.append(wall)
        if (
            median is not None
            and wall > STALL_FLOOR_SECONDS
            and wall > self.multiple * median
        ):
            event = {
                "event": "stall",
                "family": spec.family,
                "seed": spec.seed,
                "elapsed": round(wall, 4),
                "family_median": round(median, 4),
                "multiple": round(wall / median, 1) if median else None,
            }
            self.stalls.append(event)
            self._emit(event)
            if self.obs.enabled:
                self.obs.instant("campaign.stall", family=spec.family, seed=spec.seed)
        if self.obs.enabled:
            self.obs.metrics.gauge("campaign_queue_depth").set(
                self.total - self.done, sample=True
            )
        if self.every and self.done - self._last_beat >= self.every:
            self._last_beat = self.done
            event = {
                "event": "heartbeat",
                "done": self.done,
                "total": self.total,
                "queue_depth": self.total - self.done,
                "elapsed": round(time.perf_counter() - self.started, 3),
            }
            self._emit(event)
            if self.obs.enabled:
                self.obs.instant("campaign.heartbeat", done=self.done, total=self.total)

    def _emit(self, event: dict) -> None:
        if self.on_event is not None:
            self.on_event(event)


def evaluate_spec(spec: FormSpec, stack, limits: ExplorationLimits) -> CampaignRow:
    """Run one spec through the reference execution and the oracle stack."""
    family = FAMILIES[spec.family]
    form = generate_form(spec)
    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as scratch:
        ctx = ExecutionContext(form, family.kind, limits, workdir=Path(scratch))
        if family.kind == "depth1":
            graph = ctx.depth1_graph()
            engine = ctx.depth1_engine()
            elapsed = ctx.depth1_seconds
            truncated = False
        else:
            graph = ctx.reference()
            engine = ctx.reference_engine()
            elapsed = ctx.reference_seconds
            truncated = bool(
                graph.truncated_by_states
                or graph.truncated_by_size
                or graph.truncated_by_copies
            )
        verdict = decide_outcome(ctx)
        transitions = sum(len(edges) for edges in graph.transitions.values())
        oracles_run = []
        disagreements = []
        for oracle in stack:
            if spec.index % max(1, oracle.sample_every) != 0:
                continue
            outcome = oracle.check(ctx)
            oracles_run.append(outcome.oracle)
            if not outcome.agree:
                disagreements.append(
                    {"oracle": outcome.oracle, "detail": outcome.detail}
                )
        stats = engine.stats_snapshot()
    return CampaignRow(
        family=spec.family,
        seed=spec.seed,
        index=spec.index,
        kind=family.kind,
        digest=form_digest(form),
        states=len(graph.states),
        transitions=transitions,
        truncated=truncated,
        decided=verdict.decided,
        answer=verdict.answer,
        elapsed=elapsed,
        states_per_second=round(len(graph.states) / elapsed, 2) if elapsed else 0.0,
        guard_hit_rate=stats.get("guard_cache_hit_rate", 0.0),
        peak_rss_kb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        oracles_run=oracles_run,
        disagreements=disagreements,
    )


def evaluate_specs_via_service(
    specs: Sequence[FormSpec], submit_url: str, limits: ExplorationLimits
) -> "list[CampaignRow]":
    """Evaluate a batch of specs through a pod server (``--submit-url``).

    The whole batch is submitted up front — the server's queue and workers
    provide the pipelining — then each job is awaited in order.  A job that
    ends anywhere but ``done`` (failed, cancelled, evicted past tolerance)
    is committed as a ``service`` disagreement, so service-side faults
    surface exactly like oracle disagreements in reports.
    """
    from repro.service.client import ServiceClient
    from repro.service.request import AnalysisRequest

    client = ServiceClient(submit_url)
    submitted = []
    for spec in specs:
        form = generate_form(spec)
        request = AnalysisRequest(
            form=guarded_form_to_dict(form),
            kind="completability",
            max_states=limits.max_states,
            max_instance_nodes=limits.max_instance_nodes,
            max_sibling_copies=limits.max_sibling_copies,
        )
        submitted.append((spec, form, client.submit(request)))

    rows = []
    for spec, form, job in submitted:
        family = FAMILIES[spec.family]
        final = client.wait(job["job_id"])
        disagreements = []
        stats: dict = {}
        decided: bool = False
        answer: Optional[bool] = None
        if final["state"] == "done":
            result = client.result(job["job_id"])
            stats = result.get("stats") or {}
            decided = bool(result["decided"])
            answer = result["answer"]
        else:
            error = final.get("error") or {}
            disagreements.append(
                {
                    "oracle": "service",
                    "detail": (
                        f"job {job['job_id']} ended {final['state']}: "
                        f"{error.get('code', 'unknown')}: {error.get('message', '')}"
                    ),
                }
            )
        elapsed = max(
            0.0, (final.get("finished_at") or 0.0) - (final.get("started_at") or 0.0)
        )
        states = int(stats.get("states_explored") or stats.get("canonical_states") or 0)
        engine_stats = stats.get("engine") or {}
        rows.append(
            CampaignRow(
                family=spec.family,
                seed=spec.seed,
                index=spec.index,
                kind=family.kind,
                digest=form_digest(form),
                states=states,
                transitions=int(stats.get("transitions") or 0),
                truncated=bool(stats.get("truncated", False)),
                decided=decided,
                answer=answer,
                elapsed=elapsed,
                states_per_second=round(states / elapsed, 2) if elapsed else 0.0,
                guard_hit_rate=float(engine_stats.get("guard_cache_hit_rate") or 0.0),
                peak_rss_kb=0,  # resident cost is the pod's, not this process's
                oracles_run=["service"],
                disagreements=disagreements,
            )
        )
    return rows


def _pool_task(payload: tuple) -> CampaignRow:
    """Picklable per-spec task for the process pool (named oracles only)."""
    family, seed, index, scale, oracle_names, smoke = payload
    spec = FormSpec(family, seed, index=index, scale=scale)
    stack = resolve_stack(oracle_names, smoke=smoke)
    return evaluate_spec(spec, stack, campaign_limits(smoke))


def minimize_disagreement(spec: FormSpec, oracle, limits: ExplorationLimits):
    """The smallest-scale respin of *spec* that still fails *oracle*.

    Scales are tried smallest-first; the first disagreeing one wins (the
    seed is kept, so the minimized form regenerates from its spec alone).
    Falls back to the original spec when only the original scale fails.
    """
    for scale in shrink_scales(spec):
        candidate = FormSpec(spec.family, spec.seed, index=spec.index, scale=scale)
        form = generate_form(candidate)
        with tempfile.TemporaryDirectory(prefix="repro-minimize-") as scratch:
            ctx = ExecutionContext(
                form, FAMILIES[spec.family].kind, limits, workdir=Path(scratch)
            )
            outcome = oracle.check(ctx)
        if not outcome.agree:
            return candidate, form, outcome
    return spec, generate_form(spec), None


def write_disagreement_artifact(
    artifacts_dir: Path,
    spec: FormSpec,
    oracle_name: str,
    detail: str,
    minimized_spec: FormSpec,
    minimized_form,
) -> Path:
    """Write one disagreement as a replayable JSON artifact."""
    artifacts_dir.mkdir(parents=True, exist_ok=True)
    path = artifacts_dir / f"{spec.family}_seed{spec.seed}_{oracle_name}.json"
    payload = {
        "family": spec.family,
        "seed": spec.seed,
        "oracle": oracle_name,
        "detail": detail,
        "minimized_scale": minimized_spec.scale,
        "form": guarded_form_to_dict(minimized_form),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def default_artifacts_dir(store_path: "str | Path") -> Path:
    return Path(f"{store_path}.artifacts")


def run_campaign(
    config: CampaignConfig,
    store_path: "str | Path",
    oracle_stack=None,
    artifacts_dir: Optional[Path] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    max_batches: Optional[int] = None,
    on_event: Optional[Callable[[dict], None]] = None,
) -> CampaignSummary:
    """Drain the campaign queue into the store; return the summary.

    Args:
        config: the campaign configuration (determines the queue + rows).
        store_path: sqlite campaign store (created on demand; an existing
            store resumes, skipping its committed specs).
        oracle_stack: override the stack built from ``config.oracles`` —
            the injection point for deliberately-wrong oracles in tests.
            Only supported at ``workers=1`` (pool workers rebuild the stack
            from the configured names).
        artifacts_dir: where disagreement artifacts land (default:
            ``<store_path>.artifacts/``).
        progress: optional ``(done, total)`` callback per batch.
        max_batches: stop after this many batches (the crash-simulation
            hook; the store is left consistent and resumable).
        on_event: optional callback receiving heartbeat/stall event dicts
            (see :class:`CampaignPulse`); stalls are also collected on the
            summary regardless.
    """
    from repro.exceptions import CampaignError

    if oracle_stack is not None and config.workers > 1:
        raise CampaignError(
            "a custom oracle stack runs in-process; use workers=1"
        )
    specs = campaign_specs(config.families, config.count, config.base_seed)
    stack = (
        oracle_stack
        if oracle_stack is not None
        else resolve_stack(config.oracles, smoke=config.smoke)
    )
    limits = campaign_limits(config.smoke)
    if artifacts_dir is None:
        artifacts_dir = default_artifacts_dir(store_path)

    store = CampaignStore(store_path)
    try:
        store.bind_config(config.payload())
        done = store.completed_specs()
        todo = [s for s in specs if (s.family, s.seed) not in done]
        summary = CampaignSummary(
            total=len(specs), executed=0, skipped=len(done)
        )
        pulse = CampaignPulse(config, len(specs), len(done), on_event)
        batch_size = max(1, config.batch_size)
        batches = [
            todo[i : i + batch_size] for i in range(0, len(todo), batch_size)
        ]
        for batch_index, batch in enumerate(batches):
            if max_batches is not None and batch_index >= max_batches:
                summary.interrupted = True
                break
            if config.submit_url:
                rows = evaluate_specs_via_service(batch, config.submit_url, limits)
                for spec, row in zip(batch, rows):
                    pulse.form_done(spec, row.elapsed)
            elif config.workers > 1:
                rows = drain_task_queue(
                    [
                        (s.family, s.seed, s.index, s.scale, list(config.oracles), config.smoke)
                        for s in batch
                    ],
                    _pool_task,
                    workers=config.workers,
                )
                # pool workers don't report wall clock; the reference
                # exploration time is the closest committed proxy
                for spec, row in zip(batch, rows):
                    pulse.form_done(spec, row.elapsed)
            else:
                rows = []
                for spec in batch:
                    form_started = time.perf_counter()
                    rows.append(evaluate_spec(spec, stack, limits))
                    pulse.form_done(spec, time.perf_counter() - form_started)
            store.record_rows(rows)
            summary.executed += len(rows)
            for spec, row in zip(batch, rows):
                for disagreement in row.disagreements:
                    summary.disagreements.append(row.to_json_dict())
                    oracle = next(
                        (o for o in stack if o.name == disagreement["oracle"]),
                        None,
                    )
                    if oracle is None:
                        continue
                    minimized_spec, minimized_form, _ = minimize_disagreement(
                        spec, oracle, limits
                    )
                    artifact = write_disagreement_artifact(
                        artifacts_dir,
                        spec,
                        disagreement["oracle"],
                        disagreement["detail"],
                        minimized_spec,
                        minimized_form,
                    )
                    summary.artifacts.append(str(artifact))
            if progress is not None:
                progress(summary.skipped + summary.executed, len(specs))
        summary.stalls = pulse.stalls
    finally:
        store.close()
    return summary
