"""Triage over a campaign store: distributions, outliers, promotion.

``build_report`` turns the store's rows into a deterministic report dict —
per-family outcome and size distributions, flagged outliers, and every
oracle disagreement with its artifact pointer.  Determinism is a contract,
not an accident: rows are keyed and ordered by ``(family, seed)`` (never by
the wall-clock order batches landed in), and the perf sections
(states/sec, RSS, elapsed) are segregated behind ``include_perf`` so the
golden-report test can pin the stable remainder byte-for-byte.

``promote_outliers`` closes the mining loop: the hardest agreeing instance
per family — largest explored state count, ties broken by transitions then
by *lowest* seed — is regenerated from its spec and committed into
``benchmarks/campaign_corpus/`` with a manifest, where
``benchmarks/run_all.py`` picks it up as a standing workload.  A campaign
is thus a regression-miner: what it finds hard today, the bench suite
guards tomorrow.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Optional, Sequence

from repro.campaign.generator import FAMILIES, FormSpec, generate_form
from repro.campaign.store import CampaignStore
from repro.io.serialization import save_guarded_form

#: Manifest schema of a committed campaign corpus directory.
CORPUS_SCHEMA = "campaign-corpus/1"

#: A row is an outlier when its state count exceeds the family mean by this
#: many standard deviations (single-row families can't be outliers).
OUTLIER_SIGMA = 2.0


def _distribution(values: Sequence[float]) -> dict:
    data = sorted(values)
    return {
        "min": data[0],
        "max": data[-1],
        "mean": round(statistics.fmean(data), 2),
        "median": statistics.median(data),
    }


def _hardness_key(row):
    """Deterministic 'hardest first' ordering: states, transitions, low seed."""
    return (-row.states, -row.transitions, row.seed)


def build_report(store_path: "str | Path", include_perf: bool = True) -> dict:
    """The campaign report dict (deterministic given the store's rows).

    With ``include_perf=False`` every machine-dependent number (seconds,
    states/sec, RSS) is dropped, leaving a report that is a pure function
    of the campaign configuration — the form the golden test pins.
    """
    with CampaignStore(store_path) as store:
        rows = store.rows()  # ordered by (family, seed)
        config = store.config()

    by_family: dict[str, list] = {}
    for row in rows:
        by_family.setdefault(row.family, []).append(row)

    families = {}
    outliers = []
    for family, family_rows in sorted(by_family.items()):
        states = [r.states for r in family_rows]
        entry = {
            "kind": family_rows[0].kind,
            "forms": len(family_rows),
            "states": _distribution(states),
            "transitions": _distribution([r.transitions for r in family_rows]),
            "truncated": sum(r.truncated for r in family_rows),
            "undecided": sum(not r.decided for r in family_rows),
            "answered_yes": sum(r.answer is True for r in family_rows),
            "answered_no": sum(r.answer is False for r in family_rows),
            "disagreements": sum(len(r.disagreements) for r in family_rows),
        }
        if include_perf:
            entry["elapsed_seconds"] = _distribution(
                [round(r.elapsed, 6) for r in family_rows]
            )
            entry["states_per_second"] = _distribution(
                [r.states_per_second for r in family_rows]
            )
            entry["peak_rss_kb"] = _distribution(
                [r.peak_rss_kb for r in family_rows]
            )
            entry["guard_hit_rate"] = _distribution(
                [r.guard_hit_rate for r in family_rows]
            )
        families[family] = entry

        # outliers: statistically heavy rows, plus always the family's
        # hardest instance (the promotion candidate)
        flagged = set()
        if len(states) > 1:
            mean = statistics.fmean(states)
            sigma = statistics.pstdev(states)
            if sigma > 0:
                for r in family_rows:
                    if r.states > mean + OUTLIER_SIGMA * sigma:
                        flagged.add((r.family, r.seed))
        hardest = min(family_rows, key=_hardness_key)
        flagged.add((hardest.family, hardest.seed))
        for r in sorted(family_rows, key=_hardness_key):
            if (r.family, r.seed) in flagged:
                outliers.append(
                    {
                        "family": r.family,
                        "seed": r.seed,
                        "kind": r.kind,
                        "states": r.states,
                        "transitions": r.transitions,
                        "digest": r.digest,
                        "hardest": (r.family, r.seed)
                        == (hardest.family, hardest.seed),
                    }
                )

    disagreements = [
        {
            "family": r.family,
            "seed": r.seed,
            "digest": r.digest,
            "disagreements": r.disagreements,
        }
        for r in rows
        if r.disagreements
    ]

    return {
        "schema": "campaign-report/1",
        "config": config,
        "total_forms": len(rows),
        "total_disagreements": sum(len(r.disagreements) for r in rows),
        "families": families,
        "outliers": outliers,
        "disagreements": disagreements,
    }


def render_report(report: dict) -> str:
    """Human-readable rendering of a report dict (the CLI's output)."""
    lines = []
    config = report.get("config") or {}
    lines.append(
        f"campaign report: {report['total_forms']} forms, "
        f"{report['total_disagreements']} disagreements"
    )
    if config:
        lines.append(
            f"  config: families={','.join(config.get('families', []))} "
            f"count={config.get('count')} oracles={','.join(config.get('oracles', []))} "
            f"smoke={config.get('smoke')}"
        )
    for family, entry in report["families"].items():
        states = entry["states"]
        line = (
            f"  {family:<14} ({entry['kind']:<7}) forms={entry['forms']:<5} "
            f"states {states['min']}..{states['max']} (median {states['median']}) "
            f"truncated={entry['truncated']} undecided={entry['undecided']} "
            f"disagreements={entry['disagreements']}"
        )
        if "states_per_second" in entry:
            line += f" states/s median={entry['states_per_second']['median']}"
        lines.append(line)
    hard = [o for o in report["outliers"] if o["hardest"]]
    if hard:
        lines.append("  hardest instances:")
        for o in hard:
            lines.append(
                f"    {o['family']} seed={o['seed']} states={o['states']} "
                f"transitions={o['transitions']} digest={o['digest']}"
            )
    for d in report["disagreements"]:
        for item in d["disagreements"]:
            lines.append(
                f"  DISAGREEMENT {d['family']} seed={d['seed']} "
                f"oracle={item['oracle']}: {item['detail']}"
            )
    return "\n".join(lines)


def promote_outliers(
    store_path: "str | Path",
    dest: "str | Path",
    per_family: int = 1,
    families: Optional[Sequence[str]] = None,
) -> list[Path]:
    """Commit the hardest agreeing instances into a corpus directory.

    Picks the *per_family* hardest rows of each (requested) family whose
    oracle stack fully agreed, regenerates their forms from their specs, and
    writes them next to a ``manifest.json`` that ``benchmarks/run_all.py``
    consumes.  Returns the written form paths.
    """
    with CampaignStore(store_path) as store:
        rows = store.rows()
        config = store.config() or {}
    dest_dir = Path(dest)
    dest_dir.mkdir(parents=True, exist_ok=True)

    by_family: dict[str, list] = {}
    for row in rows:
        if row.disagreements:
            continue  # never promote a disputed instance
        if families is not None and row.family not in families:
            continue
        by_family.setdefault(row.family, []).append(row)

    manifest_path = dest_dir / "manifest.json"
    entries = []
    if manifest_path.exists():
        entries = json.loads(manifest_path.read_text()).get("workloads", [])
    known = {(e["family"], e["seed"]) for e in entries}

    written = []
    for family in sorted(by_family):
        candidates = sorted(by_family[family], key=_hardness_key)[:per_family]
        for row in candidates:
            spec = FormSpec(row.family, row.seed)
            form = generate_form(spec)
            path = dest_dir / f"{row.family}_seed{row.seed}.json"
            save_guarded_form(form, path)
            written.append(path)
            if (row.family, row.seed) not in known:
                entries.append(
                    {
                        "family": row.family,
                        "seed": row.seed,
                        "kind": FAMILIES[row.family].kind,
                        "states": row.states,
                        "transitions": row.transitions,
                        "digest": row.digest,
                        "file": path.name,
                    }
                )
                known.add((row.family, row.seed))
    entries.sort(key=lambda e: (e["family"], e["seed"]))
    manifest_path.write_text(
        json.dumps(
            {
                "schema": CORPUS_SCHEMA,
                # the campaign's state cap: whoever replays a corpus workload
                # (benchmarks/run_all.py) explores under the same limits, so
                # the manifest's states/transitions are reproducible numbers
                "max_states": config.get("max_states"),
                "workloads": entries,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return written
