"""Deterministic form generation for scenario campaigns.

This module is the **single source** of generated scenario forms.  The
benchmark families (:mod:`repro.benchgen.families`) and the seeded random
generators (:mod:`repro.benchgen.random_forms`) stay the primitive layer;
what lives here is the *campaign registry* binding them into named,
seed-addressable families with a shared scaling convention:

* every family is a :class:`CampaignFamily` whose ``build(seed, scale)`` is a
  pure function of its two integer arguments — the same ``(family, seed)``
  pair always regenerates byte-for-byte the same guarded form, which is what
  makes campaign rows, disagreement artifacts and promoted corpus workloads
  reproducible from their seeds alone;
* ``scale`` bounds the instance size drawn for a seed (each seed draws its
  own size in ``[min_scale, scale]``), so campaigns mix sizes and the triage
  minimizer can shrink a disagreeing form by lowering the scale while
  keeping the seed;
* the Hypothesis strategies the property suite shares live next door in
  :mod:`repro.campaign.strategies` (re-exported by
  ``tests/property/strategies.py``), so randomised tests and campaigns draw
  from one vocabulary of schemas and formulas.

``campaign_specs`` expands a campaign configuration into the deterministic
work queue the runner drains; ``write_seed_corpus`` materialises one
representative form per family as committed JSON (replayed by
``tests/campaign/test_corpus_replay.py`` to pin generator determinism).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.benchgen.families import (
    counter_machine_family,
    deadlock_family,
    positive_chain_family,
    positive_deep_family,
    qsat_semisoundness_family,
    sat_completability_family,
    sat_semisoundness_family,
)
from repro.benchgen.random_forms import random_depth1_guarded_form
from repro.core.guarded_form import GuardedForm
from repro.exceptions import CampaignError
from repro.io.serialization import guarded_form_to_dict, save_guarded_form


@dataclass(frozen=True)
class FormSpec:
    """One unit of campaign work: a family name and the seed to build it at.

    ``index`` is the spec's position in the campaign queue (used for
    deterministic oracle sampling); ``scale`` overrides the family's default
    when the triage minimizer shrinks a disagreeing form.
    """

    family: str
    seed: int
    index: int = 0
    scale: Optional[int] = None


@dataclass(frozen=True)
class CampaignFamily:
    """A named, seeded generator of guarded forms.

    Attributes:
        name: registry key (``repro campaign run --families`` vocabulary).
        kind: ``"depth1"`` (exhaustive canonical-state exploration) or
            ``"bounded"`` (limit-bounded exploration) — tells the oracle
            stack which explorer and which legacy reference apply.
        build: ``(seed, scale) -> GuardedForm``; must be deterministic.
        scale: default upper bound on the per-seed size draw.
        min_scale: smallest scale the minimizer may shrink to.
    """

    name: str
    kind: str
    build: Callable[[int, int], GuardedForm]
    scale: int
    min_scale: int = 1


def _draw(seed: int, low: int, high: int) -> int:
    """The size a seed draws within ``[low, high]`` (inclusive, stable)."""
    if high <= low:
        return low
    # a *string* seed: str seeding is deterministic across processes, while
    # seeding with a tuple would fall back to PYTHONHASHSEED-salted hash()
    return random.Random(f"campaign-{seed}").randint(low, high)


def _build_chain(seed: int, scale: int) -> GuardedForm:
    return positive_chain_family(_draw(seed, 3, scale))


def _build_deep(seed: int, scale: int) -> GuardedForm:
    return positive_deep_family(_draw(seed, 2, scale), width=2)


def _build_sat(seed: int, scale: int) -> GuardedForm:
    return sat_completability_family(_draw(seed, 3, scale), seed=seed)[0]


def _build_sat_semisound(seed: int, scale: int) -> GuardedForm:
    return sat_semisoundness_family(_draw(seed, 3, scale), seed=seed)[0]


def _build_deadlock(seed: int, scale: int) -> GuardedForm:
    return deadlock_family(_draw(seed, 2, scale), seed=seed)[0]


def _build_qsat(seed: int, scale: int) -> GuardedForm:
    return qsat_semisoundness_family(_draw(seed, 1, scale), seed=seed)[0]


def _build_two_counter(seed: int, scale: int) -> GuardedForm:
    return counter_machine_family(_draw(seed, 1, scale))[0]


def _build_random_depth1(seed: int, scale: int) -> GuardedForm:
    return random_depth1_guarded_form(
        _draw(seed, 3, scale),
        seed=seed,
        positive_access=seed % 2 == 0,
        positive_completion=seed % 3 != 0,
    )


#: The campaign family registry.  Scales are sized so a smoke campaign's
#: per-form explorations stay in the hundreds-of-states range; ``repro
#: campaign run`` accepts any subset by name (or ``all``).
FAMILIES: dict[str, CampaignFamily] = {
    family.name: family
    for family in (
        CampaignFamily("chain", "depth1", _build_chain, scale=8, min_scale=3),
        CampaignFamily("deep", "bounded", _build_deep, scale=3, min_scale=2),
        CampaignFamily("sat", "depth1", _build_sat, scale=5, min_scale=3),
        CampaignFamily(
            "sat-semisound", "depth1", _build_sat_semisound, scale=5, min_scale=3
        ),
        CampaignFamily("deadlock", "depth1", _build_deadlock, scale=3, min_scale=2),
        CampaignFamily("qsat", "bounded", _build_qsat, scale=1, min_scale=1),
        CampaignFamily(
            "two-counter", "bounded", _build_two_counter, scale=2, min_scale=1
        ),
        CampaignFamily(
            "random-depth1", "depth1", _build_random_depth1, scale=6, min_scale=3
        ),
    )
}


def resolve_families(names: Sequence[str]) -> list[CampaignFamily]:
    """The registry entries for *names* (``["all"]`` selects every family).

    Raises:
        CampaignError: on an unknown family name.
    """
    if list(names) == ["all"]:
        return [FAMILIES[name] for name in sorted(FAMILIES)]
    families = []
    for name in names:
        if name not in FAMILIES:
            raise CampaignError(
                f"unknown campaign family {name!r}; known families: "
                f"{', '.join(sorted(FAMILIES))} (or 'all')"
            )
        families.append(FAMILIES[name])
    return families


def generate_form(spec: FormSpec) -> GuardedForm:
    """The guarded form a spec denotes (pure in ``(family, seed, scale)``)."""
    family = FAMILIES.get(spec.family)
    if family is None:
        raise CampaignError(f"unknown campaign family {spec.family!r}")
    scale = spec.scale if spec.scale is not None else family.scale
    return family.build(spec.seed, max(family.min_scale, scale))


def campaign_specs(
    family_names: Sequence[str], count: int, base_seed: int = 0
) -> list[FormSpec]:
    """The deterministic work queue of a campaign: *count* specs round-robined
    over the requested families, seeded ``base_seed, base_seed + 1, …``.

    The queue depends only on ``(families, count, base_seed)``, so an
    interrupted campaign re-run with the same configuration rebuilds the
    identical queue and can skip the specs its store already holds rows for.
    """
    if count < 1:
        raise CampaignError(f"a campaign needs a positive form count, got {count}")
    families = resolve_families(family_names)
    return [
        FormSpec(families[i % len(families)].name, base_seed + i, index=i)
        for i in range(count)
    ]


def shrink_scales(spec: FormSpec) -> list[int]:
    """Candidate scales for minimizing a disagreeing form, smallest first."""
    family = FAMILIES[spec.family]
    top = spec.scale if spec.scale is not None else family.scale
    return list(range(family.min_scale, top + 1))


# --------------------------------------------------------------------------- #
# seed corpus
# --------------------------------------------------------------------------- #

#: Seed each family's committed corpus entry is generated at.
SEED_CORPUS_SEED = 7


def seed_corpus_specs() -> list[FormSpec]:
    """One representative spec per family (the committed replay corpus)."""
    return [
        FormSpec(name, SEED_CORPUS_SEED, index=i)
        for i, name in enumerate(sorted(FAMILIES))
    ]


def write_seed_corpus(dest: "str | Path") -> list[Path]:
    """Write one JSON form per family into *dest* and return the paths.

    File names are ``<family>_seed<seed>.json``; contents are the
    deterministic :func:`~repro.io.serialization.save_guarded_form` encoding,
    so regenerating the corpus over an unchanged generator is a no-op diff —
    which is exactly what ``tests/campaign/test_corpus_replay.py`` pins.
    """
    dest_dir = Path(dest)
    dest_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for spec in seed_corpus_specs():
        path = dest_dir / f"{spec.family}_seed{spec.seed}.json"
        save_guarded_form(generate_form(spec), path)
        written.append(path)
    return written


def form_digest(form: GuardedForm) -> str:
    """A short stable digest of a form's serialised content (report column)."""
    import hashlib
    import json

    payload = json.dumps(guarded_form_to_dict(form), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
