"""Scenario campaigns: differential fuzzing of the exploration engine.

A *campaign* fans thousands of deterministically generated guarded forms
(:mod:`repro.campaign.generator`) through a stack of differential oracles
(:mod:`repro.campaign.oracles`) — serial vs parallel, cold vs resumed,
unbudgeted vs budgeted, pure vs accelerated codec, engine vs legacy — and
persists one outcome/perf row per form into an sqlite store
(:mod:`repro.campaign.store`).  Triage (:mod:`repro.campaign.triage`) turns
the store into distributions, flags outliers, surfaces disagreements as
minimized replayable artifacts, and promotes the hardest instances into the
committed benchmark corpus.

Driven by ``repro campaign run / report / promote`` (see ``repro.cli``).

:mod:`repro.campaign.strategies` (the Hypothesis strategies shared with the
property suite) is deliberately not imported here: it needs ``hypothesis``,
which is a test-only dependency.
"""

from repro.campaign.generator import (
    FAMILIES,
    CampaignFamily,
    FormSpec,
    campaign_specs,
    generate_form,
    resolve_families,
    seed_corpus_specs,
    write_seed_corpus,
)
from repro.campaign.oracles import (
    DEFAULT_STACK,
    ORACLES,
    ExecutionContext,
    Oracle,
    OracleOutcome,
    resolve_stack,
)
from repro.campaign.runner import (
    CampaignConfig,
    CampaignPulse,
    CampaignSummary,
    evaluate_spec,
    run_campaign,
)
from repro.campaign.store import CampaignRow, CampaignStore
from repro.campaign.triage import build_report, promote_outliers, render_report

__all__ = [
    "FAMILIES",
    "CampaignFamily",
    "FormSpec",
    "campaign_specs",
    "generate_form",
    "resolve_families",
    "seed_corpus_specs",
    "write_seed_corpus",
    "DEFAULT_STACK",
    "ORACLES",
    "ExecutionContext",
    "Oracle",
    "OracleOutcome",
    "resolve_stack",
    "CampaignConfig",
    "CampaignPulse",
    "CampaignSummary",
    "evaluate_spec",
    "run_campaign",
    "CampaignRow",
    "CampaignStore",
    "build_report",
    "promote_outliers",
    "render_report",
]
