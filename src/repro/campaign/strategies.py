"""Shared Hypothesis strategies for property tests and campaign fuzzing.

Moved here from ``tests/property/strategies.py`` (which now re-exports this
module) so the campaign generator is the single source of scenario
vocabulary: the property suite's schemas/instances/formulas and the campaign
families of :mod:`repro.campaign.generator` live side by side instead of
drifting apart in two trees.

This module imports :mod:`hypothesis` at import time and is therefore **not**
imported by ``repro.campaign.__init__`` — the campaign runner itself has no
test-only dependencies; only test code (and explicit opt-ins) should import
this module.
"""

from __future__ import annotations

from functools import reduce

from hypothesis import strategies as st

from repro.campaign.generator import FAMILIES, FormSpec, generate_form
from repro.core.formulas.ast import (
    And,
    Exists,
    Filter,
    Formula,
    Not,
    Or,
    Parent,
    Slash,
    Step,
    Top,
)
from repro.core.instance import Instance
from repro.core.schema import Schema

#: The schema most property tests build instances of: small but featuring
#: nesting, sibling variety and reused labels at different positions.
PROPERTY_SCHEMA_DICT = {
    "a": {"x": {}, "y": {"z": {}}},
    "b": {"x": {}},
    "c": {},
}

PROPERTY_LABELS = ["a", "b", "c", "x", "y", "z"]


def property_schema() -> Schema:
    """A fresh copy of the shared property-test schema."""
    return Schema.from_dict(PROPERTY_SCHEMA_DICT)


@st.composite
def instances(draw, schema: Schema | None = None, max_copies: int = 2) -> Instance:
    """Random instances of *schema* with up to *max_copies* copies per field."""
    target = schema or property_schema()
    instance = Instance.empty(target)

    def populate(schema_node, instance_node, depth):
        for schema_child in schema_node.children:
            copies = draw(st.integers(min_value=0, max_value=max_copies))
            for _ in range(copies):
                child = instance.add_field(instance_node, schema_child.label)
                populate(schema_child, child, depth + 1)

    populate(target.root, instance.root, 0)
    return instance


@st.composite
def path_expressions(draw, labels=None, depth: int = 2):
    """Random path expressions over *labels*.

    Paths are generated in the shape the concrete syntax produces — a
    ``/``-separated sequence of ``..`` / label steps, each optionally carrying
    filters — so rendering and re-parsing reproduces the exact AST (the parser
    has no syntax for grouping a composite path before a filter).
    """
    pool = labels or PROPERTY_LABELS
    num_steps = draw(st.integers(min_value=1, max_value=3))
    steps = []
    for _ in range(num_steps):
        base = draw(
            st.one_of(
                st.builds(Step, st.sampled_from(pool)),
                st.just(Parent()),
            )
        )
        if depth > 0 and draw(st.booleans()):
            condition = draw(formulas(labels=pool, depth=depth - 1))
            base = Filter(base, condition)
        steps.append(base)
    return reduce(Slash, steps)


@st.composite
def formulas(draw, labels=None, depth: int = 2, allow_negation: bool = True) -> Formula:
    """Random formulas over *labels* with bounded connective depth."""
    pool = labels or PROPERTY_LABELS
    if depth <= 0:
        return Exists(draw(st.builds(Step, st.sampled_from(pool))))
    options = ["atom", "and", "or", "top"]
    if allow_negation:
        options.append("not")
    choice = draw(st.sampled_from(options))
    if choice == "atom":
        return Exists(draw(path_expressions(labels=pool, depth=depth - 1)))
    if choice == "top":
        return Top()
    if choice == "not":
        return Not(draw(formulas(labels=pool, depth=depth - 1, allow_negation=allow_negation)))
    left = draw(formulas(labels=pool, depth=depth - 1, allow_negation=allow_negation))
    right = draw(formulas(labels=pool, depth=depth - 1, allow_negation=allow_negation))
    return And(left, right) if choice == "and" else Or(left, right)


@st.composite
def positive_formulas(draw, labels=None, depth: int = 2) -> Formula:
    """Random negation-free formulas."""
    return draw(formulas(labels=labels, depth=depth, allow_negation=False))


@st.composite
def campaign_forms(draw, families=None, max_seed: int = 10_000):
    """Random campaign forms: a drawn ``(family, seed)`` pair routed through
    :func:`repro.campaign.generator.generate_form` — the same forms a
    campaign would enqueue, shrinking toward low seeds and small families."""
    pool = sorted(families or FAMILIES)
    family = draw(st.sampled_from(pool))
    seed = draw(st.integers(min_value=0, max_value=max_seed))
    return generate_form(FormSpec(family, seed))
