"""The sqlite store a campaign persists its per-form outcomes into.

One row per ``(family, seed)`` — outcome (states, transitions, completability
verdict), perf (exploration seconds, states/sec, guard-cache hit rate, peak
RSS) and the oracle verdicts including any disagreement details.  Rows are
written in batches at batch boundaries (one transaction per batch), which is
what makes a killed campaign resumable: every committed row is final, and a
re-run with the same configuration skips exactly the committed specs and
re-runs the rest — converging on the same store an uninterrupted run
produces.

The store records its campaign configuration (families, count, base seed,
oracle stack, smoke flag, limits) in the shared ``meta`` table on first use
and refuses — with :class:`~repro.exceptions.CampaignError` — to continue a
campaign under a different configuration: resuming half of one queue with
the other half of another would silently corrupt the distributions.

The sqlite plumbing (pragmas, schema creation, the ``meta`` table) is the
engine state store's, shared via
:class:`~repro.engine.store.SqliteBacked`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.engine.sqlite_base import SqliteBacked
from repro.exceptions import CampaignError

#: Bumped when the results schema changes incompatibly.
CAMPAIGN_SCHEMA_VERSION = "campaign-store/1"


@dataclass
class CampaignRow:
    """One form's campaign outcome (the unit the store persists)."""

    family: str
    seed: int
    index: int
    kind: str  # "depth1" | "bounded"
    digest: str  # short content digest of the generated form
    states: int
    transitions: int
    truncated: bool
    decided: bool
    answer: Optional[bool]
    elapsed: float  # reference exploration seconds
    states_per_second: float
    guard_hit_rate: float
    peak_rss_kb: int
    oracles_run: list = field(default_factory=list)  # oracle names, in order
    disagreements: list = field(default_factory=list)  # [{oracle, detail}, ...]

    @property
    def agreed(self) -> bool:
        return not self.disagreements

    def to_json_dict(self) -> dict:
        return asdict(self)


_COLUMNS = (
    "family", "seed", "idx", "kind", "digest", "states", "transitions",
    "truncated", "decided", "answer", "elapsed", "states_per_second",
    "guard_hit_rate", "peak_rss_kb", "oracles_run", "disagreements",
)


def config_fingerprint(payload: dict) -> str:
    """A stable digest of a campaign configuration (the resume guard)."""
    encoded = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


class CampaignStore(SqliteBacked):
    """Sqlite persistence for campaign rows, keyed ``(family, seed)``."""

    _DB_ROLE = "sqlite campaign store"

    _TABLES = (
        "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)",
        "CREATE TABLE IF NOT EXISTS results ("
        " family TEXT NOT NULL,"
        " seed INTEGER NOT NULL,"
        " idx INTEGER NOT NULL,"
        " kind TEXT NOT NULL,"
        " digest TEXT NOT NULL,"
        " states INTEGER NOT NULL,"
        " transitions INTEGER NOT NULL,"
        " truncated INTEGER NOT NULL,"
        " decided INTEGER NOT NULL,"
        " answer INTEGER,"
        " elapsed REAL NOT NULL,"
        " states_per_second REAL NOT NULL,"
        " guard_hit_rate REAL NOT NULL,"
        " peak_rss_kb INTEGER NOT NULL,"
        " oracles_run TEXT NOT NULL,"
        " disagreements TEXT NOT NULL,"
        " PRIMARY KEY (family, seed))",
    )

    def __init__(self, path: "str | Path") -> None:
        self._open_sqlite(path)
        version = self._get_meta("schema_version")
        if version is None:
            self._set_meta("schema_version", CAMPAIGN_SCHEMA_VERSION)
            self._conn.commit()
        elif version != CAMPAIGN_SCHEMA_VERSION:
            raise CampaignError(
                f"campaign store {self.path} uses layout version {version}, "
                f"this build expects {CAMPAIGN_SCHEMA_VERSION}"
            )

    # -- configuration binding ------------------------------------------ #

    def bind_config(self, payload: dict) -> bool:
        """Bind the store to a campaign configuration.

        Returns ``True`` when the store was fresh (first bind), ``False``
        when it already carried the same configuration (a resume).

        Raises:
            CampaignError: the store belongs to a differently configured
                campaign.
        """
        fingerprint = config_fingerprint(payload)
        recorded = self._get_meta("config_fingerprint")
        if recorded is None:
            self._set_meta("config_fingerprint", fingerprint)
            self._set_meta("config", json.dumps(payload, sort_keys=True))
            self._conn.commit()
            return True
        if recorded != fingerprint:
            raise CampaignError(
                f"campaign store {self.path} was written by a differently "
                f"configured campaign ({self._get_meta('config')}); use a "
                "fresh store or rerun with the original configuration"
            )
        return False

    def config(self) -> Optional[dict]:
        """The bound campaign configuration (``None`` on a fresh store)."""
        raw = self._get_meta("config")
        return json.loads(raw) if raw is not None else None

    # -- rows ------------------------------------------------------------ #

    def completed_specs(self) -> set:
        """``(family, seed)`` pairs the store already holds rows for."""
        return {
            (family, seed)
            for family, seed in self._conn.execute(
                "SELECT family, seed FROM results"
            )
        }

    def record_rows(self, rows: Sequence[CampaignRow]) -> None:
        """Persist a batch of rows in one transaction (a resume point)."""
        self._conn.executemany(
            f"INSERT OR REPLACE INTO results ({', '.join(_COLUMNS)}) "
            f"VALUES ({', '.join('?' * len(_COLUMNS))})",
            [
                (
                    row.family,
                    row.seed,
                    row.index,
                    row.kind,
                    row.digest,
                    row.states,
                    row.transitions,
                    int(row.truncated),
                    int(row.decided),
                    None if row.answer is None else int(row.answer),
                    row.elapsed,
                    row.states_per_second,
                    row.guard_hit_rate,
                    row.peak_rss_kb,
                    json.dumps(row.oracles_run),
                    json.dumps(row.disagreements, sort_keys=True),
                )
                for row in rows
            ],
        )
        self._conn.commit()

    def rows(self) -> list[CampaignRow]:
        """All rows, deterministically ordered by ``(family, seed)``.

        The ordering is part of the reporting contract: reports and golden
        files must not depend on the wall-clock order batches landed in.
        """
        out = []
        for record in self._conn.execute(
            f"SELECT {', '.join(_COLUMNS)} FROM results ORDER BY family, seed"
        ):
            (
                family, seed, idx, kind, digest, states, transitions,
                truncated, decided, answer, elapsed, states_per_second,
                guard_hit_rate, peak_rss_kb, oracles_run, disagreements,
            ) = record
            out.append(
                CampaignRow(
                    family=family,
                    seed=seed,
                    index=idx,
                    kind=kind,
                    digest=digest,
                    states=states,
                    transitions=transitions,
                    truncated=bool(truncated),
                    decided=bool(decided),
                    answer=None if answer is None else bool(answer),
                    elapsed=elapsed,
                    states_per_second=states_per_second,
                    guard_hit_rate=guard_hit_rate,
                    peak_rss_kb=peak_rss_kb,
                    oracles_run=json.loads(oracles_run),
                    disagreements=json.loads(disagreements),
                )
            )
        return out

    def row_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
