"""Guarded forms (Definition 3.11, Example 3.12).

A guarded form is a tuple ``(M, A, I0, φ)`` of a schema, an access-rule
function, an initial instance and a completion formula.  The only updates on
instances are the addition and the deletion of leaf edges; an update is
*allowed* when the corresponding access rule is true at the parent node of the
edge in the current instance.

:class:`GuardedForm` bundles the four components and implements the update
semantics: enumerating the enabled updates of an instance, applying updates,
and checking the completion formula.  Runs (sequences of allowed updates) are
handled by :mod:`repro.core.runs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Union

from repro.core.access import AccessRight, RuleTable
from repro.core.formulas.ast import Formula
from repro.core.formulas.parser import parse_formula
from repro.core.formulas.semantics import evaluate
from repro.core.instance import Instance
from repro.core.schema import Schema, format_schema_path
from repro.core.tree import Node
from repro.exceptions import InstanceError, UpdateNotAllowedError


@dataclass(frozen=True)
class Addition:
    """Addition of a new leaf with *label* under the node with *parent_id*."""

    parent_id: int
    label: str

    def describe(self, instance: Instance) -> str:
        """Human-readable description relative to *instance*."""
        parent = instance.node(self.parent_id)
        where = format_schema_path(parent.label_path())
        return f"add {self.label} under {where}"


@dataclass(frozen=True)
class Deletion:
    """Deletion of the leaf node with *node_id*."""

    node_id: int

    def describe(self, instance: Instance) -> str:
        """Human-readable description relative to *instance*."""
        node = instance.node(self.node_id)
        return f"delete {format_schema_path(node.label_path())}"


Update = Union[Addition, Deletion]


class GuardedForm:
    """A guarded form ``(M, A, I0, φ)``.

    Args:
        schema: the schema ``M``.
        rules: the access-rule function ``A`` (a :class:`RuleTable` bound to
            the same schema).
        initial_instance: the initial instance ``I0`` (defaults to the
            instance consisting of just the root).
        completion: the completion formula ``φ`` (a formula or concrete
            syntax string), evaluated at the root.
        name: an optional human-readable name used in reports.
    """

    def __init__(
        self,
        schema: Schema,
        rules: RuleTable,
        completion: "Formula | str",
        initial_instance: Optional[Instance] = None,
        name: str = "guarded form",
    ) -> None:
        if rules.schema is not schema:
            # allow structurally identical schemas as a convenience
            if rules.schema.shape() != schema.shape():
                raise InstanceError(
                    "the rule table is bound to a different schema than the "
                    "guarded form"
                )
        schema.validate()
        self._schema = schema
        self._rules = rules
        self._completion = parse_formula(completion)
        if initial_instance is None:
            initial_instance = Instance.empty(schema)
        initial_instance.validate()
        self._initial = initial_instance.copy()
        self.name = name

    # ------------------------------------------------------------------ #
    # components
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> Schema:
        """The schema ``M``."""
        return self._schema

    @property
    def rules(self) -> RuleTable:
        """The access-rule function ``A``."""
        return self._rules

    @property
    def completion(self) -> Formula:
        """The completion formula ``φ``."""
        return self._completion

    def initial_instance(self) -> Instance:
        """A fresh copy of the initial instance ``I0``."""
        return self._initial.copy()

    def with_completion(self, completion: "Formula | str", name: Optional[str] = None) -> "GuardedForm":
        """A guarded form identical to this one but with another completion
        formula — handy for invariant checking (Section 3.5) and for the
        completion-formula variations discussed around Example 3.12."""
        return GuardedForm(
            self._schema,
            self._rules,
            completion,
            self._initial.copy(),
            name=name or self.name,
        )

    def with_initial_instance(self, instance: Instance, name: Optional[str] = None) -> "GuardedForm":
        """A guarded form identical to this one but started from *instance*
        (the semi-soundness problem quantifies over such restarts)."""
        return GuardedForm(
            self._schema,
            self._rules,
            self._completion,
            instance.copy(),
            name=name or self.name,
        )

    # ------------------------------------------------------------------ #
    # update semantics (Section 3.4)
    # ------------------------------------------------------------------ #

    def is_addition_allowed(self, instance: Instance, parent: "Node | int", label: str) -> bool:
        """Whether adding a *label* leaf under *parent* is allowed by ``A``.

        The rule ``A(add, ê)`` is evaluated at the parent node ``n`` of the
        new edge, in the current instance.
        """
        parent_node = instance.node(parent if isinstance(parent, int) else parent.node_id)
        edge_path = parent_node.label_path() + (label,)
        if not self._schema.has_path(edge_path):
            return False
        rule = self._rules.rule(AccessRight.ADD, edge_path)
        return evaluate(parent_node, rule)

    def is_deletion_allowed(self, instance: Instance, node: "Node | int") -> bool:
        """Whether deleting the leaf *node* is allowed by ``A``.

        The rule ``A(del, ê)`` is evaluated at the parent node of the deleted
        edge.  Non-leaf nodes and the root can never be deleted.
        """
        target = instance.node(node if isinstance(node, int) else node.node_id)
        if target.is_root() or not target.is_leaf():
            return False
        rule = self._rules.rule(AccessRight.DEL, target.label_path())
        assert target.parent is not None
        return evaluate(target.parent, rule)

    def is_update_allowed(self, instance: Instance, update: Update) -> bool:
        """Whether *update* is allowed on *instance*."""
        if isinstance(update, Addition):
            if not instance.has_node(update.parent_id):
                return False
            return self.is_addition_allowed(instance, update.parent_id, update.label)
        if not instance.has_node(update.node_id):
            return False
        return self.is_deletion_allowed(instance, update.node_id)

    def enabled_updates(self, instance: Instance) -> list[Update]:
        """All updates allowed on *instance*.

        Additions are enumerated per (node, schema child label) pair; note
        that applying the same addition twice produces two same-label
        siblings, which the paper's instances permit.
        """
        updates: list[Update] = []
        for node in instance.nodes():
            schema_node = self._schema.node_at(node.label_path())
            for schema_child in schema_node.children:
                if self.is_addition_allowed(instance, node, schema_child.label):
                    updates.append(Addition(node.node_id, schema_child.label))
            if not node.is_root() and node.is_leaf():
                if self.is_deletion_allowed(instance, node):
                    updates.append(Deletion(node.node_id))
        return updates

    def iter_enabled_additions(self, instance: Instance) -> Iterator[Addition]:
        """The enabled additions only (used by the saturation procedure of
        Theorem 5.5)."""
        for update in self.enabled_updates(instance):
            if isinstance(update, Addition):
                yield update

    def apply(self, instance: Instance, update: Update, in_place: bool = False) -> Instance:
        """Apply *update* to *instance* and return the resulting instance.

        Raises:
            UpdateNotAllowedError: when the access rules forbid the update.
            InstanceError: when the update is structurally impossible.
        """
        if not self.is_update_allowed(instance, update):
            raise UpdateNotAllowedError(
                f"update {update} is not allowed on the given instance"
            )
        return self.apply_unchecked(instance, update, in_place=in_place)

    def apply_unchecked(self, instance: Instance, update: Update, in_place: bool = False) -> Instance:
        """Apply *update* without consulting the access rules.

        The structural constraints (schema conformance, leaf-only deletion)
        are still enforced.  Used by the state-space explorers which check
        allowedness separately, and by tests that need to construct reachable
        and unreachable instances alike.
        """
        target = instance if in_place else instance.copy()
        if isinstance(update, Addition):
            target.add_field(target.node(update.parent_id), update.label)
        else:
            target.remove_field(target.node(update.node_id))
        return target

    def successors(self, instance: Instance) -> Iterator[tuple[Update, Instance]]:
        """Yield ``(update, resulting instance)`` for every enabled update."""
        for update in self.enabled_updates(instance):
            yield update, self.apply_unchecked(instance, update)

    # ------------------------------------------------------------------ #
    # completion
    # ------------------------------------------------------------------ #

    def is_complete(self, instance: Instance) -> bool:
        """Whether *instance* satisfies the completion formula ``φ``."""
        return evaluate(instance.root, self._completion)

    # ------------------------------------------------------------------ #
    # fragment-related metadata
    # ------------------------------------------------------------------ #

    def schema_depth(self) -> int:
        """Depth of the schema (children of the root have depth 1)."""
        return self._schema.depth()

    def has_positive_access_rules(self) -> bool:
        """Whether the form belongs to an ``A+`` fragment."""
        return self._rules.is_positive()

    def has_positive_completion(self) -> bool:
        """Whether the form belongs to a ``φ+`` fragment."""
        return self._completion.is_positive()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GuardedForm(name={self.name!r}, depth={self.schema_depth()}, "
            f"fields={self._schema.size() - 1})"
        )


def guarded_form_from_dicts(
    schema_dict: Mapping[str, Mapping],
    rules_dict: Mapping[str, object],
    completion: "Formula | str",
    initial_paths: Optional[list[str]] = None,
    default_rule: "Formula | str | None" = None,
    name: str = "guarded form",
) -> GuardedForm:
    """One-call constructor used by examples and tests.

    Builds the schema from a nested dict, the rule table from a path→rule
    mapping, and the initial instance from a list of label paths.
    """
    schema = Schema.from_dict(schema_dict)
    rules = RuleTable.from_dict(schema, rules_dict, default=default_rule)
    initial = (
        Instance.from_paths(schema, initial_paths) if initial_paths else Instance.empty(schema)
    )
    return GuardedForm(schema, rules, completion, initial, name=name)
