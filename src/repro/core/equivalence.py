"""Formula equivalence between instances (Definition 3.7, Lemma 3.9).

Formula equivalence is bisimulation under the assumption that all edges are
bidirectional: a relation between the nodes of two instances that relates the
roots, preserves labels, and transfers both child edges and parent edges in
both directions.  Lemma 3.9 states that formula-equivalent nodes satisfy
exactly the same formulas, which makes this the right notion of "the same
state" for the workflow analyses (Lemma 4.3).

This module computes:

* the *largest* formula equivalence between two instances
  (:func:`largest_formula_equivalence`) via greatest-fixpoint refinement;
* the induced checks :func:`are_formula_equivalent` and
  :func:`formula_equivalent_nodes`;
* :func:`node_equivalence_classes` — the partition of a single instance's
  nodes into classes of pairwise formula-equivalent nodes, which is the input
  to the canonical-instance construction of Definition 3.8.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tree import LabelledTree, Node


def largest_formula_equivalence(
    left: LabelledTree, right: LabelledTree
) -> Optional[set[tuple[int, int]]]:
    """Return the largest formula equivalence between *left* and *right*.

    The result is a set of ``(left_node_id, right_node_id)`` pairs, or
    ``None`` when no formula equivalence exists (i.e. when the largest
    relation satisfying the transfer conditions does not relate the roots).
    """
    left_nodes = list(left.nodes())
    right_nodes = list(right.nodes())

    # start from all label-compatible pairs and refine
    relation: set[tuple[int, int]] = {
        (a.node_id, b.node_id)
        for a in left_nodes
        for b in right_nodes
        if a.label == b.label
    }
    left_by_id = {node.node_id: node for node in left_nodes}
    right_by_id = {node.node_id: node for node in right_nodes}

    changed = True
    while changed:
        changed = False
        for pair in list(relation):
            a = left_by_id[pair[0]]
            b = right_by_id[pair[1]]
            if not _pair_is_consistent(a, b, relation):
                relation.discard(pair)
                changed = True

    if (left.root.node_id, right.root.node_id) not in relation:
        return None
    return relation


def _pair_is_consistent(a: Node, b: Node, relation: set[tuple[int, int]]) -> bool:
    """Check the four transfer conditions of Definition 3.7 for a pair."""
    # every child of a must have a related child of b, and vice versa
    for child in a.children:
        if not any(
            (child.node_id, other.node_id) in relation for other in b.children
        ):
            return False
    for other in b.children:
        if not any(
            (child.node_id, other.node_id) in relation for child in a.children
        ):
            return False
    # parents must be related (or both nodes are roots)
    if (a.parent is None) != (b.parent is None):
        return False
    if a.parent is not None and b.parent is not None:
        if (a.parent.node_id, b.parent.node_id) not in relation:
            return False
    return True


def are_formula_equivalent(left: LabelledTree, right: LabelledTree) -> bool:
    """``True`` when *left* ∼ *right* (Definition 3.7)."""
    return largest_formula_equivalence(left, right) is not None


def is_formula_equivalence(
    left: LabelledTree, right: LabelledTree, relation: set[tuple[int, int]]
) -> bool:
    """Verify that *relation* is a formula equivalence between the instances.

    Used by the tests to check witnesses produced elsewhere; the conditions
    are exactly those of Definition 3.7.
    """
    if (left.root.node_id, right.root.node_id) not in relation:
        return False
    left_by_id = {node.node_id: node for node in left.nodes()}
    right_by_id = {node.node_id: node for node in right.nodes()}
    for a_id, b_id in relation:
        if a_id not in left_by_id or b_id not in right_by_id:
            return False
        a, b = left_by_id[a_id], right_by_id[b_id]
        if a.label != b.label:
            return False
        if not _pair_is_consistent(a, b, relation):
            return False
    return True


def formula_equivalent_nodes(tree: LabelledTree, first: Node, second: Node) -> bool:
    """``True`` when two nodes of the same instance are formula equivalent
    (related by some formula equivalence between the instance and itself)."""
    classes = node_equivalence_classes(tree)
    return classes[first.node_id] == classes[second.node_id]


def node_equivalence_classes(tree: LabelledTree) -> dict[int, int]:
    """Partition the nodes of *tree* into formula-equivalence classes.

    Returns a mapping from node id to a class index.  The partition is
    computed by refinement: start from the partition by label and repeatedly
    split blocks whose members disagree on the multiset-free *set* of blocks
    reachable through a child edge or through the parent edge, until stable.
    For the symmetric (bidirectional) edge relation of Definition 3.7 this
    fixpoint is exactly node-level formula equivalence.
    """
    nodes = list(tree.nodes())
    block: dict[int, int] = {}
    # initial partition: by label and by "is root", since the root can only be
    # related to the root
    signature_to_block: dict[tuple, int] = {}
    for node in nodes:
        signature = (node.label, node.parent is None)
        block_id = signature_to_block.setdefault(signature, len(signature_to_block))
        block[node.node_id] = block_id

    while True:
        signature_to_block = {}
        new_block: dict[int, int] = {}
        for node in nodes:
            child_blocks = frozenset(block[child.node_id] for child in node.children)
            parent_block = block[node.parent.node_id] if node.parent is not None else None
            signature = (block[node.node_id], child_blocks, parent_block)
            block_id = signature_to_block.setdefault(signature, len(signature_to_block))
            new_block[node.node_id] = block_id
        if _same_partition(block, new_block):
            return new_block
        block = new_block


def _same_partition(first: dict[int, int], second: dict[int, int]) -> bool:
    """Whether two block labellings induce the same partition."""
    mapping: dict[int, int] = {}
    for key, value in first.items():
        other = second[key]
        if value in mapping:
            if mapping[value] != other:
                return False
        else:
            mapping[value] = other
    return len(set(mapping.values())) == len(mapping)
