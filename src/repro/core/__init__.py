"""Core formalism of the paper: schemas, instances, formulas, guarded forms.

This package implements Section 3 of the paper (the model) and the supporting
machinery used by the decision procedures of Sections 4 and 5:

* :mod:`repro.core.schema` / :mod:`repro.core.instance` — Definition 3.1;
* :mod:`repro.core.homomorphism` — Proposition 3.3;
* :mod:`repro.core.formulas` — Definitions 3.4/3.5 and Lemma 4.4;
* :mod:`repro.core.equivalence` / :mod:`repro.core.canonical` —
  Definitions 3.7/3.8 and Lemma 3.9;
* :mod:`repro.core.access` / :mod:`repro.core.guarded_form` /
  :mod:`repro.core.runs` — Section 3.4 and Definition 3.11;
* :mod:`repro.core.fragments` — Section 3.5 and Table 1.
"""

from repro.core.access import AccessRight, RuleTable
from repro.core.canonical import (
    canonical_depth1_state,
    canonical_instance,
    canonical_shape,
    depth1_state_to_instance,
    is_canonical,
)
from repro.core.equivalence import (
    are_formula_equivalent,
    formula_equivalent_nodes,
    largest_formula_equivalence,
    node_equivalence_classes,
)
from repro.core.fragments import (
    TABLE1,
    ComplexityEntry,
    Fragment,
    classify,
    fragment_for_depth,
    lookup_complexity,
    recommended_procedures,
    table1_rows,
)
from repro.core.guarded_form import (
    Addition,
    Deletion,
    GuardedForm,
    Update,
    guarded_form_from_dicts,
)
from repro.core.homomorphism import find_homomorphism, is_instance_of
from repro.core.instance import Instance
from repro.core.labels import ROOT_LABEL
from repro.core.runs import Run, greedy_random_run, is_complete_run, is_run, replay
from repro.core.schema import Schema, SchemaEdge, depth_one_schema
from repro.core.tree import LabelledTree, Node, Shape

__all__ = [
    "AccessRight",
    "RuleTable",
    "canonical_depth1_state",
    "canonical_instance",
    "canonical_shape",
    "depth1_state_to_instance",
    "is_canonical",
    "are_formula_equivalent",
    "formula_equivalent_nodes",
    "largest_formula_equivalence",
    "node_equivalence_classes",
    "TABLE1",
    "ComplexityEntry",
    "Fragment",
    "classify",
    "fragment_for_depth",
    "lookup_complexity",
    "recommended_procedures",
    "table1_rows",
    "Addition",
    "Deletion",
    "GuardedForm",
    "Update",
    "guarded_form_from_dicts",
    "find_homomorphism",
    "is_instance_of",
    "Instance",
    "ROOT_LABEL",
    "Run",
    "greedy_random_run",
    "is_complete_run",
    "is_run",
    "replay",
    "Schema",
    "SchemaEdge",
    "depth_one_schema",
    "LabelledTree",
    "Node",
    "Shape",
]
