"""Node labels (the set ``L`` of Section 3.1).

The paper assumes a set ``L`` of node labels with a distinguished label ``r``
reserved for the roots of schemas and instances.  This module centralises the
conventions used throughout the library:

* labels are non-empty strings,
* the reserved root label is :data:`ROOT_LABEL` (``"r"``),
* labels may contain letters, digits, ``_``, ``'``, ``-`` and ``.`` so that the
  gadget labels produced by the reductions (e.g. ``init(q0,0,+)`` is rendered
  as ``init_q0_0_p``) remain expressible and parseable.
"""

from __future__ import annotations

import re

from repro.exceptions import LabelError

#: The reserved label of every schema/instance root (Definition 3.1).
ROOT_LABEL = "r"

#: Characters allowed in labels.  The apostrophe is included because the paper
#: uses primed marks (``d'``) in the decrement gadget of Theorem 4.1.
_LABEL_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_'\-.]*\Z")


def is_valid_label(label: str) -> bool:
    """Return ``True`` when *label* is a well-formed node label."""
    return isinstance(label, str) and bool(_LABEL_RE.match(label))


def validate_label(label: str) -> str:
    """Validate *label* and return it.

    Raises:
        LabelError: if the label is empty or contains illegal characters.
    """
    if not is_valid_label(label):
        raise LabelError(f"invalid node label: {label!r}")
    return label


def validate_field_label(label: str) -> str:
    """Validate a field label (a label of a non-root schema node).

    Any well-formed label is allowed — including ``r``: the paper's own
    running example abbreviates both *reject* and *reason* to ``r``
    (Figure 1), so the root label is reserved only in the sense that every
    root carries it, not in the sense that fields may not reuse it.
    """
    return validate_label(label)


def fresh_label(base: str, taken: set[str]) -> str:
    """Return a label derived from *base* that does not occur in *taken*.

    Used by the reductions and transformations (Corollary 4.2, Section 4.2,
    Corollary 4.7) which need to add auxiliary fields (``deleted``, ``final``,
    ``reset``, ``build``) without clashing with existing schema labels.
    """
    validate_label(base)
    if base not in taken:
        return base
    index = 1
    while f"{base}_{index}" in taken:
        index += 1
    return f"{base}_{index}"
