"""Runs of a guarded form (Definition 3.11).

A run of a guarded form ``(M, A, I0, φ)`` is a sequence ``I0, …, In`` of
instances where each ``Ii`` is obtained from ``Ii−1`` by a single allowed
addition or deletion; the run is *complete* when ``In`` satisfies ``φ``.

Runs are represented by their update sequences (the instances are recovered
by replay), which keeps witnesses produced by the analyses compact and
serialisable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.core.guarded_form import GuardedForm, Update
from repro.core.instance import Instance
from repro.exceptions import RunError


@dataclass
class Run:
    """A run of a guarded form, stored as its update sequence.

    Attributes:
        guarded_form: the guarded form the run belongs to.
        updates: the sequence of updates, starting from the initial instance.
        start: the instance the run starts from; ``None`` means the guarded
            form's initial instance (the common case — the semi-soundness
            analysis uses explicit start instances).
    """

    guarded_form: GuardedForm
    updates: list[Update] = field(default_factory=list)
    start: Optional[Instance] = None

    def initial_instance(self) -> Instance:
        """The instance the run starts from."""
        if self.start is not None:
            return self.start.copy()
        return self.guarded_form.initial_instance()

    def instances(self) -> Iterator[Instance]:
        """Replay the run, yielding ``I0, …, In``.

        Raises:
            RunError: when some update in the sequence is not allowed on the
                instance it is applied to.
        """
        current = self.initial_instance()
        yield current.copy()
        for index, update in enumerate(self.updates):
            if not self.guarded_form.is_update_allowed(current, update):
                raise RunError(
                    f"update #{index} ({update}) is not allowed; the sequence is "
                    "not a run of the guarded form"
                )
            current = self.guarded_form.apply_unchecked(current, update, in_place=True)
            yield current.copy()

    def final_instance(self) -> Instance:
        """The last instance ``In`` of the run."""
        last: Optional[Instance] = None
        for instance in self.instances():
            last = instance
        assert last is not None
        return last

    def is_valid(self) -> bool:
        """Whether every update in the sequence is allowed when applied."""
        try:
            for _ in self.instances():
                pass
        except RunError:
            return False
        return True

    def is_complete(self) -> bool:
        """Whether the run is a complete run (``In ⊨ φ``)."""
        return self.is_valid() and self.guarded_form.is_complete(self.final_instance())

    def __len__(self) -> int:
        return len(self.updates)

    def describe(self) -> list[str]:
        """Human-readable step descriptions (for reports and examples)."""
        descriptions: list[str] = []
        current = self.initial_instance()
        for update in self.updates:
            descriptions.append(update.describe(current))
            current = self.guarded_form.apply_unchecked(current, update, in_place=True)
        return descriptions


def replay(guarded_form: GuardedForm, updates: Sequence[Update], start: Optional[Instance] = None) -> Instance:
    """Replay *updates* on the guarded form and return the final instance."""
    return Run(guarded_form, list(updates), start).final_instance()


def is_run(guarded_form: GuardedForm, updates: Sequence[Update], start: Optional[Instance] = None) -> bool:
    """Whether *updates* form a run of *guarded_form* (Definition 3.11)."""
    return Run(guarded_form, list(updates), start).is_valid()


def is_complete_run(
    guarded_form: GuardedForm, updates: Sequence[Update], start: Optional[Instance] = None
) -> bool:
    """Whether *updates* form a complete run of *guarded_form*."""
    return Run(guarded_form, list(updates), start).is_complete()


def greedy_random_run(
    guarded_form: GuardedForm,
    max_steps: int,
    seed: int = 0,
    start: Optional[Instance] = None,
) -> Run:
    """Generate a random run by repeatedly applying a random enabled update.

    Used by property-based tests ("every prefix of a run is a run", "states
    visited by a run are reachable") and by the fb-wis examples to simulate
    user behaviour.
    """
    import random

    rng = random.Random(seed)
    run = Run(guarded_form, [], start)
    current = run.initial_instance()
    for _ in range(max_steps):
        updates = guarded_form.enabled_updates(current)
        if not updates:
            break
        update = rng.choice(updates)
        run.updates.append(update)
        current = guarded_form.apply_unchecked(current, update, in_place=True)
    return run
