"""Form instances (Definition 3.1, Figure 2).

An *instance* of a schema ``M`` is a rooted node-labelled tree that admits a
homomorphism into ``M`` (Definition 3.1).  Because sibling labels in a schema
are unique, that homomorphism — when it exists — is unique (Proposition 3.3)
and maps every instance node to the schema node addressed by the instance
node's label path.  :class:`Instance` therefore simply validates label paths
against its schema and exposes the homomorphism through
:meth:`Instance.schema_node_of`.

Unlike schemas, instances may contain several siblings with the same label
(e.g. several ``period`` fields of a leave application, Figure 2(a)).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.labels import ROOT_LABEL
from repro.core.schema import Schema, SchemaEdge, SchemaPath, format_schema_path
from repro.core.tree import LabelledTree, Node, Shape
from repro.exceptions import InstanceError


class Instance(LabelledTree):
    """A form instance: a tree homomorphic to its :class:`~repro.core.schema.Schema`.

    Instances are mutable; the only structural updates are leaf additions and
    deletions, mirroring the update model of Section 3.4.  Whether a given
    update is *allowed* is decided by the guarded form's access rules, not by
    this class — :class:`Instance` only enforces that updates keep the tree an
    instance of the schema.
    """

    def __init__(self, schema: Schema) -> None:
        super().__init__(ROOT_LABEL)
        self._schema = schema

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, schema: Schema) -> "Instance":
        """The instance consisting of only the root node (the usual initial
        instance of a guarded form, Example 3.12)."""
        return cls(schema)

    @classmethod
    def from_shape(cls, schema: Schema, shape: Shape) -> "Instance":
        """Build an instance from a :data:`~repro.core.tree.Shape` tuple.

        The shape's root label must be ``r``; every node's label path must
        exist in *schema*.
        """
        instance = cls(schema)
        label, children = shape
        if label != ROOT_LABEL:
            raise InstanceError(
                f"instance root must be labelled {ROOT_LABEL!r}, got {label!r}"
            )
        instance._grow(instance.root, children)
        return instance

    @classmethod
    def from_node_specs(
        cls,
        schema: Schema,
        root_spec: "list | tuple",
        next_id: Optional[int] = None,
    ) -> "Instance":
        """Rebuild an instance from id-preserving node specs (see
        :meth:`~repro.core.tree.LabelledTree.from_node_specs`).

        Used by the engine's persistent state store to restore canonical
        representatives with the exact node ids the recorded transitions
        reference.
        """
        instance = super().from_node_specs(root_spec, next_id)
        assert isinstance(instance, Instance)
        instance._schema = schema
        instance.validate()
        return instance

    @classmethod
    def from_paths(cls, schema: Schema, paths: Iterable[str | SchemaPath]) -> "Instance":
        """Build an instance containing one node for every path in *paths*
        (plus all the ancestors those paths require).

        This is a convenient way to build instances without repeated sibling
        labels, e.g. ``Instance.from_paths(schema, ["a/n", "a/d", "s"])``.
        """
        instance = cls(schema)
        for path in paths:
            instance.ensure_path(path)
        return instance

    def _grow(self, parent: Node, children: Iterable[Shape]) -> None:
        for label, sub in children:
            child = self.add_field(parent, label)
            self._grow(child, sub)

    # ------------------------------------------------------------------ #
    # schema awareness
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> Schema:
        """The schema this tree is an instance of."""
        return self._schema

    def schema_node_of(self, node: Node | int) -> Node:
        """The image ``v̂`` of *node* under the unique homomorphism
        (Proposition 3.3)."""
        resolved = self._resolve(node)
        return self._schema.node_at(resolved.label_path())

    def schema_edge_of(self, node: Node | int) -> SchemaEdge:
        """The schema edge ``ê`` whose end node is the image of *node*."""
        resolved = self._resolve(node)
        if resolved.is_root():
            raise InstanceError("the root node is not the end of any edge")
        return SchemaEdge(resolved.label_path())

    def validate(self) -> None:
        """Check that the tree really is an instance of its schema.

        Raises:
            InstanceError: if some node's label path does not exist in the
                schema or the root label is wrong.
        """
        if self.root.label != ROOT_LABEL:
            raise InstanceError(
                f"instance root must be labelled {ROOT_LABEL!r}, got {self.root.label!r}"
            )
        for node in self.nodes():
            path = node.label_path()
            if not self._schema.has_path(path):
                raise InstanceError(
                    f"instance node with label path {format_schema_path(path)!r} "
                    "has no corresponding schema node"
                )

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def add_field(self, parent: Node | int, label: str) -> Node:
        """Add a new leaf with *label* under *parent*, checking the schema.

        Raises:
            InstanceError: if the schema does not have a child with *label*
                under the schema node corresponding to *parent*.
        """
        parent_node = self._resolve(parent)
        target_path = parent_node.label_path() + (label,)
        if not self._schema.has_path(target_path):
            raise InstanceError(
                f"schema has no field at path {format_schema_path(target_path)!r}"
            )
        return self.add_leaf(parent_node, label)

    def remove_field(self, node: Node | int) -> None:
        """Remove the leaf *node* (alias of :meth:`remove_leaf`, provided for
        symmetry with :meth:`add_field`)."""
        self.remove_leaf(node)

    def ensure_path(self, path: str | SchemaPath) -> Node:
        """Ensure a node with the given label path exists and return it.

        Creates missing ancestors.  When several nodes already share a prefix
        of the path the first one found is extended; this helper is meant for
        building instances without repeated sibling labels.
        """
        from repro.core.schema import parse_schema_path

        normalised = parse_schema_path(path)
        if not self._schema.has_path(normalised):
            raise InstanceError(
                f"schema has no field at path {format_schema_path(normalised)!r}"
            )
        node = self.root
        for label in normalised:
            existing = node.children_with_label(label)
            node = existing[0] if existing else self.add_leaf(node, label)
        return node

    def find_path(self, path: str | SchemaPath) -> Optional[Node]:
        """Return some node with the given label path, or ``None``."""
        from repro.core.schema import parse_schema_path

        normalised = parse_schema_path(path)
        nodes = self.nodes_with_label_path(normalised)
        return nodes[0] if nodes else None

    def has_path(self, path: str | SchemaPath) -> bool:
        """Return ``True`` when some node has the given label path."""
        return self.find_path(path) is not None

    # ------------------------------------------------------------------ #
    # copying
    # ------------------------------------------------------------------ #

    def copy(self) -> "Instance":
        """Deep copy sharing the (immutable in practice) schema object."""
        clone = super().copy()
        assert isinstance(clone, Instance)
        clone._schema = self._schema
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance(size={self.size()}, depth={self.depth()})"
