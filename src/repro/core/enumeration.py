"""Exhaustive enumeration of schema instances.

Several exact (but exponential) procedures in the library — brute-force
satisfiability over a schema, cross-checks of the state-space explorers, the
coNP semi-soundness certificate search of Corollary 5.7 — need to enumerate
all instances of a schema up to a bound on how many copies of each field may
appear under a single parent node.  This module provides that enumeration in
terms of :data:`~repro.core.tree.Shape` values (isomorphism classes), so no
two yielded instances are isomorphic.
"""

from __future__ import annotations

from itertools import combinations_with_replacement, product
from typing import Iterator

from repro.core.instance import Instance
from repro.core.labels import ROOT_LABEL
from repro.core.schema import Schema
from repro.core.tree import Node, Shape


def enumerate_instance_shapes(schema: Schema, max_copies: int = 1) -> Iterator[Shape]:
    """Yield the shapes of all instances of *schema* in which every schema
    field occurs at most *max_copies* times under any single parent node.

    Shapes are isomorphism classes, so the enumeration never yields two
    isomorphic instances.  The number of shapes grows doubly exponentially
    with schema depth; this is intended for small schemas (exact oracles and
    tests).
    """
    for children in _subtree_combinations(schema.root, max_copies):
        yield (ROOT_LABEL, children)


def enumerate_instances(schema: Schema, max_copies: int = 1) -> Iterator[Instance]:
    """Yield :class:`~repro.core.instance.Instance` objects for every shape of
    :func:`enumerate_instance_shapes`."""
    for shape in enumerate_instance_shapes(schema, max_copies):
        yield Instance.from_shape(schema, shape)


def count_instances(schema: Schema, max_copies: int = 1) -> int:
    """Number of pairwise non-isomorphic instances within the copy bound."""
    return sum(1 for _ in enumerate_instance_shapes(schema, max_copies))


def _subtree_variants(schema_node: Node, max_copies: int) -> list[Shape]:
    """All shapes a single instance node mapped to *schema_node* can take."""
    variants: list[Shape] = []
    for children in _subtree_combinations(schema_node, max_copies):
        variants.append((schema_node.label, children))
    return variants


def _subtree_combinations(schema_node: Node, max_copies: int) -> Iterator[tuple[Shape, ...]]:
    """All sorted child-tuples an instance node mapped to *schema_node* can have."""
    per_child_options: list[list[tuple[Shape, ...]]] = []
    for schema_child in schema_node.children:
        variants = _subtree_variants(schema_child, max_copies)
        options: list[tuple[Shape, ...]] = []
        for count in range(max_copies + 1):
            if count == 0:
                options.append(())
                continue
            for combo in combinations_with_replacement(variants, count):
                options.append(tuple(combo))
        per_child_options.append(options)
    if not per_child_options:
        yield ()
        return
    for choice in product(*per_child_options):
        merged: list[Shape] = []
        for group in choice:
            merged.extend(group)
        yield tuple(sorted(merged))
