"""Form schemas (Definition 3.1).

A *schema* is a rooted node-labelled tree in which no two siblings have the
same label and the root is labelled ``r``.  Because sibling labels are unique,
every schema node is identified by the sequence of labels on the path from the
root to it; this sequence is called a *schema path* throughout the library and
is the canonical way to address schema nodes and schema edges (the paper's
Example 3.12 identifies edges "by the paths to their end nodes" in exactly
this way, e.g. ``a/p/b``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core.labels import ROOT_LABEL, validate_field_label
from repro.core.tree import LabelledTree, Node
from repro.exceptions import SchemaError

#: A schema path: the labels from (excluding) the root down to a schema node.
#: The root itself is addressed by the empty path ``()``.
SchemaPath = tuple[str, ...]


def parse_schema_path(path: "SchemaPath | str | Iterable[str]") -> SchemaPath:
    """Normalise a schema-path argument.

    Accepts a tuple of labels, an iterable of labels, or a ``/``-separated
    string such as ``"a/p/b"`` (the paper's notation).  The empty string and
    the string ``"."`` denote the root (``"r"`` is *not* accepted for the
    root because fields may legitimately be labelled ``r``, as in the paper's
    own Figure 1).
    """
    if isinstance(path, str):
        text = path.strip()
        if text in ("", "."):
            return ()
        return tuple(part for part in text.split("/") if part)
    return tuple(path)


def format_schema_path(path: SchemaPath) -> str:
    """Render a schema path in the paper's ``a/p/b`` notation (root = ``r``)."""
    return "/".join(path) if path else ROOT_LABEL


class SchemaEdge:
    """An edge of the schema, addressed by the path to its end node.

    Access rules (Section 3.4) are attached to schema edges, so these objects
    are the keys of the access-rule function ``A``.
    """

    __slots__ = ("path",)

    def __init__(self, path: "SchemaPath | str | Iterable[str]") -> None:
        normalised = parse_schema_path(path)
        if not normalised:
            raise SchemaError("a schema edge cannot end at the root")
        self.path: SchemaPath = normalised

    @property
    def parent_path(self) -> SchemaPath:
        """Schema path of the edge's start node."""
        return self.path[:-1]

    @property
    def label(self) -> str:
        """Label of the edge's end node."""
        return self.path[-1]

    @property
    def depth(self) -> int:
        """Depth of the edge's end node (children of the root have depth 1)."""
        return len(self.path)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchemaEdge):
            return NotImplemented
        return self.path == other.path

    def __hash__(self) -> int:
        return hash(("SchemaEdge", self.path))

    def __repr__(self) -> str:
        return f"SchemaEdge({format_schema_path(self.path)!r})"


class Schema(LabelledTree):
    """A form schema: a rooted node-labelled tree with unique sibling labels.

    Schemas are usually built with :meth:`Schema.from_dict`::

        leave = Schema.from_dict({
            "application": {
                "name": {}, "dept": {},
                "period": {"begin": {}, "end": {}},
            },
            "submit": {},
            "decision": {"approve": {}, "reject": {"reason": {}}},
            "final": {},
        })
    """

    def __init__(self) -> None:
        super().__init__(ROOT_LABEL)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dict(cls, nested: Mapping[str, Mapping]) -> "Schema":
        """Build a schema from a nested mapping of field labels.

        The mapping describes the children of the root; each value is a nested
        mapping describing that field's own children (use ``{}`` or ``None``
        for leaves).
        """
        schema = cls()
        schema._grow_schema(schema.root, nested)
        return schema

    def _grow_schema(self, parent: Node, nested: Mapping[str, Mapping]) -> None:
        for label, sub in nested.items():
            validate_field_label(label)
            if parent.has_child_with_label(label):
                raise SchemaError(
                    f"duplicate sibling label {label!r} under "
                    f"{format_schema_path(parent.label_path())!r}"
                )
            child = self.add_leaf(parent, label)
            self._grow_schema(child, sub or {})

    def add_field(self, parent_path: "SchemaPath | str", label: str) -> SchemaEdge:
        """Add a new field with *label* under the schema node at *parent_path*.

        Returns the new :class:`SchemaEdge`.  Used by the transformations of
        Corollary 4.2 / Section 4.2 / Corollary 4.7 which extend a schema with
        auxiliary fields.
        """
        parent = self.node_at(parent_path)
        validate_field_label(label)
        if parent.has_child_with_label(label):
            raise SchemaError(
                f"duplicate sibling label {label!r} under "
                f"{format_schema_path(parent.label_path())!r}"
            )
        child = self.add_leaf(parent, label)
        return SchemaEdge(child.label_path())

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #

    def node_at(self, path: "SchemaPath | str | Iterable[str]") -> Node:
        """Return the schema node addressed by *path*.

        Raises:
            SchemaError: if the path does not exist in the schema.
        """
        normalised = parse_schema_path(path)
        node = self.root
        for label in normalised:
            for child in node.children:
                if child.label == label:
                    node = child
                    break
            else:
                raise SchemaError(
                    f"schema has no node at path {format_schema_path(normalised)!r}"
                )
        return node

    def has_path(self, path: "SchemaPath | str | Iterable[str]") -> bool:
        """Return ``True`` when *path* addresses a schema node."""
        try:
            self.node_at(path)
        except SchemaError:
            return False
        return True

    def child_labels(self, path: "SchemaPath | str | Iterable[str]" = ()) -> list[str]:
        """Labels of the children of the schema node at *path*."""
        return [child.label for child in self.node_at(path).children]

    def edge(self, path: "SchemaPath | str | Iterable[str]") -> SchemaEdge:
        """Return the schema edge ending at *path* (validating it exists)."""
        normalised = parse_schema_path(path)
        self.node_at(normalised)
        return SchemaEdge(normalised)

    def edges_list(self) -> list[SchemaEdge]:
        """All schema edges, in pre-order of their end nodes."""
        result = []
        for node in self.nodes():
            if node.is_root():
                continue
            result.append(SchemaEdge(node.label_path()))
        return result

    def paths(self) -> Iterator[SchemaPath]:
        """Iterate over all schema paths, including the root's empty path."""
        for node in self.nodes():
            yield node.label_path()

    def field_labels(self) -> set[str]:
        """The set of all labels used by non-root schema nodes."""
        return {node.label for node in self.nodes() if not node.is_root()}

    # ------------------------------------------------------------------ #
    # validation and copying
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check the schema invariants of Definition 3.1.

        Raises:
            SchemaError: if the root is not labelled ``r`` or two siblings
                share a label.
        """
        if self.root.label != ROOT_LABEL:
            raise SchemaError(
                f"schema root must be labelled {ROOT_LABEL!r}, got {self.root.label!r}"
            )
        for node in self.nodes():
            seen: set[str] = set()
            for child in node.children:
                if child.label in seen:
                    raise SchemaError(
                        f"duplicate sibling label {child.label!r} under "
                        f"{format_schema_path(node.label_path())!r}"
                    )
                seen.add(child.label)

    def copy(self) -> "Schema":
        """Deep copy of the schema."""
        clone = super().copy()
        assert isinstance(clone, Schema)
        return clone

    def to_dict(self) -> dict:
        """Inverse of :meth:`from_dict`."""

        def build(node: Node) -> dict:
            return {child.label: build(child) for child in node.children}

        return build(self.root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema(fields={self.size() - 1}, depth={self.depth()})"


def depth_one_schema(labels: Iterable[str]) -> Schema:
    """Convenience constructor for the depth-1 schemas used by the depth-1
    fragments and most reductions: the root with one child per label."""
    return Schema.from_dict({label: {} for label in labels})
