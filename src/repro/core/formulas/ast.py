"""Abstract syntax of formulas and path expressions (Definition 3.4).

The grammar of the paper is::

    F ::= P | ¬F | (F ∧ F) | (F ∨ F)
    P ::= .. | L | (P/P) | P[F]

Formulas are used as access rules and completion formulas of guarded forms; a
bare path expression ``P`` used as a formula asserts the *existence* of a node
reachable via ``P`` (Definition 3.5), which the AST makes explicit through the
:class:`Exists` wrapper.

Two constant formulas :class:`Top` (always true) and :class:`Bottom` (always
false) are added as a convenience: the paper frequently writes rules that are
"always true" (e.g. Theorem 5.1, Theorem 5.3) and rules that are simply absent
("there are no other access rights", Theorem 4.6), which correspond to ``Top``
and ``Bottom`` respectively.  Both constants count as *positive* formulas for
fragment classification because they are monotone under edge additions.

All AST nodes are immutable and hashable, compare structurally, and support a
small construction DSL:

* ``Step("a") / Step("b")`` builds the composition ``a/b``;
* ``Step("a")[formula]`` builds the filter ``a[formula]``;
* ``formula & other``, ``formula | other``, ``~formula`` build conjunction,
  disjunction and negation (path expressions are implicitly promoted to
  :class:`Exists` formulas).
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.core.labels import validate_label
from repro.exceptions import FormulaError

FormulaLike = Union["Formula", "PathExpr"]


def _as_formula(value: FormulaLike) -> "Formula":
    """Promote a path expression to an existence formula (Definition 3.4's
    ``F ::= P`` production)."""
    if isinstance(value, Formula):
        return value
    if isinstance(value, PathExpr):
        return Exists(value)
    raise FormulaError(f"cannot interpret {value!r} as a formula")


class _AstNode:
    """Shared behaviour of formulas and path expressions."""

    __slots__ = ()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:
        return self.to_text(unicode_ops=False)

    def to_text(self, unicode_ops: bool = True) -> str:
        """Render the node in the paper's concrete syntax.

        With ``unicode_ops=True`` the connectives are ``¬ ∧ ∨``; otherwise the
        ASCII forms ``! & |`` accepted by the parser are used.
        """
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# path expressions
# --------------------------------------------------------------------------- #


class PathExpr(_AstNode):
    """Base class of path expressions ``P``."""

    __slots__ = ()

    def __truediv__(self, other: "PathExpr") -> "Slash":
        if not isinstance(other, PathExpr):
            raise FormulaError(f"cannot compose path with {other!r}")
        return Slash(self, other)

    def __getitem__(self, condition: FormulaLike) -> "Filter":
        return Filter(self, _as_formula(condition))

    # promotion to formulas --------------------------------------------------
    def __invert__(self) -> "Not":
        return Not(Exists(self))

    def __and__(self, other: FormulaLike) -> "And":
        return And(Exists(self), _as_formula(other))

    def __rand__(self, other: FormulaLike) -> "And":
        return And(_as_formula(other), Exists(self))

    def __or__(self, other: FormulaLike) -> "Or":
        return Or(Exists(self), _as_formula(other))

    def __ror__(self, other: FormulaLike) -> "Or":
        return Or(_as_formula(other), Exists(self))

    def as_formula(self) -> "Exists":
        """The existence formula asserting this path has at least one target."""
        return Exists(self)

    def steps(self) -> Iterator["PathExpr"]:
        """Iterate over the top-level ``/``-separated steps of the path."""
        if isinstance(self, Slash):
            yield from self.left.steps()
            yield from self.right.steps()
        else:
            yield self


class Parent(PathExpr):
    """The parent step ``..``."""

    __slots__ = ()

    def _key(self) -> tuple:
        return ()

    def to_text(self, unicode_ops: bool = True) -> str:
        return ".."


class Step(PathExpr):
    """A child step selecting children with a given label (``L``)."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        validate_label(label)
        self.label = label

    def _key(self) -> tuple:
        return (self.label,)

    def to_text(self, unicode_ops: bool = True) -> str:
        return self.label


class Slash(PathExpr):
    """Path composition ``P/P``."""

    __slots__ = ("left", "right")

    def __init__(self, left: PathExpr, right: PathExpr) -> None:
        if not isinstance(left, PathExpr) or not isinstance(right, PathExpr):
            raise FormulaError("both sides of '/' must be path expressions")
        self.left = left
        self.right = right

    def _key(self) -> tuple:
        return (self.left, self.right)

    def to_text(self, unicode_ops: bool = True) -> str:
        return f"{self.left.to_text(unicode_ops)}/{self.right.to_text(unicode_ops)}"


class Filter(PathExpr):
    """A filtered path ``P[F]``: the targets of ``P`` that satisfy ``F``."""

    __slots__ = ("path", "condition")

    def __init__(self, path: PathExpr, condition: FormulaLike) -> None:
        if not isinstance(path, PathExpr):
            raise FormulaError("the subject of a filter must be a path expression")
        self.path = path
        self.condition = _as_formula(condition)

    def _key(self) -> tuple:
        return (self.path, self.condition)

    def to_text(self, unicode_ops: bool = True) -> str:
        base = self.path.to_text(unicode_ops)
        if isinstance(self.path, Slash):
            base = f"({base})"
        return f"{base}[{self.condition.to_text(unicode_ops)}]"


# --------------------------------------------------------------------------- #
# formulas
# --------------------------------------------------------------------------- #


class Formula(_AstNode):
    """Base class of formulas ``F``."""

    __slots__ = ()

    def __invert__(self) -> "Not":
        return Not(self)

    def __and__(self, other: FormulaLike) -> "And":
        return And(self, _as_formula(other))

    def __rand__(self, other: FormulaLike) -> "And":
        return And(_as_formula(other), self)

    def __or__(self, other: FormulaLike) -> "Or":
        return Or(self, _as_formula(other))

    def __ror__(self, other: FormulaLike) -> "Or":
        return Or(_as_formula(other), self)

    # -- structural queries -------------------------------------------------

    def children(self) -> tuple["Formula", ...]:
        """Direct formula sub-terms (not descending into path expressions)."""
        return ()

    def subformulas(self) -> Iterator["Formula"]:
        """All formula sub-terms including the formula itself and the
        conditions nested inside path filters."""
        yield self
        for child in self.children():
            yield from child.subformulas()
        for path in self.paths():
            yield from _path_conditions(path)

    def paths(self) -> tuple[PathExpr, ...]:
        """Path expressions occurring directly in this node."""
        return ()

    def is_positive(self) -> bool:
        """``True`` when the formula contains no negation anywhere (including
        inside path filters).  Positive formulas are monotone under edge
        additions, which is what the ``A+`` / ``φ+`` fragments exploit."""
        return all(not isinstance(sub, Not) for sub in self.subformulas())

    def labels(self) -> set[str]:
        """All node labels mentioned anywhere in the formula."""
        result: set[str] = set()
        for sub in self.subformulas():
            for p in sub.paths():
                result |= _path_labels(p)
        return result

    def size(self) -> int:
        """Number of AST nodes (formula and path nodes)."""
        total = 0
        for sub in self.subformulas():
            total += 1
            for p in sub.paths():
                total += _path_size(p)
        return total


class Top(Formula):
    """The constant true formula (extension; see module docstring)."""

    __slots__ = ()

    def _key(self) -> tuple:
        return ()

    def to_text(self, unicode_ops: bool = True) -> str:
        return "true"


class Bottom(Formula):
    """The constant false formula (extension; see module docstring)."""

    __slots__ = ()

    def _key(self) -> tuple:
        return ()

    def to_text(self, unicode_ops: bool = True) -> str:
        return "false"


class Exists(Formula):
    """A path expression used as a formula: true when the path has a target."""

    __slots__ = ("path",)

    def __init__(self, path: PathExpr) -> None:
        if not isinstance(path, PathExpr):
            raise FormulaError("Exists expects a path expression")
        self.path = path

    def _key(self) -> tuple:
        return (self.path,)

    def paths(self) -> tuple[PathExpr, ...]:
        return (self.path,)

    def to_text(self, unicode_ops: bool = True) -> str:
        return self.path.to_text(unicode_ops)


class Not(Formula):
    """Negation ``¬F``."""

    __slots__ = ("operand",)

    def __init__(self, operand: FormulaLike) -> None:
        self.operand = _as_formula(operand)

    def _key(self) -> tuple:
        return (self.operand,)

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def to_text(self, unicode_ops: bool = True) -> str:
        symbol = "¬" if unicode_ops else "!"
        inner = self.operand.to_text(unicode_ops)
        if isinstance(self.operand, (And, Or)):
            inner = f"({inner})"
        return f"{symbol}{inner}"


class _Binary(Formula):
    __slots__ = ("left", "right")
    _unicode_symbol = ""
    _ascii_symbol = ""

    def __init__(self, left: FormulaLike, right: FormulaLike) -> None:
        self.left = _as_formula(left)
        self.right = _as_formula(right)

    def _key(self) -> tuple:
        return (self.left, self.right)

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def to_text(self, unicode_ops: bool = True) -> str:
        symbol = self._unicode_symbol if unicode_ops else self._ascii_symbol
        parts = []
        for index, side in enumerate((self.left, self.right)):
            text = side.to_text(unicode_ops)
            mixed_operator = isinstance(side, (And, Or)) and type(side) is not type(self)
            # the parser is left-associative, so a nested binary on the right
            # must be parenthesised to reproduce the same tree when re-parsed
            nested_right = index == 1 and isinstance(side, (And, Or))
            if mixed_operator or nested_right:
                text = f"({text})"
            parts.append(text)
        return f"{parts[0]} {symbol} {parts[1]}"


class And(_Binary):
    """Conjunction ``F ∧ F``."""

    __slots__ = ()
    _unicode_symbol = "∧"
    _ascii_symbol = "&"


class Or(_Binary):
    """Disjunction ``F ∨ F``."""

    __slots__ = ()
    _unicode_symbol = "∨"
    _ascii_symbol = "|"


# --------------------------------------------------------------------------- #
# path helpers
# --------------------------------------------------------------------------- #


def _path_conditions(path: PathExpr) -> Iterator[Formula]:
    """Yield subformulas nested inside a path expression's filters."""
    if isinstance(path, Slash):
        yield from _path_conditions(path.left)
        yield from _path_conditions(path.right)
    elif isinstance(path, Filter):
        yield from path.condition.subformulas()
        yield from _path_conditions(path.path)


def _path_labels(path: PathExpr) -> set[str]:
    if isinstance(path, Step):
        return {path.label}
    if isinstance(path, Slash):
        return _path_labels(path.left) | _path_labels(path.right)
    if isinstance(path, Filter):
        return _path_labels(path.path) | path.condition.labels()
    return set()


def _path_size(path: PathExpr) -> int:
    if isinstance(path, Slash):
        return 1 + _path_size(path.left) + _path_size(path.right)
    if isinstance(path, Filter):
        return 1 + _path_size(path.path) + path.condition.size()
    return 1


def path_up_depth(path: PathExpr) -> int:
    """How many levels above the evaluation node the path can reach."""
    if isinstance(path, Parent):
        return 1
    if isinstance(path, Step):
        return 0
    if isinstance(path, Filter):
        return max(path_up_depth(path.path), path_up_depth_formula(path.condition))
    if isinstance(path, Slash):
        # a/.. can climb after descending; conservative upper bound
        return path_up_depth(path.left) + path_up_depth(path.right)
    return 0


def path_up_depth_formula(formula: Formula) -> int:
    """Upper bound on how far above the evaluation node *formula* can look."""
    depth = 0
    for sub in formula.subformulas():
        for p in sub.paths():
            depth = max(depth, path_up_depth(p))
    return depth


def path_down_depth(path: PathExpr) -> int:
    """How many levels below the evaluation node the path can reach."""
    if isinstance(path, Parent):
        return 0
    if isinstance(path, Step):
        return 1
    if isinstance(path, Filter):
        return max(path_down_depth(path.path), formula_down_depth(path.condition))
    if isinstance(path, Slash):
        return path_down_depth(path.left) + path_down_depth(path.right)
    return 0


def formula_down_depth(formula: Formula) -> int:
    """Upper bound on how far below the evaluation node *formula* can look."""
    depth = 0
    for sub in formula.subformulas():
        for p in sub.paths():
            depth = max(depth, path_down_depth(p))
    return depth
