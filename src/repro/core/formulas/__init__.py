"""The formula language of Definition 3.4 (an abbreviated-XPath fragment).

Sub-modules:

* :mod:`repro.core.formulas.ast` — the abstract syntax tree;
* :mod:`repro.core.formulas.parser` — the concrete-syntax parser;
* :mod:`repro.core.formulas.semantics` — the evaluation relation of Def. 3.5;
* :mod:`repro.core.formulas.normalize` — the rewriting rules of Lemma 4.4;
* :mod:`repro.core.formulas.builders` — a small construction DSL;
* :mod:`repro.core.formulas.satisfiability` — satisfiability procedures
  (Corollary 4.5).
"""

from repro.core.formulas.ast import (
    And,
    Bottom,
    Exists,
    Filter,
    Formula,
    Not,
    Or,
    Parent,
    PathExpr,
    Slash,
    Step,
    Top,
)
from repro.core.formulas.builders import (
    child_path,
    conj,
    disj,
    iff,
    implies,
    label,
    lnot,
    parent_path,
    path,
    to_formula,
    up,
)
from repro.core.formulas.parser import parse_formula
from repro.core.formulas.semantics import evaluate, path_targets

__all__ = [
    "And",
    "Bottom",
    "Exists",
    "Filter",
    "Formula",
    "Not",
    "Or",
    "Parent",
    "PathExpr",
    "Slash",
    "Step",
    "Top",
    "child_path",
    "conj",
    "disj",
    "iff",
    "implies",
    "label",
    "lnot",
    "parent_path",
    "path",
    "to_formula",
    "up",
    "parse_formula",
    "evaluate",
    "path_targets",
]
