"""Formula satisfiability (Corollary 4.5).

Corollary 4.5 shows that deciding whether a formula of Definition 3.4 is
satisfiable (some node of some tree makes it true) is NP-complete when the
depth of instances is bounded by a constant and PSPACE-complete in general.
This module provides three procedures with different trade-offs:

* :func:`is_satisfiable` — a witness-tree search directly modelled on the
  constructive proof of Lemma 4.4: it maintains a partially built witness
  tree together with the outstanding obligations of each node, branching over
  disjunctions and over whether a child requirement is met by an existing or
  a new child.  The procedure is exact on every input it decides; a node
  budget caps the search and an exhausted budget is reported as *undecided*
  rather than guessed.
* :func:`exists_instance_satisfying` — exact brute force over all instances of
  a given schema with a bounded number of copies per field (the form of
  satisfiability the guarded-form procedures need).
* :func:`propositional_translation` / :func:`is_satisfiable_propositional` —
  the fast path for purely propositional formulas (paths that are single
  label steps), which is what the SAT reduction of Theorem 5.1 produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.enumeration import enumerate_instances
from repro.core.formulas.ast import (
    And,
    Bottom,
    Exists,
    Filter,
    Formula,
    Not,
    Or,
    Parent,
    PathExpr,
    Slash,
    Step,
    Top,
)
from repro.core.formulas.normalize import to_nnf, to_single_step_form
from repro.core.formulas.semantics import evaluate
from repro.core.schema import Schema
from repro.core.tree import LabelledTree
from repro.exceptions import FormulaError
from repro.logic.dpll import dpll_satisfiable
from repro.logic.propositional import (
    CnfFormula,
    Clause,
    Literal,
    PropAnd,
    PropAtom,
    PropFalse,
    PropFormula,
    PropNot,
    PropOr,
    PropTrue,
)


@dataclass
class SatisfiabilityResult:
    """Outcome of a satisfiability check.

    Attributes:
        decided: whether the procedure reached a definite answer.
        satisfiable: the answer (meaningful only when ``decided`` is true).
        witness: a witness tree when one was found, with the evaluation node's
            id stored in ``witness_node_id`` (the evaluation node need not be
            the root because ``..`` lets formulas look upward).
        explored_nodes: how many witness-tree nodes were materialised.
    """

    decided: bool
    satisfiable: bool
    witness: Optional[LabelledTree] = None
    witness_node_id: Optional[int] = None
    explored_nodes: int = 0


# --------------------------------------------------------------------------- #
# propositional fast path
# --------------------------------------------------------------------------- #


def propositional_translation(formula: Formula) -> PropFormula:
    """Translate *formula* to a propositional formula over its labels.

    Only valid when every path expression in the formula is a single,
    unfiltered label step; then the formula evaluated at the root of a
    depth-1 instance is exactly the propositional formula over "label present
    below the root".  Theorem 5.1's reduction produces formulas of this form.

    Raises:
        FormulaError: when the formula uses ``..``, ``/`` or filters.
    """
    if isinstance(formula, Top):
        return PropTrue()
    if isinstance(formula, Bottom):
        return PropFalse()
    if isinstance(formula, Not):
        return PropNot(propositional_translation(formula.operand))
    if isinstance(formula, And):
        return PropAnd(
            propositional_translation(formula.left),
            propositional_translation(formula.right),
        )
    if isinstance(formula, Or):
        return PropOr(
            propositional_translation(formula.left),
            propositional_translation(formula.right),
        )
    if isinstance(formula, Exists):
        path = formula.path
        if isinstance(path, Step):
            return PropAtom(path.label)
        raise FormulaError(
            f"path {path.to_text()!r} is not a plain label step; the formula is "
            "not propositional"
        )
    raise FormulaError(f"cannot translate {formula!r}")


def is_propositional(formula: Formula) -> bool:
    """True when :func:`propositional_translation` would succeed."""
    try:
        propositional_translation(formula)
    except FormulaError:
        return False
    return True


def prop_to_cnf(formula: PropFormula) -> CnfFormula:
    """Tseitin-style conversion of a propositional formula to CNF.

    Fresh variables named ``_t<i>`` are introduced for internal nodes, so the
    result is equisatisfiable (not equivalent) — which is all the DPLL solver
    needs.
    """
    clauses: list[Clause] = []
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"_t{counter[0]}"

    def encode(node: PropFormula) -> Literal:
        if isinstance(node, PropTrue):
            name = fresh()
            clauses.append(Clause([Literal(name, True)]))
            return Literal(name, True)
        if isinstance(node, PropFalse):
            name = fresh()
            clauses.append(Clause([Literal(name, True)]))
            return Literal(name, False)
        if isinstance(node, PropAtom):
            return Literal(node.name, True)
        if isinstance(node, PropNot):
            inner = encode(node.operand)
            return inner.negate()
        if isinstance(node, (PropAnd, PropOr)):
            left = encode(node.left)
            right = encode(node.right)
            name = fresh()
            this = Literal(name, True)
            if isinstance(node, PropAnd):
                clauses.append(Clause([this.negate(), left]))
                clauses.append(Clause([this.negate(), right]))
                clauses.append(Clause([left.negate(), right.negate(), this]))
            else:
                clauses.append(Clause([left.negate(), this]))
                clauses.append(Clause([right.negate(), this]))
                clauses.append(Clause([this.negate(), left, right]))
            return this
        raise FormulaError(f"cannot encode propositional node {node!r}")

    root = encode(formula)
    clauses.append(Clause([root]))
    return CnfFormula(clauses)


def is_satisfiable_propositional(formula: Formula) -> bool:
    """Exact satisfiability for propositional formulas via Tseitin + DPLL."""
    prop = propositional_translation(formula)
    return dpll_satisfiable(prop_to_cnf(prop)) is not None


# --------------------------------------------------------------------------- #
# exhaustive satisfiability over a schema
# --------------------------------------------------------------------------- #


def exists_instance_satisfying(
    formula: Formula, schema: Schema, max_copies: int = 1
) -> SatisfiabilityResult:
    """Exact check whether some instance of *schema* (with at most
    *max_copies* copies of a field under one parent) satisfies *formula* at
    its root.

    This is the notion of satisfiability the guarded-form analyses need: the
    completion formula is evaluated at the root of instances of a known
    schema.  The check is exhaustive and therefore exponential in the schema
    size; it serves as the exact oracle for small inputs.
    """
    explored = 0
    for instance in enumerate_instances(schema, max_copies):
        explored += 1
        if evaluate(instance.root, formula):
            return SatisfiabilityResult(
                decided=True,
                satisfiable=True,
                witness=instance,
                witness_node_id=instance.root.node_id,
                explored_nodes=explored,
            )
    return SatisfiabilityResult(decided=True, satisfiable=False, explored_nodes=explored)


# --------------------------------------------------------------------------- #
# general witness-tree search (Lemma 4.4 made executable)
# --------------------------------------------------------------------------- #


@dataclass
class _NodeState:
    """A node of the partially built witness tree."""

    node_id: int
    label: Optional[str]  # None = label irrelevant (will become a fresh label)
    parent: Optional[int]
    children: list[int] = field(default_factory=list)
    #: the node may not acquire a parent (a ¬.. obligation was asserted)
    root_locked: bool = False
    #: labels that may not appear among the children (¬l obligations)
    forbidden_child_labels: set[str] = field(default_factory=set)
    #: for each label, conditions χ such that every l-child must satisfy ¬χ
    negative_child_conditions: dict[str, list[Formula]] = field(default_factory=dict)
    #: conditions χ such that a parent, if ever created, must satisfy ¬χ
    negative_parent_conditions: list[Formula] = field(default_factory=list)

    def clone(self) -> "_NodeState":
        copy = _NodeState(self.node_id, self.label, self.parent, list(self.children))
        copy.root_locked = self.root_locked
        copy.forbidden_child_labels = set(self.forbidden_child_labels)
        copy.negative_child_conditions = {
            key: list(value) for key, value in self.negative_child_conditions.items()
        }
        copy.negative_parent_conditions = list(self.negative_parent_conditions)
        return copy


class _SearchState:
    """The complete backtracking state of the witness search."""

    def __init__(self) -> None:
        self.nodes: dict[int, _NodeState] = {}
        self.obligations: list[tuple[int, Formula]] = []
        self.next_id = 0

    def clone(self) -> "_SearchState":
        copy = _SearchState()
        copy.nodes = {key: value.clone() for key, value in self.nodes.items()}
        copy.obligations = list(self.obligations)
        copy.next_id = self.next_id
        return copy

    def new_node(self, label: Optional[str], parent: Optional[int]) -> _NodeState:
        node = _NodeState(self.next_id, label, parent)
        self.next_id += 1
        self.nodes[node.node_id] = node
        if parent is not None:
            self.nodes[parent].children.append(node.node_id)
        return node


class _WitnessSearch:
    """Backtracking witness-tree construction for satisfiability."""

    def __init__(self, formula: Formula, max_nodes: int) -> None:
        self.formula = to_nnf(to_single_step_form(formula))
        self.max_nodes = max_nodes
        self.created_nodes = 0
        self.budget_exhausted = False

    def run(self) -> SatisfiabilityResult:
        state = _SearchState()
        start = state.new_node(label=None, parent=None)
        state.obligations.append((start.node_id, self.formula))
        solution = self._solve(state)
        if solution is None:
            return SatisfiabilityResult(
                decided=not self.budget_exhausted,
                satisfiable=False,
                explored_nodes=self.created_nodes,
            )
        tree, node_id = self._materialise(solution, start.node_id)
        return SatisfiabilityResult(
            decided=True,
            satisfiable=True,
            witness=tree,
            witness_node_id=node_id,
            explored_nodes=self.created_nodes,
        )

    # -- the core search ----------------------------------------------------

    def _solve(self, state: _SearchState) -> Optional[_SearchState]:
        while state.obligations:
            node_id, formula = state.obligations.pop()
            outcome = self._process(state, node_id, formula)
            if outcome is False:
                return None
            if isinstance(outcome, list):
                # disjunctive choice: try the alternatives in order
                for alternative in outcome:
                    result = self._solve(alternative)
                    if result is not None:
                        return result
                return None
        return state

    def _process(
        self, state: _SearchState, node_id: int, formula: Formula
    ) -> "bool | list[_SearchState]":
        """Process one obligation.

        Returns ``True`` when the obligation was discharged in place,
        ``False`` when it is unsatisfiable in this branch, or a list of
        successor states for a disjunctive choice.
        """
        node = state.nodes[node_id]
        if isinstance(formula, Top):
            return True
        if isinstance(formula, Bottom):
            return False
        if isinstance(formula, And):
            state.obligations.append((node_id, formula.left))
            state.obligations.append((node_id, formula.right))
            return True
        if isinstance(formula, Or):
            alternatives = []
            for side in (formula.left, formula.right):
                branch = state.clone()
                branch.obligations.append((node_id, side))
                alternatives.append(branch)
            return alternatives
        if isinstance(formula, Exists):
            return self._process_positive(state, node, formula.path)
        if isinstance(formula, Not):
            operand = formula.operand
            if isinstance(operand, Exists):
                return self._process_negative(state, node, operand.path)
            # NNF guarantees negation only on atoms
            raise FormulaError(f"obligation {formula!r} is not in negation normal form")
        raise FormulaError(f"cannot process obligation {formula!r}")

    def _process_positive(
        self, state: _SearchState, node: _NodeState, path: PathExpr
    ) -> "bool | list[_SearchState]":
        base, condition = _split_step(path)
        if isinstance(base, Parent):
            if node.parent is not None:
                if condition is not None:
                    state.obligations.append((node.parent, condition))
                return True
            if node.root_locked:
                return False
            if not self._may_create_node():
                return False
            parent = state.new_node(label=None, parent=None)
            parent.children.append(node.node_id)
            node.parent = parent.node_id
            for pending in node.negative_parent_conditions:
                state.obligations.append((parent.node_id, to_nnf(Not(pending))))
            if condition is not None:
                state.obligations.append((parent.node_id, condition))
            return True

        assert isinstance(base, Step)
        label = base.label
        alternatives: list[_SearchState] = []
        if condition is None:
            # plain existence: an existing child suffices, otherwise create one
            existing = [
                child_id
                for child_id in node.children
                if state.nodes[child_id].label == label
            ]
            if existing:
                return True
        else:
            for child_id in node.children:
                if state.nodes[child_id].label != label:
                    continue
                branch = state.clone()
                branch.obligations.append((child_id, condition))
                alternatives.append(branch)
        # alternative: create a fresh child
        if label not in node.forbidden_child_labels and self._may_create_node():
            branch = state.clone()
            branch_node = branch.nodes[node.node_id]
            child = branch.new_node(label=label, parent=node.node_id)
            for pending in branch_node.negative_child_conditions.get(label, []):
                branch.obligations.append((child.node_id, to_nnf(Not(pending))))
            if condition is not None:
                branch.obligations.append((child.node_id, condition))
            alternatives.append(branch)
        if not alternatives:
            return False
        return alternatives

    def _process_negative(
        self, state: _SearchState, node: _NodeState, path: PathExpr
    ) -> bool:
        base, condition = _split_step(path)
        if isinstance(base, Parent):
            if condition is None:
                if node.parent is not None:
                    return False
                node.root_locked = True
                return True
            if node.parent is not None:
                state.obligations.append((node.parent, to_nnf(Not(condition))))
                return True
            node.negative_parent_conditions.append(condition)
            return True

        assert isinstance(base, Step)
        label = base.label
        if condition is None:
            if any(state.nodes[child].label == label for child in node.children):
                return False
            node.forbidden_child_labels.add(label)
            return True
        for child_id in node.children:
            if state.nodes[child_id].label == label:
                state.obligations.append((child_id, to_nnf(Not(condition))))
        node.negative_child_conditions.setdefault(label, []).append(condition)
        return True

    def _may_create_node(self) -> bool:
        if self.created_nodes >= self.max_nodes:
            self.budget_exhausted = True
            return False
        self.created_nodes += 1
        return True

    # -- materialisation ----------------------------------------------------

    def _materialise(
        self, state: _SearchState, start_id: int
    ) -> tuple[LabelledTree, int]:
        """Turn the search state into a real tree and locate the start node."""
        # find the topmost ancestor of the start node — that is the root
        root_id = start_id
        while state.nodes[root_id].parent is not None:
            root_id = state.nodes[root_id].parent  # type: ignore[assignment]
        used_labels = {
            node.label for node in state.nodes.values() if node.label is not None
        }
        fresh = "anon"
        index = 0
        while fresh in used_labels:
            index += 1
            fresh = f"anon{index}"

        tree = LabelledTree(state.nodes[root_id].label or fresh)
        mapping = {root_id: tree.root}
        stack = [root_id]
        while stack:
            current = stack.pop()
            for child_id in state.nodes[current].children:
                child_state = state.nodes[child_id]
                child_node = tree.add_leaf(mapping[current], child_state.label or fresh)
                mapping[child_id] = child_node
                stack.append(child_id)
        return tree, mapping[start_id].node_id


def _split_step(path: PathExpr) -> tuple[PathExpr, Optional[Formula]]:
    """Split a single-step path into its base step and optional condition."""
    if isinstance(path, Filter):
        base = path.path
        condition: Optional[Formula] = path.condition
    else:
        base = path
        condition = None
    if isinstance(base, (Step, Parent)):
        return base, condition
    if isinstance(base, (Slash, Filter)):
        raise FormulaError(
            f"path {path.to_text()!r} is not in single-step form; normalise first"
        )
    raise FormulaError(f"unknown path expression {path!r}")


def is_satisfiable(formula: Formula, max_nodes: int = 2000) -> SatisfiabilityResult:
    """General satisfiability via the witness-tree search (see module docs).

    The witness, when found, is double-checked by evaluating the original
    formula on it, so a positive answer is always sound.  A negative answer is
    exact whenever the node budget was not exhausted.
    """
    search = _WitnessSearch(formula, max_nodes)
    result = search.run()
    if result.satisfiable and result.witness is not None:
        node = result.witness.node(result.witness_node_id)
        if not evaluate(node, formula):
            raise FormulaError(
                "internal error: witness search produced a tree that does not "
                f"satisfy {formula.to_text()!r}"
            )
    return result
