"""Formula semantics (Definition 3.5).

The two judgements of the paper are implemented directly:

* ``n ⊨_T φ`` — :func:`evaluate`;
* ``n —p→_T n'`` — :func:`path_targets` (returning all end nodes ``n'``).

Evaluation is purely structural over the rooted node-labelled tree the node
belongs to; there is no schema involvement (the same evaluator is used for
instances, canonical instances and arbitrary witness trees).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.formulas.ast import (
    And,
    Bottom,
    Exists,
    Filter,
    Formula,
    Not,
    Or,
    Parent,
    PathExpr,
    Slash,
    Step,
    Top,
)
from repro.core.tree import Node
from repro.exceptions import FormulaError


def evaluate(node: Node, formula: Formula) -> bool:
    """Return whether ``node ⊨ formula`` (Definition 3.5).

    The tree is implicit: it is the tree *node* belongs to.
    """
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Exists):
        return _has_target(node, formula.path)
    if isinstance(formula, Not):
        return not evaluate(node, formula.operand)
    if isinstance(formula, And):
        return evaluate(node, formula.left) and evaluate(node, formula.right)
    if isinstance(formula, Or):
        return evaluate(node, formula.left) or evaluate(node, formula.right)
    raise FormulaError(f"cannot evaluate unknown formula node {formula!r}")


def path_targets(node: Node, path: PathExpr) -> Iterator[Node]:
    """Yield every node ``n'`` with ``node —path→ n'`` (Definition 3.5).

    The same node may be yielded more than once when several traversals reach
    it; callers interested in the set of targets should deduplicate.
    """
    if isinstance(path, Parent):
        if node.parent is not None:
            yield node.parent
        return
    if isinstance(path, Step):
        for child in node.children:
            if child.label == path.label:
                yield child
        return
    if isinstance(path, Slash):
        for middle in path_targets(node, path.left):
            yield from path_targets(middle, path.right)
        return
    if isinstance(path, Filter):
        for target in path_targets(node, path.path):
            if evaluate(target, path.condition):
                yield target
        return
    raise FormulaError(f"cannot evaluate unknown path node {path!r}")


def _has_target(node: Node, path: PathExpr) -> bool:
    for _ in path_targets(node, path):
        return True
    return False


def evaluate_at_root(tree, formula: Formula) -> bool:
    """Evaluate *formula* at the root of *tree* (completion formulas are
    always evaluated for the root node, Definition 3.11)."""
    return evaluate(tree.root, formula)


def evaluate_all(nodes: Iterable[Node], formula: Formula) -> bool:
    """True when *formula* holds at every node in *nodes*."""
    return all(evaluate(node, formula) for node in nodes)


def evaluate_any(nodes: Iterable[Node], formula: Formula) -> bool:
    """True when *formula* holds at some node in *nodes*."""
    return any(evaluate(node, formula) for node in nodes)
