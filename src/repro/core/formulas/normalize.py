"""Formula normalisation (Lemma 4.4).

Lemma 4.4 rewrites any formula into an equivalent one whose path expressions
consist of a *single step* with an optional filter::

    F' ::= P' | ¬F' | F' ∧ F' | F' ∨ F'
    P' ::= L | .. | L[F'] | ..[F']

using the equivalences::

    (p1/p2)[ψ]   ≡  p1[p2[ψ]]
    (p1[ψ1])[ψ2] ≡  p1[ψ1 ∧ ψ2]
    (p1/p2)/p3   ≡  p1/(p2/p3)
    (p1[ψ])/p2   ≡  p1[ψ ∧ p2]
    l/p          ≡  l[p]
    ../p         ≡  ..[p]

This module implements that rewriting (:func:`to_single_step_form`), negation
normal form (:func:`to_nnf`), and the *selections* of a formula used in the
proofs of Lemma 4.4 and Corollary 4.5 (:func:`selections`): a selection is a
set of literals (single-step atoms or negated atoms) whose joint truth at a
node is sufficient for the truth of the original formula, and every satisfying
node satisfies at least one selection.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.formulas.ast import (
    And,
    Bottom,
    Exists,
    Filter,
    Formula,
    Not,
    Or,
    Parent,
    PathExpr,
    Slash,
    Step,
    Top,
)
from repro.exceptions import FormulaError


# --------------------------------------------------------------------------- #
# single-step normal form
# --------------------------------------------------------------------------- #


def to_single_step_form(formula: Formula) -> Formula:
    """Rewrite *formula* into the ``F'``/``P'`` normal form of Lemma 4.4.

    The result is logically equivalent to the input (same truth value at every
    node of every tree) and linear in its size.
    """
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(to_single_step_form(formula.operand))
    if isinstance(formula, And):
        return And(to_single_step_form(formula.left), to_single_step_form(formula.right))
    if isinstance(formula, Or):
        return Or(to_single_step_form(formula.left), to_single_step_form(formula.right))
    if isinstance(formula, Exists):
        return _normalize_path(formula.path)
    raise FormulaError(f"cannot normalise unknown formula {formula!r}")


def _normalize_path(path: PathExpr) -> Formula:
    """Normalise the existence formula of *path* to single-step form."""
    return _attach(path, None)


def _attach(path: PathExpr, continuation: Optional[Formula]) -> Formula:
    """Single-step formula equivalent to ``Exists(path[continuation])``.

    *continuation* is an already-normalised formula that must hold at the
    path's target (``None`` means plain existence).  The Lemma 4.4 rewrite
    rules correspond to the three cases:

    * ``(p1/p2)[ψ] ≡ p1[p2[ψ]]`` and ``(p1/p2)/p3 ≡ p1/(p2/p3)`` — the
      ``Slash`` case threads the continuation through the right component
      first, so left-associated parses re-associate correctly;
    * ``(p1[ψ1])[ψ2] ≡ p1[ψ1 ∧ ψ2]`` — the ``Filter`` case merges conditions;
    * ``l/p ≡ l[p]`` and ``../p ≡ ..[p]`` — the base case wraps the remaining
      continuation as a filter on a single step.
    """
    if isinstance(path, (Step, Parent)):
        if continuation is None:
            return Exists(path)
        return Exists(Filter(path, continuation))
    if isinstance(path, Filter):
        condition = to_single_step_form(path.condition)
        if continuation is not None:
            condition = And(condition, continuation)
        return _attach(path.path, condition)
    if isinstance(path, Slash):
        rest = _attach(path.right, continuation)
        return _attach(path.left, rest)
    raise FormulaError(f"cannot normalise unknown path {path!r}")


def is_single_step_form(formula: Formula) -> bool:
    """Check whether *formula* is already in the ``F'``/``P'`` normal form."""
    if isinstance(formula, (Top, Bottom)):
        return True
    if isinstance(formula, Not):
        return is_single_step_form(formula.operand)
    if isinstance(formula, (And, Or)):
        return is_single_step_form(formula.left) and is_single_step_form(formula.right)
    if isinstance(formula, Exists):
        path = formula.path
        if isinstance(path, (Step, Parent)):
            return True
        if isinstance(path, Filter):
            return isinstance(path.path, (Step, Parent)) and is_single_step_form(
                path.condition
            )
        return False
    return False


# --------------------------------------------------------------------------- #
# negation normal form
# --------------------------------------------------------------------------- #


def to_nnf(formula: Formula) -> Formula:
    """Push negations inward so they only appear directly on atoms.

    Atoms are ``Top``, ``Bottom`` and ``Exists`` path formulas; ``¬true`` and
    ``¬false`` are simplified to ``false`` / ``true``.
    """
    return _nnf(formula, negated=False)


def _nnf(formula: Formula, negated: bool) -> Formula:
    if isinstance(formula, Top):
        return Bottom() if negated else Top()
    if isinstance(formula, Bottom):
        return Top() if negated else Bottom()
    if isinstance(formula, Exists):
        return Not(formula) if negated else formula
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negated)
    if isinstance(formula, And):
        left = _nnf(formula.left, negated)
        right = _nnf(formula.right, negated)
        return Or(left, right) if negated else And(left, right)
    if isinstance(formula, Or):
        left = _nnf(formula.left, negated)
        right = _nnf(formula.right, negated)
        return And(left, right) if negated else Or(left, right)
    raise FormulaError(f"cannot convert unknown formula {formula!r} to NNF")


# --------------------------------------------------------------------------- #
# selections (Lemma 4.4)
# --------------------------------------------------------------------------- #

#: A literal of a selection: ``(positive, path_expr)`` where the path is a
#: single step (possibly filtered).
SelectionLiteral = tuple[bool, PathExpr]
Selection = frozenset


def selections(formula: Formula) -> Iterator[Selection]:
    """Enumerate the selections of *formula* (proof of Lemma 4.4).

    The formula is first brought into single-step NNF.  Each yielded selection
    is a frozenset of :data:`SelectionLiteral`; the formula holds at a node
    iff at least one of its selections is fully satisfied there.

    ``Top`` contributes the empty selection; ``Bottom`` contributes none.
    """
    normal = to_nnf(to_single_step_form(formula))
    yield from _selections(normal)


def _selections(formula: Formula) -> Iterator[Selection]:
    if isinstance(formula, Top):
        yield frozenset()
        return
    if isinstance(formula, Bottom):
        return
    if isinstance(formula, Exists):
        yield frozenset({(True, formula.path)})
        return
    if isinstance(formula, Not):
        operand = formula.operand
        if isinstance(operand, Exists):
            yield frozenset({(False, operand.path)})
            return
        if isinstance(operand, Top):
            return
        if isinstance(operand, Bottom):
            yield frozenset()
            return
        raise FormulaError("selections expect a formula in negation normal form")
    if isinstance(formula, And):
        for left in _selections(formula.left):
            for right in _selections(formula.right):
                yield left | right
        return
    if isinstance(formula, Or):
        yield from _selections(formula.left)
        yield from _selections(formula.right)
        return
    raise FormulaError(f"cannot compute selections of {formula!r}")


def literal_step(literal: SelectionLiteral) -> tuple[str | None, Optional[Formula]]:
    """Decompose a selection literal's path into ``(label_or_None, condition)``.

    ``label_or_None`` is the step label, or ``None`` when the step is the
    parent axis ``..``; ``condition`` is the filter formula or ``None``.
    """
    positive, path = literal
    del positive
    if isinstance(path, Filter):
        base = path.path
        condition: Optional[Formula] = path.condition
    else:
        base = path
        condition = None
    if isinstance(base, Parent):
        return None, condition
    if isinstance(base, Step):
        return base.label, condition
    raise FormulaError(f"literal path {path!r} is not in single-step form")
