"""Convenience constructors for formulas and path expressions.

Writing ASTs by hand is verbose; the reductions in :mod:`repro.reductions`
build large formulas programmatically, so this module provides a compact DSL:

>>> from repro.core.formulas.builders import label, lnot, conj, child_path
>>> rule = conj(lnot(child_path("..", "s")), lnot(label("n")))
>>> rule.to_text()
'¬../s ∧ ¬n'
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable

from repro.core.formulas.ast import (
    And,
    Bottom,
    Exists,
    Filter,
    Formula,
    Not,
    Or,
    Parent,
    PathExpr,
    Slash,
    Step,
    Top,
)
from repro.exceptions import FormulaError

FormulaLike = "Formula | PathExpr | str"


def to_formula(value: "Formula | PathExpr | str") -> Formula:
    """Coerce a formula, path expression or concrete-syntax string to a
    :class:`~repro.core.formulas.ast.Formula`."""
    from repro.core.formulas.parser import parse_formula

    return parse_formula(value)


def to_path(value: "PathExpr | str") -> PathExpr:
    """Coerce a path expression or concrete-syntax string to a path."""
    from repro.core.formulas.parser import parse_path

    return parse_path(value)


def label(name: str) -> Exists:
    """The formula asserting the current node has a child labelled *name*."""
    return Exists(Step(name))


def up() -> Exists:
    """The formula asserting the current node has a parent (``..``)."""
    return Exists(Parent())


def path(*steps: "PathExpr | str") -> PathExpr:
    """Compose *steps* into a path expression.

    Each step may be ``".."``, a label, or an already-built path expression.
    """
    if not steps:
        raise FormulaError("a path needs at least one step")
    built = [_as_step(step) for step in steps]
    return reduce(Slash, built)


def child_path(*steps: "PathExpr | str") -> Exists:
    """The existence formula of :func:`path` (most common use)."""
    return Exists(path(*steps))


def parent_path(levels: int, *steps: "PathExpr | str") -> Exists:
    """A formula walking *levels* ``..`` steps up and then down via *steps*.

    ``parent_path(2, "s")`` is the paper's ``../../s``.  With no *steps* the
    formula just asserts the ancestor exists.
    """
    if levels < 1:
        raise FormulaError("parent_path needs at least one '..' step")
    segments: list[PathExpr | str] = [Parent() for _ in range(levels)]
    segments.extend(steps)
    return Exists(path(*segments))


def filtered(base: "PathExpr | str", condition: "Formula | PathExpr | str") -> Exists:
    """The formula ``base[condition]``."""
    return Exists(Filter(_as_step(base), to_formula(condition)))


def lnot(operand: "Formula | PathExpr | str") -> Not:
    """Negation (named ``lnot`` to avoid clashing with the builtin)."""
    return Not(to_formula(operand))


def conj(*operands: "Formula | PathExpr | str") -> Formula:
    """Conjunction of any number of operands (``Top`` when empty)."""
    formulas = [to_formula(op) for op in operands]
    if not formulas:
        return Top()
    return reduce(And, formulas)


def disj(*operands: "Formula | PathExpr | str") -> Formula:
    """Disjunction of any number of operands (``Bottom`` when empty)."""
    formulas = [to_formula(op) for op in operands]
    if not formulas:
        return Bottom()
    return reduce(Or, formulas)


def conj_all(operands: Iterable["Formula | PathExpr | str"]) -> Formula:
    """:func:`conj` over an iterable."""
    return conj(*list(operands))


def disj_all(operands: Iterable["Formula | PathExpr | str"]) -> Formula:
    """:func:`disj` over an iterable."""
    return disj(*list(operands))


def implies(antecedent: "Formula | PathExpr | str", consequent: "Formula | PathExpr | str") -> Or:
    """Material implication ``¬a ∨ b``."""
    return Or(Not(to_formula(antecedent)), to_formula(consequent))


def iff(left: "Formula | PathExpr | str", right: "Formula | PathExpr | str") -> Or:
    """Bi-implication ``(a ∧ b) ∨ (¬a ∧ ¬b)`` (used by Theorem 5.3)."""
    lhs = to_formula(left)
    rhs = to_formula(right)
    return Or(And(lhs, rhs), And(Not(lhs), Not(rhs)))


def ancestors_path(levels: int) -> PathExpr:
    """The bare path ``../../…`` with *levels* parent steps."""
    if levels < 1:
        raise FormulaError("ancestors_path needs at least one level")
    return path(*[Parent() for _ in range(levels)])


def _as_step(step: "PathExpr | str") -> PathExpr:
    if isinstance(step, PathExpr):
        return step
    if step == "..":
        return Parent()
    return Step(step)


__all__ = [
    "to_formula",
    "to_path",
    "label",
    "up",
    "path",
    "child_path",
    "parent_path",
    "filtered",
    "lnot",
    "conj",
    "disj",
    "conj_all",
    "disj_all",
    "implies",
    "iff",
    "ancestors_path",
]
