"""Parser for the concrete formula syntax of Definition 3.4.

The concrete syntax follows the paper's notation as closely as plain text
allows.  Both the Unicode connectives used in the paper and ASCII fallbacks
are accepted:

========================  =======================
construct                 accepted spellings
========================  =======================
negation                  ``¬φ``, ``!φ``, ``not φ``
conjunction               ``φ ∧ ψ``, ``φ & ψ``, ``φ and ψ``
disjunction               ``φ ∨ ψ``, ``φ | ψ``, ``φ or ψ``
bi-implication            ``φ <-> ψ``, ``φ ↔ ψ`` (expanded to ∧/∨/¬)
parent step               ``..``
child step                ``label``
path composition          ``p/q``
filter                    ``p[φ]``
constants                 ``true``, ``false``
grouping                  ``(φ)``
========================  =======================

Operator precedence (loosest to tightest): ``↔``, ``∨``, ``∧``, ``¬``.

Examples from the paper parse directly::

    parse_formula("¬a/p[¬b ∨ ¬e]")
    parse_formula("¬f ∨ d[a ∨ r]")
    parse_formula("¬../s ∧ ¬n")
"""

from __future__ import annotations

import re
from typing import NamedTuple

from repro.core.formulas.ast import (
    And,
    Bottom,
    Exists,
    Filter,
    Formula,
    Not,
    Or,
    Parent,
    PathExpr,
    Slash,
    Step,
    Top,
)
from repro.exceptions import FormulaParseError


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<DOTDOT>\.\.)
  | (?P<IFF><->|↔)
  | (?P<NOT>¬|!)
  | (?P<AND>∧|&&|&)
  | (?P<OR>∨|\|\||\|)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<LBRACKET>\[)
  | (?P<RBRACKET>\])
  | (?P<SLASH>/)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_'\-.]*)
    """,
    re.VERBOSE,
)

_WORD_OPERATORS = {"and": "AND", "or": "OR", "not": "NOT", "true": "TRUE", "false": "FALSE"}


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise FormulaParseError(
                f"unexpected character {text[position]!r} at position {position}",
                position,
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "NAME" and value in _WORD_OPERATORS:
            kind = _WORD_OPERATORS[value]
        if kind != "WS":
            tokens.append(_Token(kind, value, position))
        position = match.end()
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise FormulaParseError(
                f"expected {kind} but found {token.text or 'end of input'!r} "
                f"at position {token.position} in {self._text!r}",
                token.position,
            )
        return self._advance()

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Formula:
        formula = self._parse_iff()
        token = self._peek()
        if token.kind != "EOF":
            raise FormulaParseError(
                f"unexpected trailing input {token.text!r} at position "
                f"{token.position} in {self._text!r}",
                token.position,
            )
        return formula

    def _parse_iff(self) -> Formula:
        left = self._parse_or()
        while self._peek().kind == "IFF":
            self._advance()
            right = self._parse_or()
            # φ ↔ ψ  ≡  (φ ∧ ψ) ∨ (¬φ ∧ ¬ψ); the paper uses ↔ in Theorem 5.3.
            left = Or(And(left, right), And(Not(left), Not(right)))
        return left

    def _parse_or(self) -> Formula:
        left = self._parse_and()
        while self._peek().kind == "OR":
            self._advance()
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Formula:
        left = self._parse_unary()
        while self._peek().kind == "AND":
            self._advance()
            left = And(left, self._parse_unary())
        return left

    def _parse_unary(self) -> Formula:
        token = self._peek()
        if token.kind == "NOT":
            self._advance()
            return Not(self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self) -> Formula:
        token = self._peek()
        if token.kind == "TRUE":
            self._advance()
            return Top()
        if token.kind == "FALSE":
            self._advance()
            return Bottom()
        if token.kind == "LPAREN":
            self._advance()
            inner = self._parse_iff()
            self._expect("RPAREN")
            # A parenthesised formula may be followed by path continuations
            # only if it denotes a path; keep it simple: parentheses group
            # formulas, paths are built from steps.
            return inner
        if token.kind in ("NAME", "DOTDOT"):
            return Exists(self._parse_path())
        raise FormulaParseError(
            f"expected a formula but found {token.text or 'end of input'!r} at "
            f"position {token.position} in {self._text!r}",
            token.position,
        )

    def _parse_path(self) -> PathExpr:
        path = self._parse_step()
        while self._peek().kind == "SLASH":
            self._advance()
            path = Slash(path, self._parse_step())
        return path

    def _parse_step(self) -> PathExpr:
        token = self._peek()
        if token.kind == "DOTDOT":
            self._advance()
            step: PathExpr = Parent()
        elif token.kind == "NAME":
            self._advance()
            step = Step(token.text)
        else:
            raise FormulaParseError(
                f"expected a path step but found {token.text or 'end of input'!r} "
                f"at position {token.position} in {self._text!r}",
                token.position,
            )
        while self._peek().kind == "LBRACKET":
            self._advance()
            condition = self._parse_iff()
            self._expect("RBRACKET")
            step = Filter(step, condition)
        return step


def parse_formula(text: "str | Formula | PathExpr") -> Formula:
    """Parse *text* into a :class:`~repro.core.formulas.ast.Formula`.

    Already-constructed formulas are returned unchanged and path expressions
    are promoted to existence formulas, so call sites can accept either
    strings or AST values.
    """
    if isinstance(text, Formula):
        return text
    if isinstance(text, PathExpr):
        return Exists(text)
    if not isinstance(text, str):
        raise FormulaParseError(f"cannot parse {text!r} as a formula")
    tokens = _tokenize(text)
    return _Parser(tokens, text).parse()


def parse_path(text: "str | PathExpr") -> PathExpr:
    """Parse *text* as a bare path expression (e.g. a schema-edge address)."""
    if isinstance(text, PathExpr):
        return text
    formula = parse_formula(text)
    if isinstance(formula, Exists):
        return formula.path
    raise FormulaParseError(f"{text!r} is a formula, not a path expression")
