"""Homomorphisms between trees and schemas (Definition 3.1, Proposition 3.3).

The paper defines an instance of a schema ``M`` as a tree that admits a
homomorphism into ``M`` and observes (Proposition 3.3) that this homomorphism
is unique.  This module makes both facts executable:

* :func:`find_homomorphism` computes the homomorphism (as a mapping from node
  ids to schema paths) or returns ``None`` when no homomorphism exists;
* :func:`is_instance_of` is the induced decision procedure;
* :func:`all_homomorphisms` enumerates *all* label/edge/root-preserving
  mappings, which the test-suite uses to verify Proposition 3.3 (uniqueness)
  on arbitrary trees and schemas.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Optional

from repro.core.labels import ROOT_LABEL
from repro.core.schema import Schema, SchemaPath
from repro.core.tree import LabelledTree, Node


def find_homomorphism(tree: LabelledTree, schema: Schema) -> Optional[dict[int, SchemaPath]]:
    """Return the homomorphism from *tree* into *schema*, or ``None``.

    The homomorphism is represented as a mapping from the node ids of *tree*
    to schema paths.  Because sibling labels in a schema are unique, a node of
    the tree can only map to the schema node addressed by the node's label
    path, so the construction is deterministic (this is the content of
    Proposition 3.3).
    """
    if tree.root.label != ROOT_LABEL or schema.root.label != ROOT_LABEL:
        return None
    mapping: dict[int, SchemaPath] = {}
    for node in tree.nodes():
        path = node.label_path()
        if not schema.has_path(path):
            return None
        mapping[node.node_id] = path
    return mapping


def is_instance_of(tree: LabelledTree, schema: Schema) -> bool:
    """Decision procedure for "``tree`` is an instance of ``schema``"."""
    return find_homomorphism(tree, schema) is not None


def all_homomorphisms(tree: LabelledTree, schema: Schema) -> Iterator[dict[int, SchemaPath]]:
    """Enumerate every mapping ``h`` from the nodes of *tree* to the nodes of
    *schema* satisfying Definition 3.1:

    1. edges map to edges,
    2. the root maps to the root,
    3. labels are preserved.

    This brute-force enumeration exists to *verify* Proposition 3.3 (that at
    most one such mapping exists); production code should use
    :func:`find_homomorphism`.
    """
    tree_nodes = list(tree.nodes())
    candidates: list[list[SchemaPath]] = []
    schema_paths = list(schema.paths())
    for node in tree_nodes:
        if node.is_root():
            candidates.append([()])
            continue
        options = [
            path
            for path in schema_paths
            if path and path[-1] == node.label
        ]
        if not options:
            return
        candidates.append(options)

    index_of = {node.node_id: i for i, node in enumerate(tree_nodes)}
    for assignment in product(*candidates):
        if _is_homomorphism(tree_nodes, index_of, assignment, schema):
            yield {
                node.node_id: assignment[i] for i, node in enumerate(tree_nodes)
            }


def _is_homomorphism(
    tree_nodes: list[Node],
    index_of: dict[int, int],
    assignment: tuple[SchemaPath, ...],
    schema: Schema,
) -> bool:
    for node in tree_nodes:
        image = assignment[index_of[node.node_id]]
        if node.label != schema.node_at(image).label:
            return False
        if node.parent is not None:
            parent_image = assignment[index_of[node.parent.node_id]]
            # the edge (parent, node) must map to an edge of the schema
            if image[:-1] != parent_image:
                return False
    return True
