"""Fragments of guarded forms and the complexity map of Table 1.

Section 3.5 defines the classes ``F(A, φ, d)`` where

* ``A`` is ``A+`` (all access rules positive) or ``A−`` (unrestricted),
* ``φ`` is ``φ+`` (positive completion formula) or ``φ−`` (unrestricted),
* ``d`` is ``1``, a fixed constant ``k``, or ``∞`` (unrestricted depth).

This module classifies guarded forms into fragments, exposes the paper's
Table 1 as data (:data:`TABLE1`), and reports which decision procedure the
library will dispatch to for each fragment — this is what the Table 1
benchmark prints next to its measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.guarded_form import GuardedForm

#: Depth markers used in fragment names.
DEPTH_ONE = "1"
DEPTH_K = "k"
DEPTH_UNBOUNDED = "inf"


@dataclass(frozen=True)
class Fragment:
    """A fragment ``F(A, φ, d)``.

    Attributes:
        positive_access: ``True`` for ``A+``, ``False`` for ``A−``.
        positive_completion: ``True`` for ``φ+``, ``False`` for ``φ−``.
        depth: ``"1"``, ``"k"`` or ``"inf"``.
    """

    positive_access: bool
    positive_completion: bool
    depth: str

    def __post_init__(self) -> None:
        if self.depth not in (DEPTH_ONE, DEPTH_K, DEPTH_UNBOUNDED):
            raise ValueError(f"depth must be '1', 'k' or 'inf', got {self.depth!r}")

    @property
    def name(self) -> str:
        """The paper's notation, e.g. ``F(A+, φ−, k)``."""
        access = "A+" if self.positive_access else "A-"
        completion = "phi+" if self.positive_completion else "phi-"
        depth = {"1": "1", "k": "k", "inf": "inf"}[self.depth]
        return f"F({access}, {completion}, {depth})"

    def generalises(self, other: "Fragment") -> bool:
        """Whether every guarded form of *other* also belongs to this fragment.

        ``A−`` generalises ``A+``, ``φ−`` generalises ``φ+`` and the depth
        order is ``1 ⊑ k ⊑ ∞``.
        """
        depth_order = {DEPTH_ONE: 0, DEPTH_K: 1, DEPTH_UNBOUNDED: 2}
        access_ok = (not self.positive_access) or other.positive_access
        completion_ok = (not self.positive_completion) or other.positive_completion
        depth_ok = depth_order[self.depth] >= depth_order[other.depth]
        return access_ok and completion_ok and depth_ok

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ComplexityEntry:
    """One row of Table 1.

    Attributes:
        completability: the complexity of the completability problem.
        semisoundness: the complexity of the semi-soundness problem.
        completability_open: whether the paper leaves the exact completability
            complexity open (only a bound is known — underlined in Table 1).
        semisoundness_open: ditto for semi-soundness.
    """

    completability: str
    semisoundness: str
    completability_open: bool = False
    semisoundness_open: bool = False


def _row(access: bool, completion: bool, depth: str) -> Fragment:
    return Fragment(access, completion, depth)


#: The paper's Table 1, keyed by fragment.  "open" flags mark the underlined
#: entries for which only a hardness bound is known.
TABLE1: dict[Fragment, ComplexityEntry] = {
    _row(True, True, DEPTH_ONE): ComplexityEntry("P", "coNP-complete"),
    _row(True, True, DEPTH_K): ComplexityEntry("P", "coNP-hard", semisoundness_open=True),
    _row(True, True, DEPTH_UNBOUNDED): ComplexityEntry("P", "coNP-hard", semisoundness_open=True),
    _row(True, False, DEPTH_ONE): ComplexityEntry("NP-complete", "Pi^p_2-complete"),
    _row(True, False, DEPTH_K): ComplexityEntry("NP-complete", "Pi^p_2k-hard", semisoundness_open=True),
    _row(True, False, DEPTH_UNBOUNDED): ComplexityEntry(
        "PSPACE-hard", "PSPACE-hard", completability_open=True, semisoundness_open=True
    ),
    _row(False, False, DEPTH_ONE): ComplexityEntry("PSPACE-complete", "PSPACE-complete"),
    _row(False, False, DEPTH_K): ComplexityEntry("undecidable", "undecidable"),
    _row(False, False, DEPTH_UNBOUNDED): ComplexityEntry("undecidable", "undecidable"),
    _row(False, True, DEPTH_ONE): ComplexityEntry("PSPACE-complete", "PSPACE-complete"),
    _row(False, True, DEPTH_K): ComplexityEntry("undecidable", "undecidable"),
    _row(False, True, DEPTH_UNBOUNDED): ComplexityEntry("undecidable", "undecidable"),
}

#: The order in which Table 1 lists its rows (used when rendering the table).
TABLE1_ROW_ORDER: list[Fragment] = [
    _row(True, True, DEPTH_ONE),
    _row(True, True, DEPTH_K),
    _row(True, True, DEPTH_UNBOUNDED),
    _row(True, False, DEPTH_ONE),
    _row(True, False, DEPTH_K),
    _row(True, False, DEPTH_UNBOUNDED),
    _row(False, False, DEPTH_ONE),
    _row(False, False, DEPTH_K),
    _row(False, False, DEPTH_UNBOUNDED),
    _row(False, True, DEPTH_ONE),
    _row(False, True, DEPTH_K),
    _row(False, True, DEPTH_UNBOUNDED),
]


def classify(guarded_form: GuardedForm, fixed_depth: Optional[int] = None) -> Fragment:
    """Classify *guarded_form* into the most restrictive fragment it belongs to.

    The depth component is ``"1"`` when the schema has depth at most 1 and
    ``"k"`` otherwise — any concrete guarded form has a fixed finite depth, so
    the ``∞`` fragments only arise for *families* of forms; pass
    ``fixed_depth=None`` and interpret ``"k"`` accordingly, or use
    :func:`fragment_for_depth` when talking about families.
    """
    del fixed_depth  # reserved for symmetry with fragment_for_depth
    depth = DEPTH_ONE if guarded_form.schema_depth() <= 1 else DEPTH_K
    return Fragment(
        positive_access=guarded_form.has_positive_access_rules(),
        positive_completion=guarded_form.has_positive_completion(),
        depth=depth,
    )


def fragment_for_depth(positive_access: bool, positive_completion: bool, depth: "int | str") -> Fragment:
    """Build a fragment from explicit components; *depth* may be an integer
    (mapped to ``"1"`` or ``"k"``) or one of the markers ``"1"/"k"/"inf"``."""
    if isinstance(depth, int):
        marker = DEPTH_ONE if depth <= 1 else DEPTH_K
    else:
        marker = depth
    return Fragment(positive_access, positive_completion, marker)


def lookup_complexity(fragment: Fragment) -> ComplexityEntry:
    """The Table 1 entry for *fragment*."""
    return TABLE1[fragment]


def table1_rows() -> list[tuple[Fragment, ComplexityEntry]]:
    """Table 1 in the paper's row order (for rendering and benchmarks)."""
    return [(fragment, TABLE1[fragment]) for fragment in TABLE1_ROW_ORDER]


def recommended_procedures(fragment: Fragment) -> tuple[str, str]:
    """Which decision procedures the analysis dispatchers will use for a
    guarded form in *fragment* (completability, semi-soundness).

    The names correspond to the ``procedure`` field of the analysis results in
    :mod:`repro.analysis`.
    """
    if fragment.positive_access and fragment.positive_completion:
        completability = "positive_saturation"
    elif fragment.depth == DEPTH_ONE:
        completability = "depth1_canonical_search"
    else:
        completability = "bounded_exploration"

    if fragment.depth == DEPTH_ONE:
        semisoundness = "depth1_canonical_graph"
    else:
        semisoundness = "bounded_exploration"
    return completability, semisoundness
