"""Canonical instances (Definition 3.8, Lemma 3.9, Figure 3).

Every class of formula-equivalent instances contains a single canonical
instance (up to isomorphism) obtained by quotienting an instance by the
formula equivalence between its own nodes.  Canonical instances are the state
representation used by the workflow analyses:

* for depth-1 guarded forms, Lemma 4.3 shows that reachability and
  completability can be decided entirely on canonical instances, which is how
  Theorem 4.6 obtains the PSPACE upper bound;
* for deeper schemas, canonical instances still provide a sound way to check
  formula values (Lemma 3.9) but *not* a sound state quotient for
  reachability (updates on one member of an equivalence class are not
  mirrored on the others), which is why the bounded explorer for deep schemas
  deduplicates by isomorphism instead — see
  :mod:`repro.analysis.statespace`.
"""

from __future__ import annotations

from repro.core.equivalence import node_equivalence_classes
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.core.tree import LabelledTree, Shape
from repro.exceptions import InstanceError


def canonical_instance(instance: Instance) -> Instance:
    """The canonical instance ``can(I)`` of Definition 3.8.

    Nodes are the formula-equivalence classes of the nodes of *instance*;
    there is an edge between two classes when some pair of representatives is
    connected by an edge; the label of a class is the (shared) label of its
    members.
    """
    tree = _quotient(instance)
    result = Instance.from_shape(instance.schema, tree.shape())
    return result


def canonical_tree(tree: LabelledTree) -> LabelledTree:
    """The quotient construction for arbitrary rooted node-labelled trees."""
    return _quotient(tree)


def canonical_shape(instance: LabelledTree) -> Shape:
    """The :data:`~repro.core.tree.Shape` of the canonical instance.

    Two instances are formula equivalent iff their canonical shapes are equal
    (Lemma 3.9: ``I ∼ can(I)`` and canonical instances of equivalent
    instances are isomorphic), so this value is usable as a dictionary key for
    state deduplication wherever formula equivalence is the right notion of
    state identity.
    """
    return _quotient(instance).shape()


def is_canonical(instance: LabelledTree) -> bool:
    """``True`` when *instance* is (isomorphic to) its own canonical form."""
    return instance.shape() == _quotient(instance).shape()


def _quotient(tree: LabelledTree) -> LabelledTree:
    classes = node_equivalence_classes(tree)

    # representative structure: class of root, class adjacency via edges
    root_class = classes[tree.root.node_id]
    children_of: dict[int, set[int]] = {}
    labels: dict[int, str] = {}
    parents_of: dict[int, set[int]] = {}
    for node in tree.nodes():
        node_class = classes[node.node_id]
        labels[node_class] = node.label
        children_of.setdefault(node_class, set())
        for child in node.children:
            child_class = classes[child.node_id]
            children_of[node_class].add(child_class)
            parents_of.setdefault(child_class, set()).add(node_class)

    # Definition 3.8 remarks the quotient of an instance is again a tree: two
    # equivalent nodes are either both the root or have equivalent parents.
    for node_class, parent_classes in parents_of.items():
        if len(parent_classes) > 1:
            raise InstanceError(
                "the quotient by formula equivalence is not a tree; the input "
                "is not a valid rooted node-labelled tree"
            )

    result = LabelledTree(labels[root_class])
    stack = [(root_class, result.root)]
    seen = {root_class}
    while stack:
        node_class, node = stack.pop()
        for child_class in children_of.get(node_class, ()):
            if child_class in seen:
                raise InstanceError(
                    "the quotient by formula equivalence contains a cycle; the "
                    "input is not a valid rooted node-labelled tree"
                )
            seen.add(child_class)
            child_node = result.add_leaf(node, labels[child_class])
            stack.append((child_class, child_node))
    return result


def canonical_depth1_state(instance: LabelledTree) -> frozenset[str]:
    """The canonical form of a depth-1 instance, as a set of child labels.

    For depth-1 instances two nodes are formula equivalent exactly when they
    carry the same label, so the canonical instance is fully described by the
    set of labels occurring below the root.  The depth-1 decision procedures
    (Theorem 4.6, Corollary 4.7, Corollary 5.7) work directly on these sets.
    """
    if instance.depth() > 1:
        raise InstanceError(
            f"instance has depth {instance.depth()}, expected a depth-1 instance"
        )
    return frozenset(child.label for child in instance.root.children)


def depth1_state_to_instance(schema: Schema, state: frozenset[str]) -> Instance:
    """Materialise a depth-1 canonical state back into an instance."""
    instance = Instance.empty(schema)
    for label in sorted(state):
        instance.add_field(instance.root, label)
    return instance
