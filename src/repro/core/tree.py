"""Rooted node-labelled trees (Definition 3.1).

Both schemas and form instances are rooted node-labelled trees
``M = (V, E, r, λ)``.  This module provides the shared tree machinery:

* :class:`Node` — a single tree node with a label, a parent and children;
* :class:`LabelledTree` — a mutable rooted tree supporting leaf additions and
  deletions (the only updates the paper considers, Section 3.4), traversal,
  copying, and isomorphism-invariant hashing.

Trees are *unordered*: the children of a node form a multiset, so two trees
are considered equal when they are isomorphic as node-labelled rooted trees.
The isomorphism-invariant :meth:`LabelledTree.shape` (a nested tuple with
recursively sorted children) is the basis for state deduplication in the
state-space explorers of :mod:`repro.analysis`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.core.labels import ROOT_LABEL, validate_label
from repro.exceptions import InstanceError

#: A nested, order-normalised representation of a tree: ``(label, (child_shape, ...))``
#: with the children sorted.  Equal shapes <=> isomorphic trees.
Shape = tuple


class Node:
    """A single node of a rooted node-labelled tree.

    Attributes:
        label: the node label ``λ(v)``.
        parent: the parent node, or ``None`` for the root.
        children: the list of child nodes (unordered semantics).
        node_id: an identifier unique within the owning tree, stable across
            copies of the tree (copies preserve ids so that runs recorded on
            one copy can be replayed on another).
    """

    __slots__ = ("node_id", "label", "parent", "children")

    def __init__(self, node_id: int, label: str, parent: Optional["Node"]) -> None:
        self.node_id = node_id
        self.label = label
        self.parent = parent
        self.children: list[Node] = []

    def is_root(self) -> bool:
        """Return ``True`` when this node has no parent."""
        return self.parent is None

    def is_leaf(self) -> bool:
        """Return ``True`` when this node has no children."""
        return not self.children

    def depth(self) -> int:
        """Distance from the root (the root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def label_path(self) -> tuple[str, ...]:
        """The sequence of labels from (and excluding) the root to this node.

        The root itself has the empty label path.  Because sibling labels in a
        schema are unique (Definition 3.1), the label path of an instance node
        identifies the schema node it maps to under the unique homomorphism of
        Proposition 3.3.
        """
        labels: list[str] = []
        node = self
        while node.parent is not None:
            labels.append(node.label)
            node = node.parent
        labels.reverse()
        return tuple(labels)

    def children_with_label(self, label: str) -> list["Node"]:
        """All children of this node carrying *label*."""
        return [child for child in self.children if child.label == label]

    def has_child_with_label(self, label: str) -> bool:
        """Return ``True`` when some child of this node carries *label*."""
        return any(child.label == label for child in self.children)

    def iter_subtree(self) -> Iterator["Node"]:
        """Yield this node and all its descendants (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(id={self.node_id}, label={self.label!r}, children={len(self.children)})"


class LabelledTree:
    """A mutable rooted node-labelled tree.

    The tree always has a root node.  The only structural updates offered are
    the two the paper's update model permits (Section 3.4): adding a new leaf
    under an existing node and removing an existing leaf.
    """

    def __init__(self, root_label: str = ROOT_LABEL) -> None:
        validate_label(root_label)
        self._next_id = 0
        self._nodes: dict[int, Node] = {}
        self._root = self._make_node(root_label, parent=None)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def _make_node(self, label: str, parent: Optional[Node]) -> Node:
        node = Node(self._next_id, label, parent)
        self._nodes[node.node_id] = node
        self._next_id += 1
        if parent is not None:
            parent.children.append(node)
        return node

    @classmethod
    def from_nested(cls, nested: dict | Shape, root_label: str = ROOT_LABEL) -> "LabelledTree":
        """Build a tree from a nested description.

        Two input styles are accepted:

        * a nested ``dict`` mapping child labels to nested dicts, e.g.
          ``{"a": {"n": {}, "d": {}}}`` — convenient for schemas where sibling
          labels are unique;
        * a :data:`Shape` tuple ``(label, (child, ...))`` — allows repeated
          sibling labels, used for instances.

        The *root_label* argument labels the root; a dict describes only the
        children of the root.
        """
        tree = cls(root_label)
        if isinstance(nested, dict):
            tree._grow_from_dict(tree.root, nested)
        else:
            label, children = nested
            if label != root_label:
                raise InstanceError(
                    f"shape root label {label!r} does not match requested root "
                    f"label {root_label!r}"
                )
            tree._grow_from_shape(tree.root, children)
        return tree

    def _grow_from_dict(self, parent: Node, nested: dict) -> None:
        for label, sub in nested.items():
            child = self._make_node(validate_label(label), parent)
            self._grow_from_dict(child, sub or {})

    def _grow_from_shape(self, parent: Node, children: Iterable[Shape]) -> None:
        for label, sub in children:
            child = self._make_node(validate_label(label), parent)
            self._grow_from_shape(child, sub)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> Node:
        """The root node ``r``."""
        return self._root

    def node(self, node_id: int) -> Node:
        """Return the node with identifier *node_id*.

        Raises:
            InstanceError: if no such node exists (e.g. it was deleted).
        """
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise InstanceError(f"no node with id {node_id} in tree") from exc

    def has_node(self, node_id: int) -> bool:
        """Return ``True`` when a node with *node_id* is present."""
        return node_id in self._nodes

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes (pre-order from the root)."""
        return self._root.iter_subtree()

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate over all (parent, child) edges."""
        for node in self.nodes():
            for child in node.children:
                yield node, child

    def size(self) -> int:
        """Number of nodes, including the root."""
        return len(self._nodes)

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (a lone root has depth 0)."""
        return max((node.depth() for node in self.nodes()), default=0)

    def leaves(self) -> list[Node]:
        """All leaf nodes (the root counts as a leaf when it has no children)."""
        return [node for node in self.nodes() if node.is_leaf()]

    def find(self, predicate: Callable[[Node], bool]) -> Optional[Node]:
        """Return some node satisfying *predicate*, or ``None``."""
        for node in self.nodes():
            if predicate(node):
                return node
        return None

    def nodes_with_label_path(self, path: tuple[str, ...]) -> list[Node]:
        """All nodes whose :meth:`Node.label_path` equals *path*."""
        if not path:
            return [self._root]
        return [node for node in self.nodes() if node.label_path() == path]

    # ------------------------------------------------------------------ #
    # updates (leaf additions and deletions only — Section 3.4)
    # ------------------------------------------------------------------ #

    def add_leaf(self, parent: Node | int, label: str) -> Node:
        """Add a new leaf with *label* under *parent* and return it."""
        parent_node = self._resolve(parent)
        validate_label(label)
        return self._make_node(label, parent_node)

    def remove_leaf(self, node: Node | int) -> None:
        """Remove the leaf *node* from the tree.

        Raises:
            InstanceError: if the node is not a leaf, is the root, or does not
                belong to this tree.
        """
        target = self._resolve(node)
        if target.is_root():
            raise InstanceError("the root node cannot be deleted")
        if not target.is_leaf():
            raise InstanceError(
                f"node {target.node_id} ({target.label!r}) is not a leaf; only "
                "leaf deletions are permitted"
            )
        parent = target.parent
        assert parent is not None
        parent.children.remove(target)
        del self._nodes[target.node_id]

    def _resolve(self, node: Node | int) -> Node:
        if isinstance(node, Node):
            if self._nodes.get(node.node_id) is not node:
                raise InstanceError(
                    f"node {node.node_id} does not belong to this tree"
                )
            return node
        return self.node(node)

    def next_node_id(self) -> int:
        """The identifier the next added node will receive.

        Exposed for the engine's persistent state store: a restored tree must
        continue numbering nodes exactly where the persisted one stopped, so
        that updates recorded against its successors stay replayable.
        """
        return self._next_id

    @classmethod
    def from_node_specs(
        cls, root_spec: "list | tuple", next_id: Optional[int] = None
    ) -> "LabelledTree":
        """Rebuild a tree from ``[node_id, label, [child_spec, ...]]`` specs.

        Unlike :meth:`from_nested`, node identifiers are taken from the specs
        instead of being assigned fresh — the id-preserving counterpart of
        :meth:`copy` used when trees are restored from a persistent store.
        *next_id* seeds the id counter; by default it is one past the largest
        restored id.

        Raises:
            InstanceError: on duplicate node ids in the specs.
        """
        tree = cls.__new__(cls)
        tree._nodes = {}
        tree._root = tree._grow_from_node_spec(root_spec, None)
        tree._next_id = (
            next_id if next_id is not None else max(tree._nodes) + 1
        )
        return tree

    def _grow_from_node_spec(self, spec: "list | tuple", parent: Optional[Node]) -> Node:
        node_id, label, children = spec
        if node_id in self._nodes:
            raise InstanceError(f"duplicate node id {node_id} in node specs")
        node = Node(node_id, validate_label(label), parent)
        self._nodes[node_id] = node
        if parent is not None:
            parent.children.append(node)
        for child_spec in children:
            self._grow_from_node_spec(child_spec, node)
        return node

    # ------------------------------------------------------------------ #
    # copying, shapes and isomorphism
    # ------------------------------------------------------------------ #

    def copy(self) -> "LabelledTree":
        """Return a deep copy of the tree.

        Node identifiers are preserved so that updates recorded against one
        copy (by node id) can be replayed against another.
        """
        clone = self.__class__.__new__(self.__class__)
        clone._next_id = self._next_id
        clone._nodes = {}
        clone._root = clone._copy_subtree(self._root, None)
        return clone

    def _copy_subtree(self, node: Node, parent: Optional[Node]) -> Node:
        copy_node = Node(node.node_id, node.label, parent)
        self._nodes[copy_node.node_id] = copy_node
        if parent is not None:
            parent.children.append(copy_node)
        for child in node.children:
            self._copy_subtree(child, copy_node)
        return copy_node

    def shape(self) -> Shape:
        """Isomorphism-invariant nested-tuple representation of the tree.

        Two trees have equal shapes iff they are isomorphic as unordered
        node-labelled rooted trees.
        """
        return _shape_of(self._root)

    def subtree_shape(self, node: Node | int) -> Shape:
        """The :meth:`shape` of the subtree rooted at *node*."""
        return _shape_of(self._resolve(node))

    def is_isomorphic_to(self, other: "LabelledTree") -> bool:
        """Structural equality up to reordering of siblings."""
        return self.shape() == other.shape()

    def label_multiset(self) -> dict[str, int]:
        """Mapping from label to the number of nodes carrying it."""
        counts: dict[str, int] = {}
        for node in self.nodes():
            counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelledTree):
            return NotImplemented
        return self.shape() == other.shape()

    def __hash__(self) -> int:
        return hash(self.shape())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(size={self.size()}, depth={self.depth()})"


def _shape_of(node: Node) -> Shape:
    children = sorted(_shape_of(child) for child in node.children)
    return (node.label, tuple(children))


def shape_size(shape: Shape) -> int:
    """Number of nodes described by a :data:`Shape`."""
    label, children = shape
    del label
    return 1 + sum(shape_size(child) for child in children)


def shape_depth(shape: Shape) -> int:
    """Depth of the tree described by a :data:`Shape`."""
    label, children = shape
    del label
    if not children:
        return 0
    return 1 + max(shape_depth(child) for child in children)
