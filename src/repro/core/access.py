"""Access rights and access-rule tables (Section 3.4).

The paper postulates the access rights ``R = {add, del}`` and defines the
access-rule function ``A : R × E → F`` mapping each right and schema edge to
a formula.  The formula for ``(add, e)`` (resp. ``(del, e)``) is evaluated at
the *parent* node of the edge being added (resp. deleted) in the current
instance.

:class:`RuleTable` implements ``A``.  Edges are addressed by the schema path
of their end node, exactly like the paper's Example 3.12 (``A(add, a/p/b) =
¬../../s ∧ ¬b``).  Edges without an explicit rule default to
:class:`~repro.core.formulas.ast.Bottom` — "no access right", which is how
the paper's constructions phrase "there are no other access rights"
(Theorem 4.6).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Mapping

from repro.core.formulas.ast import Bottom, Formula
from repro.core.formulas.parser import parse_formula
from repro.core.schema import Schema, SchemaEdge, SchemaPath, format_schema_path, parse_schema_path
from repro.exceptions import AccessRuleError


class AccessRight(enum.Enum):
    """The two access rights of Section 3.4."""

    ADD = "add"
    DEL = "del"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Accepted spellings for rights in dict-style rule specifications.
_RIGHT_ALIASES = {
    "add": AccessRight.ADD,
    "create": AccessRight.ADD,
    "del": AccessRight.DEL,
    "delete": AccessRight.DEL,
}


def parse_access_right(value: "AccessRight | str") -> AccessRight:
    """Normalise an access-right argument."""
    if isinstance(value, AccessRight):
        return value
    try:
        return _RIGHT_ALIASES[value.lower()]
    except (KeyError, AttributeError) as exc:
        raise AccessRuleError(f"unknown access right {value!r}") from exc


class RuleTable:
    """The access-rule function ``A`` of a guarded form.

    A rule table is bound to a schema so that rules can only be attached to
    edges that actually exist.  Rules are formulas (or strings parsed as
    formulas); missing rules default to ``false``.

    The most convenient constructor is :meth:`from_dict`::

        rules = RuleTable.from_dict(schema, {
            "a":     ("¬a",           "¬a"),
            "a/n":   ("¬../s ∧ ¬n",   "¬../s"),
            "s":     ("¬s ∧ a[n ∧ d ∧ p] ∧ ¬a/p[¬b ∨ ¬e]", "¬s"),
        })

    where each value is an ``(add_rule, delete_rule)`` pair; a single value is
    accepted as a shorthand for using the same formula for both rights.
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._rules: dict[tuple[AccessRight, SchemaPath], Formula] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dict(
        cls,
        schema: Schema,
        rules: Mapping[str, "object"],
        default: "Formula | str | None" = None,
    ) -> "RuleTable":
        """Build a rule table from a mapping of edge paths to rules.

        Each value may be a single formula/string (used for both rights), or a
        pair ``(add_rule, delete_rule)``.  When *default* is given, every edge
        not mentioned in *rules* receives it for both rights (e.g. ``"true"``
        for the fully permissive forms of Theorem 5.1).
        """
        table = cls(schema)
        if default is not None:
            default_formula = parse_formula(default)
            for edge in schema.edges_list():
                table.set_rule(AccessRight.ADD, edge.path, default_formula)
                table.set_rule(AccessRight.DEL, edge.path, default_formula)
        for path, value in rules.items():
            if isinstance(value, (tuple, list)):
                if len(value) != 2:
                    raise AccessRuleError(
                        f"rule for edge {path!r} must be a single formula or an "
                        "(add, delete) pair"
                    )
                add_rule, del_rule = value
            else:
                add_rule = del_rule = value
            table.set_rule(AccessRight.ADD, path, parse_formula(add_rule))
            table.set_rule(AccessRight.DEL, path, parse_formula(del_rule))
        return table

    def set_rule(
        self,
        right: "AccessRight | str",
        edge: "SchemaEdge | SchemaPath | str",
        formula: "Formula | str",
    ) -> None:
        """Attach *formula* as the rule for (*right*, *edge*)."""
        resolved_right = parse_access_right(right)
        path = self._resolve_edge(edge)
        self._rules[(resolved_right, path)] = parse_formula(formula)

    def set_add_rule(self, edge: "SchemaEdge | SchemaPath | str", formula: "Formula | str") -> None:
        """Shorthand for :meth:`set_rule` with the ``add`` right."""
        self.set_rule(AccessRight.ADD, edge, formula)

    def set_delete_rule(self, edge: "SchemaEdge | SchemaPath | str", formula: "Formula | str") -> None:
        """Shorthand for :meth:`set_rule` with the ``del`` right."""
        self.set_rule(AccessRight.DEL, edge, formula)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> Schema:
        """The schema whose edges this table guards."""
        return self._schema

    def rule(self, right: "AccessRight | str", edge: "SchemaEdge | SchemaPath | str") -> Formula:
        """The formula ``A(right, edge)`` (``false`` when unspecified)."""
        resolved_right = parse_access_right(right)
        path = self._resolve_edge(edge)
        return self._rules.get((resolved_right, path), Bottom())

    def add_rule(self, edge: "SchemaEdge | SchemaPath | str") -> Formula:
        """``A(add, edge)``."""
        return self.rule(AccessRight.ADD, edge)

    def delete_rule(self, edge: "SchemaEdge | SchemaPath | str") -> Formula:
        """``A(del, edge)``."""
        return self.rule(AccessRight.DEL, edge)

    def has_explicit_rule(self, right: "AccessRight | str", edge: "SchemaEdge | SchemaPath | str") -> bool:
        """Whether a rule was explicitly set for (*right*, *edge*)."""
        resolved_right = parse_access_right(right)
        path = self._resolve_edge(edge)
        return (resolved_right, path) in self._rules

    def items(self) -> Iterator[tuple[AccessRight, SchemaPath, Formula]]:
        """Iterate over all explicitly set rules."""
        for (right, path), formula in sorted(
            self._rules.items(), key=lambda item: (item[0][1], item[0][0].value)
        ):
            yield right, path, formula

    def formulas(self) -> list[Formula]:
        """All explicitly set rule formulas (used by fragment classification)."""
        return list(self._rules.values())

    def is_positive(self) -> bool:
        """``True`` when every rule formula is positive (the ``A+`` fragments).

        Unspecified rules default to ``false``, which is treated as positive —
        an absent right can never become enabled, matching the monotonicity
        property the positive fragments rely on.
        """
        return all(formula.is_positive() for formula in self._rules.values())

    def copy(self, schema: "Schema | None" = None) -> "RuleTable":
        """Copy the table, optionally rebinding it to a (compatible) schema."""
        target = schema if schema is not None else self._schema
        clone = RuleTable(target)
        for (right, path), formula in self._rules.items():
            clone.set_rule(right, path, formula)
        return clone

    def to_dict(self) -> dict[str, tuple[str, str]]:
        """Serialise to the :meth:`from_dict` format (formulas as text)."""
        result: dict[str, tuple[str, str]] = {}
        edges = {path for (_, path) in self._rules}
        for path in sorted(edges):
            result[format_schema_path(path)] = (
                self.add_rule(path).to_text(),
                self.delete_rule(path).to_text(),
            )
        return result

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _resolve_edge(self, edge: "SchemaEdge | SchemaPath | str | Iterable[str]") -> SchemaPath:
        if isinstance(edge, SchemaEdge):
            path = edge.path
        else:
            path = parse_schema_path(edge)
        if not path:
            raise AccessRuleError("access rules cannot be attached to the root")
        if not self._schema.has_path(path):
            raise AccessRuleError(
                f"schema has no edge at path {format_schema_path(path)!r}"
            )
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RuleTable(rules={len(self._rules)})"
