"""``AnalysisRequest``: the one configuration object every entry point shares.

Before this module existed each dispatcher took a dozen keyword arguments
(mirrored by CLI flags), and there was no way to ship "run this analysis
with these knobs" across a process boundary.  :class:`AnalysisRequest`
packages the whole configuration — form reference, analysis kind, engine
knobs, persistence, telemetry — as one frozen dataclass with a versioned
JSON codec, so the identical object is

* accepted by the library dispatchers (``decide_completability(request=r)``
  and friends are thin shims over
  :func:`repro.service.dispatch.run_analysis`),
* built by the CLI from its flags (``repro submit``),
* and carried over the HTTP wire to the pod server (``POST /v1/jobs``).

The codec is strict: ``request_from_wire`` rejects unknown fields, wrong
types and unsupported ``api`` versions with
:class:`~repro.exceptions.RequestError` — a malformed request must fail at
the edge, not halfway into a worker.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Optional

from repro.analysis.results import ExplorationLimits
from repro.exceptions import RequestError

#: Version tag of the request wire format; bumped on incompatible changes.
REQUEST_API_VERSION = "analysis-request/1"

#: The analysis verbs a request can name, mapping 1:1 onto the library
#: dispatchers: ``completability`` → ``decide_completability``,
#: ``semisoundness`` → ``decide_semisoundness``, ``invariant`` →
#: ``always_holds``, ``reach`` → ``can_reach``, ``workflow`` →
#: ``extract_workflow``.
ANALYSIS_KINDS = ("completability", "semisoundness", "invariant", "reach", "workflow")

#: Kinds whose procedures take a formula argument.
_FORMULA_KINDS = ("invariant", "reach")

#: Completability/semisoundness procedure selectors (``strategy=`` of the
#: dispatchers); ``auto`` is fragment-based dispatch.
_STRATEGIES = ("auto", "saturation", "depth1", "bounded")

_FRONTIERS = ("bfs", "dfs", "guided")


@dataclass(frozen=True)
class AnalysisRequest:
    """A complete, immutable description of one analysis invocation.

    Attributes:
        form: form reference — a catalogue name, an inline form dict (the
            JSON format of :mod:`repro.io.serialization`; how forms travel
            over the service wire) or, for local library/CLI use, a path to
            a form file.
        kind: the analysis verb, one of :data:`ANALYSIS_KINDS`.
        formula: the formula text for ``invariant`` / ``reach`` kinds.
        strategy: procedure selector for completability/semisoundness
            (``auto``/``saturation``/``depth1``/``bounded``).
        frontier: exploration frontier order (``bfs``/``dfs``/``guided``).
        workers: frontier worker processes (1 = serial; bit-identical).
        max_states / max_instance_nodes / max_sibling_copies: the
            :class:`~repro.analysis.results.ExplorationLimits` fields.
        resident_budget: LRU residency cap for store-backed explorations
            (states; requires a store).
        store: persistent state store.  In a library call this is a path;
            submitted to the service it is a plain *store name* resolved
            under the server's ``--store-dir`` (so resubmissions may share
            caches); ``None`` lets the service assign a per-job store.
        resume: continue from the checkpoint an identically parameterised
            earlier run left in the store.
        stop_on_complete: early-exit completability (first complete state).
        step_limit: expand at most this many states per ``run_analysis``
            call, then checkpoint and raise
            :class:`~repro.exceptions.ExplorationInterrupted` — the
            service's slice size for cooperative cancellation/eviction.
        checkpoint_every: store checkpoint cadence (state expansions).
        budget_kb: the *declared admission budget* — what the job claims
            its peak resident set will cost the pod.  The server admits a
            job only while the sum of admitted budgets stays within
            ``capacity_kb * overcommit``; ``None`` accepts the server's
            default.
        trace / metrics: telemetry opt-ins (span recording / metric
            snapshot in the result).
    """

    form: "str | dict"
    kind: str
    formula: Optional[str] = None
    strategy: str = "auto"
    frontier: str = "bfs"
    workers: int = 1
    max_states: int = 50_000
    max_instance_nodes: Optional[int] = 40
    max_sibling_copies: Optional[int] = None
    resident_budget: Optional[int] = None
    store: Optional[str] = None
    resume: bool = False
    stop_on_complete: bool = False
    step_limit: Optional[int] = None
    checkpoint_every: int = 1000
    budget_kb: Optional[int] = None
    trace: bool = False
    metrics: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.form, (str, dict)) or self.form == "":
            raise RequestError(
                "form must be a catalogue name, a form dict or a file path"
            )
        if self.kind not in ANALYSIS_KINDS:
            raise RequestError(
                f"unknown analysis kind {self.kind!r}; expected one of "
                f"{', '.join(ANALYSIS_KINDS)}"
            )
        if self.kind in _FORMULA_KINDS and not self.formula:
            raise RequestError(f"analysis kind {self.kind!r} requires a formula")
        if self.kind not in _FORMULA_KINDS and self.formula is not None:
            raise RequestError(
                f"analysis kind {self.kind!r} takes no formula, got "
                f"{self.formula!r}"
            )
        if self.strategy not in _STRATEGIES:
            raise RequestError(
                f"unknown strategy {self.strategy!r}; expected one of "
                f"{', '.join(_STRATEGIES)}"
            )
        if self.frontier not in _FRONTIERS:
            raise RequestError(
                f"unknown frontier {self.frontier!r}; expected one of "
                f"{', '.join(_FRONTIERS)}"
            )
        for name in ("workers", "max_states", "checkpoint_every"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise RequestError(f"{name} must be a positive integer, got {value!r}")
        for name in (
            "max_instance_nodes",
            "max_sibling_copies",
            "resident_budget",
            "step_limit",
            "budget_kb",
        ):
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool) or value < 1
            ):
                raise RequestError(
                    f"{name} must be a positive integer or null, got {value!r}"
                )
        if self.resident_budget is not None and self.store is None:
            raise RequestError(
                "resident_budget needs a store: without a persistent store "
                "there is nowhere to evict resident state to"
            )
        for name in ("resume", "stop_on_complete", "trace", "metrics"):
            if not isinstance(getattr(self, name), bool):
                raise RequestError(f"{name} must be a boolean")

    def limits(self) -> ExplorationLimits:
        """The request's exploration limits as the engine's limits object."""
        return ExplorationLimits(
            max_states=self.max_states,
            max_instance_nodes=self.max_instance_nodes,
            max_sibling_copies=self.max_sibling_copies,
        )

    def replace(self, **changes) -> "AnalysisRequest":
        """A copy with *changes* applied (requests are frozen)."""
        return dataclasses.replace(self, **changes)


_FIELD_NAMES = tuple(f.name for f in fields(AnalysisRequest))


def request_to_wire(request: AnalysisRequest) -> dict:
    """Encode *request* as its versioned JSON-safe wire dict.

    Every field is emitted explicitly (no default elision): a wire request
    is self-describing, and a reader never needs this build's defaults to
    interpret an older writer's output within one ``api`` version.
    """
    payload = {"api": REQUEST_API_VERSION}
    for name in _FIELD_NAMES:
        payload[name] = getattr(request, name)
    return payload


def request_from_wire(payload: object) -> AnalysisRequest:
    """Decode and validate a wire dict back into an :class:`AnalysisRequest`.

    Strict by design: a non-dict payload, a missing/unsupported ``api``
    version, unknown fields, or any field validation failure raises
    :class:`~repro.exceptions.RequestError` (the taxonomy's
    ``bad-request``).  Absent optional fields take the dataclass defaults,
    so a minimal ``{"api": ..., "form": ..., "kind": ...}`` is a complete
    request.
    """
    if not isinstance(payload, dict):
        raise RequestError(
            f"a wire request must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("api")
    if version != REQUEST_API_VERSION:
        raise RequestError(
            f"unsupported request api {version!r}; this build speaks "
            f"{REQUEST_API_VERSION}"
        )
    unknown = sorted(set(payload) - set(_FIELD_NAMES) - {"api"})
    if unknown:
        raise RequestError(f"unknown request field(s): {', '.join(unknown)}")
    kwargs = {name: payload[name] for name in _FIELD_NAMES if name in payload}
    missing = [name for name in ("form", "kind") if name not in kwargs]
    if missing:
        raise RequestError(f"missing required request field(s): {', '.join(missing)}")
    return AnalysisRequest(**kwargs)
