"""The analysis pod server: stdlib HTTP front, worker threads, admission.

Zero dependencies beyond the standard library: a
:class:`http.server.ThreadingHTTPServer` front end accepts
``analysis-request/1`` payloads, a durable :class:`~repro.service.jobs.JobStore`
queues them, and a small pool of worker threads drains the queue under
declared-budget admission control
(:class:`~repro.service.admission.AdmissionController`).

Jobs run *slice-wise*: each worker executes
:func:`~repro.service.dispatch.run_analysis` with a bounded ``step_limit``
against a per-job engine store under the server's ``--store-dir``, so the
exploration checkpoints and raises
:class:`~repro.exceptions.ExplorationInterrupted` every few thousand states.
Between slices the worker observes cancellation, stall eviction and server
shutdown, then resumes from the checkpoint — the same ``--resume`` machinery
the CLI uses, which earlier PRs pinned bit-identical to uninterrupted runs.
That one mechanism therefore gives cooperative cancellation, eviction,
graceful shutdown *and* crash recovery (``JobStore.recover`` re-queues jobs
a killed server left running; their next slice resumes the checkpoint).

Telemetry: the server owns a :class:`~repro.obs.tracing.Telemetry` recorder;
HTTP requests record spans, and each job slice runs under its own recorder
whose payload is absorbed into the server's afterwards
(:meth:`~repro.obs.tracing.Telemetry.merge_remote` — the same delta
semantics frontier workers use to ship counters to the coordinator), so
``/metricsz`` exports one merged view and ``--trace`` writes one merged
Chrome trace on shutdown.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional
from urllib.parse import urlparse

from repro.cache import default_cache, open_kv, use_cache
from repro.exceptions import (
    AdmissionError,
    EvictionError,
    ExplorationInterrupted,
    JobNotReadyError,
    RequestError,
)
from repro.obs import publish_cache_stats
from repro.obs.tracing import Telemetry, use_telemetry
from repro.service.admission import AdmissionController, StallDetector, request_family
from repro.service.dispatch import (
    result_cache_probe,
    result_cache_store,
    result_to_wire,
    run_analysis,
)
from repro.service.errors import error_payload, http_status
from repro.service.jobs import JobStore
from repro.service.request import request_from_wire, request_to_wire


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` configures.

    Attributes:
        store_dir: directory owning the job queue (``jobs.sqlite``) and the
            per-job engine stores — the pod's entire durable state.
        host / port: bind address (port ``0`` picks an ephemeral port; the
            bound port is on :attr:`PodServer.port`).
        capacity_kb / overcommit: admission ceiling — the sum of admitted
            jobs' declared budgets stays within ``capacity_kb * overcommit``.
        default_budget_kb: budget accounted for jobs that declare none.
        workers: job worker threads (concurrent running jobs).
        slice_steps: states explored per slice for jobs that set no
            ``step_limit`` of their own.
        max_queue: queued-job cap; submissions beyond it are rejected (429).
        max_evictions: stall evictions tolerated before a job fails.
        stall_multiple / stall_floor_seconds: the family-median stall
            detector's knobs (see :mod:`repro.service.admission`).
        trace_path: write the server's merged Chrome trace here on shutdown.
        cache: shared KV-cache spec (``repro serve --cache DIR|URL``; see
            :func:`repro.cache.open_kv`).  When unset, the ambient
            ``REPRO_CACHE`` cache — if any — is used instead.
    """

    store_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    capacity_kb: int = 262_144
    overcommit: float = 1.0
    default_budget_kb: int = 65_536
    workers: int = 2
    slice_steps: int = 2_000
    max_queue: int = 64
    max_evictions: int = 3
    stall_multiple: float = 8.0
    stall_floor_seconds: float = 2.0
    trace_path: Optional[str] = None
    cache: Optional[str] = None


class PodServer:
    """The pod: HTTP front end, durable queue, admission, worker pool."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.store_dir = Path(config.store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.jobs = JobStore(self.store_dir / "jobs.sqlite")
        self.admission = AdmissionController(
            config.capacity_kb, config.overcommit, config.default_budget_kb
        )
        self.stalls = StallDetector(
            multiple=config.stall_multiple, floor_seconds=config.stall_floor_seconds
        )
        self.telemetry = Telemetry(process="pod-server")
        #: Shared KV cache (guards/shapes/results): the configured spec, or
        #: whatever ``REPRO_CACHE`` resolves to, or ``None`` (no caching).
        self.cache = open_kv(config.cache) if config.cache else default_cache()
        recovered = self.jobs.recover()
        if recovered:
            self.telemetry.instant("server.recovered_jobs", count=recovered)
            self.telemetry.metrics.counter("service.jobs.recovered").inc(recovered)
        self._admit_lock = threading.Lock()
        self._telemetry_lock = threading.Lock()
        self._running_lock = threading.Lock()
        #: job_id -> (family, monotonic time of last observed progress)
        self._running: dict = {}
        self._evict_requested: set = set()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._threads: "list[threading.Thread]" = []
        self.port: Optional[int] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Bind the HTTP server and start the worker and watchdog threads."""
        handler = type("PodHandler", (_PodHandler,), {"pod": self})
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._threads = [
            threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="pod-http",
                daemon=True,
            ),
            threading.Thread(target=self._watchdog_loop, name="pod-watchdog", daemon=True),
        ]
        for index in range(self.config.workers):
            self._threads.append(
                threading.Thread(
                    target=self._worker_loop,
                    args=(f"job-worker-{index}",),
                    name=f"pod-worker-{index}",
                    daemon=True,
                )
            )
        for thread in self._threads:
            thread.start()
        self.telemetry.instant(
            "server.started", port=self.port, workers=self.config.workers
        )

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`shutdown` is requested (CLI foreground mode)."""
        return self._stop.wait(timeout)

    def request_shutdown(self) -> None:
        """Signal shutdown from any thread (e.g. a SIGTERM handler)."""
        self._stop.set()
        self._wake.set()

    def shutdown(self) -> None:
        """Stop accepting, let workers finish their slice, flush telemetry.

        Running jobs are re-queued at their next slice boundary (their
        checkpoints are on disk), so a restarted server resumes them.
        """
        self.request_shutdown()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        self.telemetry.instant("server.stopped")
        if self.config.trace_path:
            self.telemetry.write_chrome_trace(self.config.trace_path)
        if self.cache is not None:
            if self.config.cache:
                self.cache.close()  # ours: flush and release the connection
            else:
                self.cache.flush()  # ambient (REPRO_CACHE): others may share it
        self.jobs.close()

    # ------------------------------------------------------------------ #
    # request routing (socket-free; the HTTP handler and tests share it)
    # ------------------------------------------------------------------ #

    def handle(self, method: str, path: str, payload: object) -> "tuple[int, dict]":
        """Route one request; returns ``(status, json_body)``, never raises."""
        try:
            if method == "POST" and path == "/v1/jobs":
                return self._submit(payload)
            if method == "GET" and path == "/healthz":
                return self._healthz()
            if method == "GET" and path == "/metricsz":
                return self._metricsz()
            if method == "GET" and path == "/v1/jobs":
                return 200, {"jobs": [job.to_wire() for job in self.jobs.jobs()]}
            if path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/") :]
                if method == "GET" and rest.endswith("/result"):
                    return self._result(rest[: -len("/result")])
                if method == "POST" and rest.endswith("/cancel"):
                    return self._cancel(rest[: -len("/cancel")])
                if method == "GET" and "/" not in rest:
                    return 200, {"job": self.jobs.get(rest).to_wire()}
            return 404, {
                "error": {
                    "code": "not-found",
                    "message": f"no route for {method} {path}",
                    "retryable": False,
                }
            }
        except Exception as error:  # noqa: BLE001 — HTTP edge encodes, never raises
            return http_status(error), error_payload(error)

    def _submit(self, payload: object) -> "tuple[int, dict]":
        request = request_from_wire(payload)
        if request.store is not None:
            _check_store_name(request.store)
        budget = self.admission.effective_budget_kb(request)
        self.admission.check_submittable(budget)
        if self.jobs.queue_length() >= self.config.max_queue:
            raise AdmissionError(
                f"queue is full ({self.config.max_queue} jobs waiting); "
                "retry after some finish"
            )
        record = self.jobs.submit(request_to_wire(request), budget)
        self.telemetry.metrics.counter("service.jobs.submitted", kind=request.kind).inc()
        self.telemetry.instant("job.submitted", job=record.job_id, kind=request.kind)
        self._wake.set()
        return 202, {"job": record.to_wire()}

    def _result(self, job_id: str) -> "tuple[int, dict]":
        record = self.jobs.get(job_id)
        if record.state == "done":
            return 200, {"job": record.to_wire(), "result": record.result}
        if record.state == "failed":
            body = dict(record.error or {"error": {
                "code": "internal", "message": "job failed", "retryable": False,
            }})
            body["job"] = record.to_wire()
            return record.error_status or 500, body
        if record.state == "cancelled":
            return 410, {
                "error": {
                    "code": "cancelled",
                    "message": f"{job_id} was cancelled",
                    "retryable": False,
                },
                "job": record.to_wire(),
            }
        raise JobNotReadyError(
            f"{job_id} is {record.state}; poll again once it is terminal"
        )

    def _cancel(self, job_id: str) -> "tuple[int, dict]":
        record = self.jobs.cancel(job_id)
        self.telemetry.instant("job.cancel_requested", job=job_id)
        self._wake.set()
        return 200, {"job": record.to_wire()}

    def _healthz(self) -> "tuple[int, dict]":
        return 200, {
            "ok": True,
            "jobs": self.jobs.counts(),
            "admitted_kb": self.jobs.admitted_budget_kb(),
            "admittable_kb": self.admission.admittable_kb,
            "workers": self.config.workers,
        }

    def _metricsz(self) -> "tuple[int, dict]":
        cache_stats = self.cache.stats() if self.cache is not None else None
        with self._telemetry_lock:
            self.telemetry.sample_rss()
            if cache_stats is not None:
                # labeled series (cache_hits{namespace=guards}, ...) beside
                # the raw per-namespace block below
                publish_cache_stats(self.telemetry.metrics, cache_stats)
            snapshot = self.telemetry.metrics.snapshot(include_series=False)
        body = {
            "metrics": snapshot,
            "jobs": self.jobs.counts(),
            "admitted_kb": self.jobs.admitted_budget_kb(),
            "admittable_kb": self.admission.admittable_kb,
            "stall_families": self.stalls.snapshot(),
        }
        if cache_stats is not None:
            body["cache"] = cache_stats
        return 200, body

    # ------------------------------------------------------------------ #
    # workers
    # ------------------------------------------------------------------ #

    def _worker_loop(self, label: str) -> None:
        while not self._stop.is_set():
            job = self._admit_next()
            if job is None:
                self._wake.wait(timeout=0.05)
                self._wake.clear()
                continue
            self._run_job(job, label)

    def _admit_next(self):
        """Claim the head-of-line job iff its budget fits right now.

        Head-of-line only: a big job at the front blocks smaller later ones
        rather than being starved by them, and "never both resident" for two
        over-capacity jobs follows directly — the second stays queued until
        the first's budget is released.
        """
        with self._admit_lock:
            head = self.jobs.head_of_line()
            if head is None:
                return None
            admitted = self.jobs.admitted_budget_kb()
            if not self.admission.can_admit(head.budget_kb, admitted):
                return None
            job = self.jobs.claim_next()
            if job is not None:
                self.telemetry.metrics.counter("service.jobs.admitted").inc()
                self.telemetry.metrics.gauge("service.admitted_kb").set(
                    admitted + job.budget_kb
                )
            return job

    def _run_job(self, job, label: str) -> None:
        try:
            request = request_from_wire(job.request)
        except RequestError as error:
            self.jobs.fail(job.job_id, error_payload(error), http_status(error))
            return
        family = request_family(request)
        # a memoized identical submission needs no worker slices at all: the
        # probe keys on the *original* request (the slice/store rewrites
        # below are execution detail), and the stored body is byte-exact
        # what a cold run of this job announced
        with use_cache(self.cache):
            cached = result_cache_probe(request)
        if cached is not None:
            self.jobs.finish(job.job_id, cached)
            self.telemetry.metrics.counter("service.jobs.done", kind=request.kind).inc()
            self.telemetry.metrics.counter(
                "service.result_cache.hits", kind=request.kind
            ).inc()
            self.telemetry.instant("job.done", job=job.job_id, cached=True)
            self._wake.set()
            return
        store_name = request.store if request.store is not None else job.job_id
        store_path = self.store_dir / f"{store_name}.store.sqlite"
        slice_steps = request.step_limit or self.config.slice_steps
        base = request.replace(store=str(store_path), step_limit=slice_steps)
        # a first slice resumes when the job explored before (eviction,
        # crash recovery) or the caller asked to continue an earlier store
        resume = request.resume or job.evictions > 0 or job.states_explored > 0
        recorder = Telemetry(process=f"{label}:{job.job_id}")
        self._note_running(job.job_id, family)
        self.telemetry.instant("job.started", job=job.job_id, family=family)
        try:
            while True:
                record = self.jobs.get(job.job_id)
                if record.cancel_requested:
                    self.jobs.mark_cancelled(job.job_id)
                    self.telemetry.instant("job.cancelled", job=job.job_id)
                    return
                if self._take_evict_flag(job.job_id):
                    self._evict(job.job_id, family)
                    return
                if self._stop.is_set():
                    self.jobs.requeue(job.job_id)
                    return
                started = time.monotonic()
                try:
                    # the cache context also hands the engine layers (guard
                    # and shape KV tiers) the pod's shared cache
                    with use_telemetry(recorder), use_cache(self.cache):
                        result = run_analysis(base.replace(resume=resume))
                except ExplorationInterrupted as pause:
                    self.stalls.record(family, time.monotonic() - started)
                    self.jobs.update_progress(job.job_id, pause.states_explored)
                    self._touch_progress(job.job_id)
                    self.telemetry.metrics.counter(
                        "service.job.slices", kind=request.kind
                    ).inc()
                    resume = True
                    continue
                except Exception as error:  # noqa: BLE001 — job faults become payloads
                    self.jobs.fail(job.job_id, error_payload(error), http_status(error))
                    self.telemetry.metrics.counter("service.jobs.failed").inc()
                    self.telemetry.instant(
                        "job.failed", job=job.job_id, code=error_payload(error)["error"]["code"]
                    )
                    return
                self.stalls.record(family, time.monotonic() - started)
                body = result_to_wire(result)
                with use_cache(self.cache):
                    result_cache_store(request, body)
                self.jobs.finish(job.job_id, body)
                self.telemetry.metrics.counter(
                    "service.jobs.done", kind=request.kind
                ).inc()
                self.telemetry.instant("job.done", job=job.job_id)
                return
        finally:
            self._forget_running(job.job_id)
            self._absorb(recorder)
            self._wake.set()

    def _evict(self, job_id: str, family: str) -> None:
        record = self.jobs.get(job_id)
        if record.evictions + 1 > self.config.max_evictions:
            error = EvictionError(
                f"{job_id} ({family}) was evicted as stalled "
                f"{record.evictions + 1} times, above the pod's tolerance of "
                f"{self.config.max_evictions}"
            )
            self.jobs.fail(job_id, error_payload(error), http_status(error))
        else:
            self.jobs.requeue(job_id, evicted=True)
        self.telemetry.metrics.counter("service.jobs.evicted").inc()
        self.telemetry.instant("job.evicted", job=job_id, family=family)

    # ------------------------------------------------------------------ #
    # stall watchdog
    # ------------------------------------------------------------------ #

    def _watchdog_loop(self) -> None:
        while not self._stop.wait(timeout=0.2):
            now = time.monotonic()
            with self._running_lock:
                running = list(self._running.items())
            for job_id, (family, last_progress) in running:
                if self.stalls.is_stalled(family, now - last_progress):
                    with self._running_lock:
                        self._evict_requested.add(job_id)

    def _note_running(self, job_id: str, family: str) -> None:
        with self._running_lock:
            self._running[job_id] = (family, time.monotonic())
            self._evict_requested.discard(job_id)

    def _touch_progress(self, job_id: str) -> None:
        with self._running_lock:
            if job_id in self._running:
                family = self._running[job_id][0]
                self._running[job_id] = (family, time.monotonic())

    def _forget_running(self, job_id: str) -> None:
        with self._running_lock:
            self._running.pop(job_id, None)
            self._evict_requested.discard(job_id)

    def _take_evict_flag(self, job_id: str) -> bool:
        with self._running_lock:
            if job_id in self._evict_requested:
                self._evict_requested.discard(job_id)
                return True
            return False

    def _absorb(self, recorder: Telemetry) -> None:
        with self._telemetry_lock:
            self.telemetry.merge_remote(recorder.export_payload(drain=True))


def _check_store_name(name: str) -> None:
    """Service store references are bare names under ``--store-dir``, never
    paths — a submitted job must not escape the pod's state directory."""
    if "/" in name or "\\" in name or name in (".", "..") or name.startswith("."):
        raise RequestError(
            f"store {name!r} is not a plain store name; the service resolves "
            "stores under its own --store-dir"
        )


class _PodHandler(BaseHTTPRequestHandler):
    """Thin socket adapter over :meth:`PodServer.handle`."""

    pod: PodServer  # bound by PodServer.start() on a per-server subclass
    server_version = "repro-pod/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler contract
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def _route(self, method: str) -> None:
        path = urlparse(self.path).path
        payload: object = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if raw:
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    self._respond(
                        400,
                        {
                            "error": {
                                "code": "bad-request",
                                "message": "request body is not valid JSON",
                                "retryable": False,
                            }
                        },
                    )
                    return
        with self.pod.telemetry.span(f"http.{method}", path=path):
            status, body = self.pod.handle(method, path, payload)
        self._respond(status, body)

    def _respond(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # requests are recorded as telemetry spans, not stderr lines
