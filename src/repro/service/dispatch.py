"""``run_analysis``: the one dispatcher behind every analysis entry point.

The library dispatchers (``decide_completability``, ``decide_semisoundness``,
``always_holds``, ``can_reach``, ``extract_workflow``), the CLI and the pod
server all funnel a :class:`~repro.service.AnalysisRequest` through
:func:`run_analysis`, which resolves the form reference, opens the optional
persistent store, and dispatches on the request's ``kind``.  The parity
tests pin this path bit-identical to the classic keyword surfaces.

The result travels as the versioned ``analysis-result/1`` wire shape
(:func:`result_to_wire`); :func:`run_analysis_wire` is the full wire-to-wire
boundary — decode, run, encode, with every failure mapped onto the stable
error taxonomy of :mod:`repro.service.errors` instead of raising.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Optional

from repro.analysis.completability import decide_completability
from repro.analysis.invariants import always_holds, can_reach
from repro.analysis.results import AnalysisResult, ExplorationLimits
from repro.analysis.semisoundness import decide_semisoundness
from repro.cache.runtime import default_cache
from repro.catalog import resolve_form
from repro.engine.store import open_store
from repro.exceptions import RequestError
from repro.io.serialization import encode_update, form_fingerprint, instance_to_dict
from repro.obs import default_telemetry
from repro.service.errors import error_payload, http_status
from repro.service.request import AnalysisRequest, request_from_wire
from repro.workflow.extraction import extract_workflow

#: Version tag of the result wire format; bumped on incompatible changes.
RESULT_API_VERSION = "analysis-result/1"

#: Request fields the exploration-based kinds share (keyword name =
#: dispatcher parameter name).
_COMMON_FIELDS = (
    "frontier",
    "resume",
    "workers",
    "resident_budget",
    "step_limit",
)


def run_analysis(request: AnalysisRequest) -> AnalysisResult:
    """Run the analysis *request* describes and return its result.

    This is the single dispatcher every entry point shims onto: form
    references resolve through :func:`repro.catalog.resolve_form`, a
    ``store`` field opens (and owns) a persistent
    :class:`~repro.engine.store.SqliteStore`, and the ``kind`` selects the
    procedure.  Raises the same library exceptions the keyword surfaces
    raise; use :func:`run_analysis_wire` for the never-raising boundary.
    """
    if request.kind in ("invariant", "reach", "workflow") and request.strategy != "auto":
        raise RequestError(
            f"analysis kind {request.kind!r} has no strategy selector; leave "
            "strategy at 'auto'"
        )
    if request.kind in ("semisoundness", "workflow") and request.stop_on_complete:
        raise RequestError(
            f"stop_on_complete does not apply to analysis kind {request.kind!r}"
        )
    form = resolve_form(request.form)
    telemetry = default_telemetry()
    store = None
    try:
        with telemetry.span(
            "service.run_analysis",
            kind=request.kind,
            form=form.name,
            strategy=request.strategy,
        ):
            if request.store is not None:
                store = open_store(
                    request.store, checkpoint_every=request.checkpoint_every
                )
            common = {name: getattr(request, name) for name in _COMMON_FIELDS}
            common["limits"] = request.limits()
            common["store"] = store
            if request.kind == "completability":
                result = decide_completability(
                    form,
                    strategy=request.strategy,
                    stop_on_complete=request.stop_on_complete,
                    **common,
                )
            elif request.kind == "semisoundness":
                result = decide_semisoundness(
                    form, strategy=request.strategy, **common
                )
            elif request.kind == "invariant":
                result = always_holds(
                    form,
                    request.formula,
                    stop_on_complete=request.stop_on_complete,
                    **common,
                )
            elif request.kind == "reach":
                result = can_reach(
                    form,
                    request.formula,
                    stop_on_complete=request.stop_on_complete,
                    **common,
                )
            else:  # workflow — the only non-decision kind
                result = _run_workflow(form, common)
            if request.metrics:
                result.stats["telemetry"] = telemetry.snapshot()
            return result
    finally:
        if store is not None:
            store.close()


def _run_workflow(form, common: dict) -> AnalysisResult:
    """Workflow extraction wrapped as an :class:`AnalysisResult`.

    Extraction has no yes/no answer; ``decided`` reports whether the
    transition system is exact (not truncated), and the system itself rides
    in ``stats["lts"]`` as a JSON-safe wire dict.
    """
    lts = extract_workflow(form, **common)
    meta = lts.state_annotations.get("__meta__", {})
    truncated = bool(meta.get("truncated"))
    return AnalysisResult(
        problem="workflow",
        decided=not truncated,
        answer=None,
        procedure=f"workflow_extraction_{meta.get('representation', 'unknown')}",
        stats={
            "states": len(lts),
            "transitions": len(lts.transitions),
            "complete_states": len(lts.accepting),
            "truncated": truncated,
            "lts": lts_to_wire(lts),
        },
    )


def lts_to_wire(lts) -> dict:
    """A deterministic JSON-safe dict of a labelled transition system."""
    return {
        "initial": str(lts.initial),
        "states": sorted(str(state) for state in lts.states),
        "accepting": sorted(str(state) for state in lts.accepting),
        "transitions": sorted(
            [str(t.source), t.action, str(t.target)] for t in lts.transitions
        ),
    }


def _json_safe(value):
    """Recursively coerce *value* into JSON-representable primitives.

    Stats dicts carry a few library objects (``ExplorationLimits``, interned
    keys); limits become their field dict, unknown objects their ``repr`` —
    lossy but stable, and the parity-relevant numbers (states, transitions,
    answer) are plain ints/bools already.
    """
    if isinstance(value, ExplorationLimits):
        return dataclasses.asdict(value)
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_json_safe(item) for item in value]
        return sorted(items, key=repr) if isinstance(value, (set, frozenset)) else items
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def result_to_wire(result: AnalysisResult) -> dict:
    """Encode an :class:`AnalysisResult` as its versioned JSON-safe wire dict.

    The parity-gated fields — ``answer``, ``decided`` and the states /
    transitions counts inside ``stats`` — survive the trip exactly; witness
    runs travel as their update lists
    (:func:`repro.io.serialization.encode_update`) and counterexample
    instances as their instance dicts.
    """
    witness = None
    if result.witness_run is not None:
        witness = [encode_update(update) for update in result.witness_run.updates]
    counterexample = None
    if result.counterexample is not None:
        counterexample = instance_to_dict(result.counterexample)
    return {
        "api": RESULT_API_VERSION,
        "problem": result.problem,
        "decided": result.decided,
        "answer": result.answer,
        "procedure": result.procedure,
        "stats": _json_safe(result.stats),
        "witness_run": witness,
        "counterexample": counterexample,
    }


#: Request fields that determine the analysis *answer*.  Execution knobs —
#: ``workers``, ``resident_budget``, ``store``, ``checkpoint_every``,
#: ``budget_kb`` — are deliberately absent: the PR 3/5 parity contracts pin
#: results identical across all of them, so requests differing only there
#: share one cache entry (the stats block of a cached payload describes the
#: run that populated it).
_RESULT_KEY_FIELDS = (
    "kind",
    "formula",
    "strategy",
    "frontier",
    "max_states",
    "max_instance_nodes",
    "max_sibling_copies",
    "stop_on_complete",
)


def result_cache_key(request: AnalysisRequest) -> Optional[bytes]:
    """The result-cache key of *request*, or ``None`` when it must not cache.

    The key is ``(stable form digest, request fingerprint)``: the resolved
    form's :func:`~repro.io.serialization.form_fingerprint` (so two
    references to the same form share entries, and an edited form can never
    answer for the original) joined with a digest over the semantic request
    fields.  Uncacheable requests: ``trace``/``metrics`` runs (their stats
    embed non-deterministic telemetry), sliced or resumed runs (their
    results describe partial work), and store-writing runs (callers asked
    for the side effect, not just the answer).
    """
    if request.trace or request.metrics:
        return None
    if request.step_limit is not None or request.resume:
        return None
    if request.store is not None:
        return None
    form = resolve_form(request.form)
    fields = {name: getattr(request, name) for name in _RESULT_KEY_FIELDS}
    digest = hashlib.sha256(
        json.dumps(fields, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return f"{form_fingerprint(form)}|{digest}".encode("ascii")


def result_cache_probe(request: AnalysisRequest) -> Optional[dict]:
    """The memoized wire body for *request*, or ``None`` on a miss.

    The cached value is the byte-exact ``analysis-result/1`` body a cold
    run produced (stored as canonical JSON), so a warm answer is
    bit-identical to the run that populated the entry — the differential
    suite pins this per analysis kind.
    """
    kv = default_cache()
    if kv is None:
        return None
    key = result_cache_key(request)
    if key is None:
        return None
    raw = kv.get("results", key)
    if raw is None:
        return None
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None  # a corrupt entry is just a miss; the run recomputes it
    if not isinstance(body, dict) or body.get("api") != RESULT_API_VERSION:
        return None
    return body


def result_cache_store(request: AnalysisRequest, body: dict) -> None:
    """Offer one completed wire *body* to the result cache."""
    kv = default_cache()
    if kv is None:
        return
    key = result_cache_key(request)
    if key is None:
        return
    kv.put("results", key, json.dumps(body, separators=(",", ":")).encode("utf-8"))
    kv.flush()  # a result is durable the moment it is announced


def run_analysis_wire(payload: object) -> "tuple[int, dict]":
    """The wire-to-wire boundary: decode, run, encode — never raises.

    Returns ``(http_status, body)``: ``(200, result_to_wire(...))`` on
    success, ``(status, {"error": {...}})`` from the taxonomy on any
    failure.  The server and the in-process tests share this function, so
    HTTP answers are pinned identical to library behaviour.  With an
    ambient cache (:func:`repro.cache.default_cache`), cacheable requests
    probe the ``results`` namespace first and publish their encoded body
    after a cold run.
    """
    try:
        request = request_from_wire(payload)
        cached = result_cache_probe(request)
        if cached is not None:
            return 200, cached
        result = run_analysis(request)
    except Exception as error:  # noqa: BLE001 — the boundary encodes, never raises
        return http_status(error), error_payload(error)
    body = result_to_wire(result)
    result_cache_store(request, body)
    return 200, body
