"""The HTTP client behind ``repro submit|status|result|cancel``.

Stdlib-only (``urllib``), sharing the request/result codecs with the server
so a round trip is wire-exact.  Error payloads from the service surface as
:class:`ServiceRemoteError` carrying the taxonomy triple (code, HTTP
status, retryable) — the CLI prints them exactly like local library errors.

Form references are inlined before submission: a path to a local form file
becomes the form's JSON dict on the wire (:func:`inline_form`), so the
server never needs the client's filesystem.  Catalogue names travel as
names (both sides ship the catalogue).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.catalog import CATALOG
from repro.exceptions import RequestError, ServiceError
from repro.service.request import AnalysisRequest, request_to_wire


class ServiceRemoteError(ServiceError):
    """An error payload answered by the pod, rehydrated client-side.

    Carries the wire triple so callers (and the CLI's exit path) can
    dispatch on ``code``/``retryable`` exactly as they would on a local
    :class:`~repro.exceptions.ServiceError`.
    """

    def __init__(self, code: str, message: str, status: int, retryable: bool) -> None:
        super().__init__(message)
        self.code = code
        self.http_status = status
        self.retryable = retryable

    @classmethod
    def from_payload(cls, status: int, payload: object) -> "ServiceRemoteError":
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        return cls(
            code=str(error.get("code", "internal")),
            message=str(error.get("message", f"service answered HTTP {status}")),
            status=status,
            retryable=bool(error.get("retryable", False)),
        )


def inline_form(request: AnalysisRequest) -> AnalysisRequest:
    """Replace a file-path form reference with the file's form dict.

    Catalogue names and already-inline dicts pass through unchanged; a
    string that is neither a catalogue name nor a readable JSON file is
    rejected here, client-side, before any bytes travel.
    """
    form = request.form
    if not isinstance(form, str) or form in CATALOG:
        return request
    path = Path(form)
    if not path.exists():
        raise RequestError(
            f"{form!r} is neither a catalogue form ({', '.join(sorted(CATALOG))}) "
            "nor an existing file"
        )
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise RequestError(f"{form!r} is not a readable JSON form file: {exc}") from exc
    if not isinstance(data, dict):
        raise RequestError(f"{form!r} does not contain a JSON form object")
    return request.replace(form=data)


class ServiceClient:
    """A minimal blocking client for one pod server."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # endpoint wrappers
    # ------------------------------------------------------------------ #

    def submit(self, request: AnalysisRequest) -> dict:
        """Submit an analysis; returns the queued job's wire dict."""
        payload = request_to_wire(inline_form(request))
        body = self._call("POST", "/v1/jobs", payload)
        return body["job"]

    def status(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> dict:
        """The finished job's ``analysis-result/1`` dict.

        Raises :class:`ServiceRemoteError` when the job failed, was
        cancelled, or is not terminal yet (code ``not-ready``, retryable).
        """
        return self._call("GET", f"/v1/jobs/{job_id}/result")["result"]

    def cancel(self, job_id: str) -> dict:
        return self._call("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def metrics(self) -> dict:
        return self._call("GET", "/metricsz")

    def jobs(self) -> "list[dict]":
        return self._call("GET", "/v1/jobs")["jobs"]

    def wait(
        self,
        job_id: str,
        poll_seconds: float = 0.2,
        timeout: Optional[float] = None,
    ) -> dict:
        """Poll until the job is terminal; returns its final wire dict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] not in ("queued", "running"):
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceRemoteError(
                    code="not-ready",
                    message=f"{job_id} still {job['state']} after {timeout}s",
                    status=409,
                    retryable=True,
                )
            time.sleep(poll_seconds)

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _call(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        http_request = Request(url, data=data, headers=headers, method=method)
        try:
            with urlopen(http_request, timeout=self.timeout) as response:
                return _decode_body(response.status, response.read())
        except HTTPError as exc:
            body = exc.read()
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {}
            raise ServiceRemoteError.from_payload(exc.code, payload) from exc
        except URLError as exc:
            raise ServiceRemoteError(
                code="unreachable",
                message=f"cannot reach {url}: {exc.reason}",
                status=0,
                retryable=True,
            ) from exc


def _decode_body(status: int, raw: bytes) -> dict:
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceRemoteError(
            code="internal",
            message=f"service answered HTTP {status} with a non-JSON body",
            status=status,
            retryable=False,
        ) from exc
    if not isinstance(payload, dict):
        raise ServiceRemoteError(
            code="internal",
            message=f"service answered HTTP {status} with a non-object body",
            status=status,
            retryable=False,
        )
    return payload
