"""Pod capacity accounting: budget admission and stall eviction.

The pod model is declared-budget admission control.  Every job states (or
inherits) a resident budget in KiB — what its peak resident set is expected
to cost the pod — and the server admits the head-of-line job only while

    sum(budgets of running jobs) + budget  <=  capacity_kb * overcommit

Jobs that can *never* fit (budget alone above the admittable total) are
rejected at submission with a 429 :class:`~repro.exceptions.AdmissionError`;
jobs that merely don't fit *now* wait in the queue.  Overcommit reflects
that declared budgets are peaks, not averages: concurrent jobs rarely peak
together, so a pod may promise more than its physical capacity by a
configurable factor.

Stall eviction reuses the campaign runner's family-median heuristic
(:class:`~repro.campaign.runner.CampaignPulse`): the detector learns how
long a job family's slices normally take, and a running job whose current
slice exceeds ``multiple × median`` (with a floor, and only after enough
samples to trust the median) is evicted — re-queued so its next slices
resume from the checkpoint, with a retry cap so a pathological job cannot
cycle forever.
"""

from __future__ import annotations

import threading
from statistics import median
from typing import Optional

from repro.exceptions import AdmissionError
from repro.service.request import AnalysisRequest

#: A family needs at least this many completed slices before its median is
#: trusted for eviction decisions (mirrors the campaign pulse).
STALL_MIN_SAMPLES = 3

#: Slices faster than this never trigger eviction regardless of the median.
STALL_FLOOR_SECONDS = 2.0

#: Per-family slice-duration samples kept (older ones age out).
_MAX_SAMPLES = 256


def request_family(request: AnalysisRequest) -> str:
    """The stall-statistics family of a request: analysis kind + form name.

    Slices of the same analysis against the same form have comparable
    durations; mixing families would let one slow family's median mask a
    stall in a fast one.
    """
    if isinstance(request.form, str):
        form_name = request.form
    else:
        form_name = str(request.form.get("name", "inline"))
    return f"{request.kind}:{form_name}"


class AdmissionController:
    """Declared-budget admission against ``capacity_kb * overcommit``."""

    def __init__(
        self,
        capacity_kb: int,
        overcommit: float = 1.0,
        default_budget_kb: int = 65_536,
    ) -> None:
        if capacity_kb < 1:
            raise AdmissionError(f"capacity_kb must be positive, got {capacity_kb!r}")
        if overcommit <= 0:
            raise AdmissionError(f"overcommit must be positive, got {overcommit!r}")
        self.capacity_kb = capacity_kb
        self.overcommit = overcommit
        self.default_budget_kb = default_budget_kb

    @property
    def admittable_kb(self) -> int:
        """The total budget the pod will concurrently admit."""
        return int(self.capacity_kb * self.overcommit)

    def effective_budget_kb(self, request: AnalysisRequest) -> int:
        """The budget a request is accounted at (its own, or the default)."""
        return request.budget_kb if request.budget_kb is not None else self.default_budget_kb

    def check_submittable(self, budget_kb: int) -> None:
        """Reject (429) a job whose budget can never fit, even alone."""
        if budget_kb > self.admittable_kb:
            raise AdmissionError(
                f"declared budget {budget_kb} KiB exceeds the pod's admittable "
                f"capacity {self.admittable_kb} KiB "
                f"({self.capacity_kb} KiB × {self.overcommit} overcommit); "
                "this job can never be admitted here"
            )

    def can_admit(self, budget_kb: int, admitted_kb: int) -> bool:
        """Whether a job of *budget_kb* fits next to *admitted_kb* running."""
        return admitted_kb + budget_kb <= self.admittable_kb


class StallDetector:
    """Family-median slice-duration watchdog (thread-safe).

    Workers :meth:`record` every completed slice; the server's watchdog asks
    :meth:`is_stalled` about each running job's current slice age.  With
    fewer than :data:`STALL_MIN_SAMPLES` samples a family never stalls —
    a cold pod must not evict its first slow-but-honest job.
    """

    def __init__(
        self,
        multiple: float = 8.0,
        floor_seconds: float = STALL_FLOOR_SECONDS,
        min_samples: int = STALL_MIN_SAMPLES,
    ) -> None:
        self.multiple = multiple
        self.floor_seconds = floor_seconds
        self.min_samples = min_samples
        self._samples: dict = {}
        self._lock = threading.Lock()

    def record(self, family: str, seconds: float) -> None:
        """Record one completed slice of *family* taking *seconds*."""
        with self._lock:
            samples = self._samples.setdefault(family, [])
            samples.append(seconds)
            if len(samples) > _MAX_SAMPLES:
                del samples[: len(samples) - _MAX_SAMPLES]

    def threshold(self, family: str) -> Optional[float]:
        """Seconds after which a slice of *family* counts as stalled
        (``None`` while the family's sample base is too small)."""
        with self._lock:
            samples = self._samples.get(family, ())
            if len(samples) < self.min_samples:
                return None
            return max(self.floor_seconds, self.multiple * median(samples))

    def is_stalled(self, family: str, slice_age_seconds: float) -> bool:
        limit = self.threshold(family)
        return limit is not None and slice_age_seconds > limit

    def snapshot(self) -> dict:
        """Per-family sample counts and thresholds (for ``/metricsz``)."""
        with self._lock:
            families = list(self._samples)
        return {
            family: {
                "samples": len(self._samples.get(family, ())),
                "threshold_seconds": self.threshold(family),
            }
            for family in families
        }
