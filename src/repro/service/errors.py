"""The stable error taxonomy shared by ``run_analysis`` and the HTTP layer.

Every failure — library exception or service-level rejection — maps onto
one wire shape::

    {"error": {"code": "...", "message": "...", "retryable": false}}

with a matching HTTP status: 400 for malformed requests/forms, 404 for
unknown jobs, 409 for not-yet-ready results, 429 for admission rejections,
500 for internal faults.  The codes are part of the API contract (clients
dispatch on them), the messages are not.

:class:`~repro.exceptions.ServiceError` subclasses carry their own
``code``/``http_status``/``retryable``; the rest of the
:class:`~repro.exceptions.ReproError` hierarchy is classified here, so the
CLI and the server never invent ad-hoc stringly errors.
"""

from __future__ import annotations

from repro.exceptions import (
    AccessRuleError,
    AnalysisError,
    CampaignError,
    EngineError,
    ExplorationInterrupted,
    ExplorationLimitError,
    FormulaError,
    FormulaParseError,
    InstanceError,
    LabelError,
    ReproError,
    RunError,
    ReductionError,
    SchemaError,
    SerializationError,
    ServiceError,
    StoreError,
)

#: Classification table for non-``ServiceError`` library exceptions, most
#: specific class first (the classifier walks it with ``isinstance``).
#: ``(code, http_status, retryable)``.
_TAXONOMY: tuple = (
    # the caller's form (or formula) is unusable — a 400, never retryable
    (FormulaParseError, ("malformed-form", 400, False)),
    (FormulaError, ("malformed-form", 400, False)),
    (SchemaError, ("malformed-form", 400, False)),
    (LabelError, ("malformed-form", 400, False)),
    (InstanceError, ("malformed-form", 400, False)),
    (AccessRuleError, ("malformed-form", 400, False)),
    (RunError, ("malformed-form", 400, False)),
    (ReductionError, ("malformed-form", 400, False)),
    (SerializationError, ("malformed-form", 400, False)),
    # the request asked for an analysis the fragment does not support
    (AnalysisError, ("unsupported-analysis", 400, False)),
    (ExplorationLimitError, ("exploration-limit", 400, False)),
    # checkpointed mid-flight: the identical request with resume continues
    (ExplorationInterrupted, ("exploration-interrupted", 409, True)),
    # server-side state is broken, not the caller's input
    (StoreError, ("store-unusable", 500, False)),
    (EngineError, ("engine-rejected", 400, False)),
    (CampaignError, ("campaign-misconfigured", 400, False)),
    # unmapped library errors are still the caller's input
    (ReproError, ("invalid-input", 400, False)),
)


def classify_error(error: BaseException) -> tuple:
    """``(code, http_status, retryable)`` for any exception.

    :class:`~repro.exceptions.ServiceError` subclasses answer for
    themselves; other library errors go through the taxonomy table;
    anything else is an ``internal`` 500.
    """
    if isinstance(error, ServiceError):
        return (error.code, error.http_status, error.retryable)
    for cls, verdict in _TAXONOMY:
        if isinstance(error, cls):
            return verdict
    return ("internal", 500, False)


def error_payload(error: BaseException) -> dict:
    """The wire shape of *error*: ``{"error": {code, message, retryable}}``."""
    code, _, retryable = classify_error(error)
    return {
        "error": {
            "code": code,
            "message": str(error) or error.__class__.__name__,
            "retryable": retryable,
        }
    }


def http_status(error: BaseException) -> int:
    """The HTTP status the server answers *error* with."""
    return classify_error(error)[1]
