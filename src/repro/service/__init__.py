"""Analysis-as-a-service: the pod server and its unified request API.

The engine's decision procedures (completability, semi-soundness, invariant
checking, workflow extraction — the paper's verbs) are exposed here as a
long-running service surface:

* :mod:`repro.service.request` — :class:`AnalysisRequest`, the one frozen
  configuration object every entry point shares: the CLI builds it from
  flags, the HTTP API accepts it on the wire (versioned JSON codec), and
  the library dispatchers take it via their ``request=`` parameter;
* :mod:`repro.service.dispatch` — :func:`run_analysis`, the single
  dispatcher those entry points shim onto, plus the versioned result codec;
* :mod:`repro.service.errors` — the stable error taxonomy
  (``{"error": {"code", "message", "retryable"}}``) shared by
  ``run_analysis`` and the HTTP layer;
* :mod:`repro.service.jobs` — the sqlite-backed job queue (reusing the
  engine store's :class:`~repro.engine.store.SqliteBacked` plumbing);
* :mod:`repro.service.admission` — pod capacity accounting: per-job
  resident budgets admitted against ``capacity_kb * overcommit``, plus the
  family-median stall detector that evicts wedged jobs;
* :mod:`repro.service.server` — the zero-dependency pod server
  (stdlib ``http.server`` + worker threads), ``repro serve``;
* :mod:`repro.service.client` — the HTTP client behind
  ``repro submit|status|result|cancel``.
"""

from repro.service.admission import AdmissionController, StallDetector
from repro.service.client import ServiceClient, ServiceRemoteError
from repro.service.dispatch import (
    RESULT_API_VERSION,
    result_to_wire,
    run_analysis,
    run_analysis_wire,
)
from repro.service.errors import classify_error, error_payload
from repro.service.jobs import JOB_STATES, JobRecord, JobStore
from repro.service.request import (
    ANALYSIS_KINDS,
    REQUEST_API_VERSION,
    AnalysisRequest,
    request_from_wire,
    request_to_wire,
)
from repro.service.server import PodServer, ServerConfig

__all__ = [
    "ANALYSIS_KINDS",
    "AdmissionController",
    "AnalysisRequest",
    "JOB_STATES",
    "JobRecord",
    "JobStore",
    "PodServer",
    "REQUEST_API_VERSION",
    "RESULT_API_VERSION",
    "ServerConfig",
    "ServiceClient",
    "ServiceRemoteError",
    "StallDetector",
    "classify_error",
    "error_payload",
    "request_from_wire",
    "request_to_wire",
    "result_to_wire",
    "run_analysis",
    "run_analysis_wire",
]
