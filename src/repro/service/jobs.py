"""The pod server's sqlite-backed job queue.

Jobs survive the process: a submitted request is durable the moment
``POST /v1/jobs`` answers, and a server killed mid-job recovers on restart —
:meth:`JobStore.recover` re-queues the jobs that were running, whose
explorations then pick up from the engine-store checkpoints their slices
left behind (the same ``--resume`` machinery the CLI uses, pinned
bit-identical by the engine tests).

The store reuses the engine store's :class:`~repro.engine.store.SqliteBacked`
plumbing (WAL journal, busy timeout, ``meta`` table) with one twist: the
HTTP handler threads and the worker threads share a single connection behind
a lock (``check_same_thread=False``), and every mutation commits immediately
— queue durability is the point.

Job lifecycle::

    queued ──claim──> running ──┬──> done
      │  ^                      ├──> failed
      │  └──────requeue─────────┤        (evicted / crashed slices re-queue
      │       (eviction,        │         until ``max_evictions``)
      │        crash recovery)  │
      └──cancel──> cancelled <──┘
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.engine.sqlite_base import SqliteBacked
from repro.exceptions import UnknownJobError

#: Every state a job can be in; the first three are live, the rest terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Live (non-terminal) states.
LIVE_STATES = ("queued", "running")


@dataclass(frozen=True)
class JobRecord:
    """One job as the queue knows it (a snapshot, not a live handle)."""

    job_id: str
    state: str
    request: dict
    budget_kb: int
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    result: Optional[dict]
    error: Optional[dict]
    error_status: Optional[int]
    cancel_requested: bool
    states_explored: int
    evictions: int

    @property
    def terminal(self) -> bool:
        return self.state not in LIVE_STATES

    def to_wire(self) -> dict:
        """The JSON-safe job shape of the status endpoints."""
        payload = {
            "job_id": self.job_id,
            "state": self.state,
            "budget_kb": self.budget_kb,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_requested,
            "states_explored": self.states_explored,
            "evictions": self.evictions,
        }
        if self.error is not None:
            payload["error"] = self.error.get("error", self.error)
        return payload


class JobStore(SqliteBacked):
    """Durable FIFO job queue shared by the HTTP handlers and the workers.

    All public methods are thread-safe (one connection, one lock) and commit
    before returning.  Job ids are dense (``job-000001``, …) so submission
    order — the admission order — is readable in every listing.
    """

    _DB_ROLE = "service job store"

    _TABLES = (
        """CREATE TABLE IF NOT EXISTS jobs (
            seq INTEGER PRIMARY KEY AUTOINCREMENT,
            job_id TEXT UNIQUE NOT NULL,
            state TEXT NOT NULL,
            request TEXT NOT NULL,
            budget_kb INTEGER NOT NULL,
            submitted_at REAL NOT NULL,
            started_at REAL,
            finished_at REAL,
            result TEXT,
            error TEXT,
            error_status INTEGER,
            cancel_requested INTEGER NOT NULL DEFAULT 0,
            states_explored INTEGER NOT NULL DEFAULT 0,
            evictions INTEGER NOT NULL DEFAULT 0
        )""",
        "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)",
    )
    _INDEXES = (
        "CREATE INDEX IF NOT EXISTS jobs_state ON jobs(state, seq)",
    )

    def __init__(self, path) -> None:
        self._lock = threading.Lock()
        self._open_sqlite(path, check_same_thread=False)
        with self._lock:
            if self._get_meta("role") is None:
                self._set_meta("role", "service-jobs")
                self._conn.commit()

    # ------------------------------------------------------------------ #
    # lifecycle transitions
    # ------------------------------------------------------------------ #

    def submit(self, request_wire: dict, budget_kb: int) -> JobRecord:
        """Durably enqueue a request; returns the queued record."""
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO jobs (job_id, state, request, budget_kb, submitted_at)"
                " VALUES (?, 'queued', ?, ?, ?)",
                ("pending", json.dumps(request_wire), budget_kb, time.time()),
            )
            job_id = f"job-{cursor.lastrowid:06d}"
            self._conn.execute(
                "UPDATE jobs SET job_id = ? WHERE seq = ?", (job_id, cursor.lastrowid)
            )
            self._conn.commit()
            return self._get_locked(job_id)

    def claim_next(self) -> Optional[JobRecord]:
        """Claim the head-of-line queued job (oldest first), marking it running.

        Head-of-line semantics keep admission reasoning simple: the caller
        checks *the one oldest* queued job against the remaining capacity, so
        a large job at the head is never overtaken by smaller later ones.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT job_id FROM jobs WHERE state = 'queued' ORDER BY seq LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ? WHERE job_id = ?",
                (time.time(), row[0]),
            )
            self._conn.commit()
            return self._get_locked(row[0])

    def head_of_line(self) -> Optional[JobRecord]:
        """Peek the oldest queued job without claiming it."""
        with self._lock:
            row = self._conn.execute(
                "SELECT job_id FROM jobs WHERE state = 'queued' ORDER BY seq LIMIT 1"
            ).fetchone()
            return self._get_locked(row[0]) if row else None

    def finish(self, job_id: str, result_wire: dict) -> None:
        self._terminal(job_id, "done", result=json.dumps(result_wire))

    def fail(self, job_id: str, error_wire: dict, status: int) -> None:
        self._terminal(job_id, "failed", error=json.dumps(error_wire), error_status=status)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: immediately when queued, cooperatively when running.

        A running job's worker observes ``cancel_requested`` at its next
        slice boundary and moves the job to ``cancelled`` itself; terminal
        jobs are left untouched (cancel is idempotent).
        """
        with self._lock:
            record = self._get_locked(job_id)
            if record.state == "queued":
                self._conn.execute(
                    "UPDATE jobs SET state = 'cancelled', cancel_requested = 1,"
                    " finished_at = ? WHERE job_id = ?",
                    (time.time(), job_id),
                )
            elif record.state == "running":
                self._conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE job_id = ?", (job_id,)
                )
            self._conn.commit()
            return self._get_locked(job_id)

    def mark_cancelled(self, job_id: str) -> None:
        self._terminal(job_id, "cancelled")

    def requeue(self, job_id: str, evicted: bool = False) -> None:
        """Put a running job back in the queue (eviction or crash recovery)."""
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = 'queued', started_at = NULL,"
                " evictions = evictions + ? WHERE job_id = ? AND state = 'running'",
                (1 if evicted else 0, job_id),
            )
            self._conn.commit()

    def recover(self) -> int:
        """Re-queue every job a dead server left ``running``; returns count.

        Their next slices run with ``resume`` against the engine-store
        checkpoints already on disk, so recovered jobs converge to the same
        answer a never-killed run produces.
        """
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = 'queued', started_at = NULL"
                " WHERE state = 'running'"
            )
            self._conn.commit()
            return cursor.rowcount

    def update_progress(self, job_id: str, states_explored: int) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET states_explored = ? WHERE job_id = ?",
                (states_explored, job_id),
            )
            self._conn.commit()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._get_locked(job_id)

    def jobs(self, state: Optional[str] = None) -> "list[JobRecord]":
        with self._lock:
            if state is None:
                rows = self._conn.execute(
                    "SELECT job_id FROM jobs ORDER BY seq"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT job_id FROM jobs WHERE state = ? ORDER BY seq", (state,)
                ).fetchall()
            return [self._get_locked(row[0]) for row in rows]

    def counts(self) -> dict:
        """``{state: count}`` over all known jobs (zero-filled)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        counts.update({state: count for state, count in rows})
        return counts

    def admitted_budget_kb(self) -> int:
        """Sum of declared budgets over currently running (admitted) jobs."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(budget_kb), 0) FROM jobs WHERE state = 'running'"
            ).fetchone()
            return int(row[0])

    def queue_length(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
            ).fetchone()
            return int(row[0])

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------ #
    # internals (caller holds the lock)
    # ------------------------------------------------------------------ #

    def _terminal(self, job_id: str, state: str, result=None, error=None, error_status=None) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, result = ?,"
                " error = ?, error_status = ? WHERE job_id = ?",
                (state, time.time(), result, error, error_status, job_id),
            )
            self._conn.commit()

    def _get_locked(self, job_id: str) -> JobRecord:
        row = self._conn.execute(
            "SELECT job_id, state, request, budget_kb, submitted_at, started_at,"
            " finished_at, result, error, error_status, cancel_requested,"
            " states_explored, evictions FROM jobs WHERE job_id = ?",
            (job_id,),
        ).fetchone()
        if row is None:
            raise UnknownJobError(f"no job named {job_id!r}")
        return JobRecord(
            job_id=row[0],
            state=row[1],
            request=json.loads(row[2]),
            budget_kb=row[3],
            submitted_at=row[4],
            started_at=row[5],
            finished_at=row[6],
            result=json.loads(row[7]) if row[7] else None,
            error=json.loads(row[8]) if row[8] else None,
            error_status=row[9],
            cancel_requested=bool(row[10]),
            states_explored=row[11],
            evictions=row[12],
        )
