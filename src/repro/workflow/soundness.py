"""Workflow correctness notions on labelled transition systems.

Footnote 1 of the paper explains that *semi-soundness* is a weakening of the
classical soundness of workflow nets [van der Aalst]: soundness additionally
requires every transition to occur in at least one possible run.  On an
explicit LTS both notions (plus a few standard diagnostics) are simple graph
computations, which this module provides:

* semi-soundness — every reachable state can reach an accepting state;
* soundness — semi-soundness plus "no dead transitions" (every action labels
  some transition on a path from the initial state that can still complete);
* deadlock states, unreachable states, dead transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workflow.lts import LabelledTransitionSystem, Transition


@dataclass
class WorkflowDiagnostics:
    """The full diagnostic report of :func:`analyse_workflow`."""

    semi_sound: bool
    sound: bool
    reachable_states: int
    accepting_reachable: int
    stuck_states: list = field(default_factory=list)
    deadlock_states: list = field(default_factory=list)
    dead_transitions: list = field(default_factory=list)
    unreachable_states: list = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"semi-sound={self.semi_sound}",
            f"sound={self.sound}",
            f"reachable={self.reachable_states}",
            f"accepting={self.accepting_reachable}",
        ]
        if self.stuck_states:
            parts.append(f"stuck={len(self.stuck_states)}")
        if self.dead_transitions:
            parts.append(f"dead transitions={len(self.dead_transitions)}")
        return ", ".join(parts)


def is_semi_sound(lts: LabelledTransitionSystem) -> bool:
    """Every reachable state can still reach an accepting state."""
    reachable = lts.reachable()
    can_complete = lts.backward_reachable(lts.accepting & lts.states)
    return reachable <= can_complete


def dead_transitions(lts: LabelledTransitionSystem) -> list[Transition]:
    """Transitions that never occur in any run that can still complete.

    A transition is *live* when its source is reachable and its target can
    still reach an accepting state; everything else is dead.  (For
    semi-sound systems this coincides with "the transition occurs in at least
    one complete run", the extra requirement classical soundness adds.)
    """
    reachable = lts.reachable()
    can_complete = lts.backward_reachable(lts.accepting & lts.states)
    dead = []
    for transition in lts.transitions:
        if transition.source not in reachable or transition.target not in can_complete:
            dead.append(transition)
    return dead


def is_sound(lts: LabelledTransitionSystem) -> bool:
    """Semi-soundness plus absence of dead transitions (footnote 1 / [9])."""
    return is_semi_sound(lts) and not dead_transitions(lts)


def stuck_states(lts: LabelledTransitionSystem) -> list:
    """Reachable states from which no accepting state is reachable."""
    reachable = lts.reachable()
    can_complete = lts.backward_reachable(lts.accepting & lts.states)
    return sorted((state for state in reachable - can_complete), key=repr)


def analyse_workflow(lts: LabelledTransitionSystem) -> WorkflowDiagnostics:
    """Compute the full diagnostic report for an extracted workflow."""
    reachable = lts.reachable()
    can_complete = lts.backward_reachable(lts.accepting & lts.states)
    stuck = sorted((state for state in reachable - can_complete), key=repr)
    dead = dead_transitions(lts)
    return WorkflowDiagnostics(
        semi_sound=not stuck,
        sound=not stuck and not dead,
        reachable_states=len(reachable),
        accepting_reachable=len(reachable & lts.accepting),
        stuck_states=stuck,
        deadlock_states=sorted(lts.deadlock_states(), key=repr),
        dead_transitions=dead,
        unreachable_states=sorted((state for state in lts.states - reachable), key=repr),
    )
