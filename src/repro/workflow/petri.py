"""A small place/transition net substrate and workflow nets.

The paper's notion of semi-soundness is introduced (footnote 1) as a weaker
version of the classical soundness of *workflow nets* [van der Aalst 1998].
To make that connection concrete the library ships a minimal Petri-net
implementation:

* :class:`PetriNet` — places, transitions, arcs, markings, firing, and a
  bounded reachability-graph construction;
* :class:`WorkflowNet` — a net with a dedicated source and sink place and the
  classical soundness check (option to complete + proper completion + no dead
  transitions), evaluated on the reachability graph;
* :func:`depth1_form_to_workflow_net` — a translation of depth-1 guarded
  forms whose rules are conjunctions of presence/absence literals into an
  equivalent workflow net, used by the examples to compare the paper's
  analysis with the classical one.

The net machinery is self-contained (it does not depend on the guarded-form
model) so it can also be used as a plain workflow-net library.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import AnalysisError
from repro.workflow.lts import LabelledTransitionSystem

#: A marking: multiset of tokens per place.
Marking = tuple


@dataclass(frozen=True)
class NetTransition:
    """A Petri-net transition with input and output places."""

    name: str
    inputs: frozenset
    outputs: frozenset


class PetriNet:
    """A place/transition net with unit arc weights."""

    def __init__(self, places: Iterable[str]) -> None:
        self.places: tuple[str, ...] = tuple(dict.fromkeys(places))
        self._index = {place: i for i, place in enumerate(self.places)}
        self.transitions: list[NetTransition] = []

    def add_transition(self, name: str, inputs: Iterable[str], outputs: Iterable[str]) -> NetTransition:
        """Add a transition consuming one token from each input place and
        producing one token on each output place."""
        for place in list(inputs) + list(outputs):
            if place not in self._index:
                raise AnalysisError(f"unknown place {place!r}")
        transition = NetTransition(name, frozenset(inputs), frozenset(outputs))
        self.transitions.append(transition)
        return transition

    # ------------------------------------------------------------------ #
    # markings and firing
    # ------------------------------------------------------------------ #

    def marking(self, tokens: Mapping[str, int]) -> Marking:
        """Build a marking from a place→token-count mapping."""
        counts = [0] * len(self.places)
        for place, count in tokens.items():
            counts[self._index[place]] = count
        return tuple(counts)

    def tokens(self, marking: Marking, place: str) -> int:
        """Number of tokens on *place* in *marking*."""
        return marking[self._index[place]]

    def enabled(self, marking: Marking) -> list[NetTransition]:
        """Transitions enabled in *marking*."""
        return [
            transition
            for transition in self.transitions
            if all(marking[self._index[place]] > 0 for place in transition.inputs)
        ]

    def fire(self, marking: Marking, transition: NetTransition) -> Marking:
        """Fire *transition* in *marking* and return the successor marking."""
        if transition not in self.enabled(marking):
            raise AnalysisError(f"transition {transition.name!r} is not enabled")
        counts = list(marking)
        for place in transition.inputs:
            counts[self._index[place]] -= 1
        for place in transition.outputs:
            counts[self._index[place]] += 1
        return tuple(counts)

    def reachability_graph(
        self, initial: Marking, max_markings: int = 50_000
    ) -> LabelledTransitionSystem:
        """The reachability graph as an LTS (bounded by *max_markings*).

        Raises:
            AnalysisError: when the bound is exceeded (the net is unbounded or
                too large for explicit exploration).
        """
        lts = LabelledTransitionSystem(initial=initial)
        frontier = deque([initial])
        seen = {initial}
        while frontier:
            marking = frontier.popleft()
            for transition in self.enabled(marking):
                successor = self.fire(marking, transition)
                lts.add_transition(marking, transition.name, successor)
                if successor not in seen:
                    if len(seen) >= max_markings:
                        raise AnalysisError(
                            "reachability graph exceeds the configured bound"
                        )
                    seen.add(successor)
                    frontier.append(successor)
        return lts


class WorkflowNet(PetriNet):
    """A workflow net: a Petri net with a source place ``i`` and sink place ``o``.

    Classical soundness [9] requires that from the initial marking (one token
    on ``i``):

    1. *option to complete* — the final marking (one token on ``o``) is
       reachable from every reachable marking;
    2. *proper completion* — whenever ``o`` is marked, it is the only marked
       place;
    3. *no dead transitions* — every transition is enabled in some reachable
       marking.
    """

    def __init__(self, places: Iterable[str], source: str = "i", sink: str = "o") -> None:
        all_places = list(places)
        for special in (source, sink):
            if special not in all_places:
                all_places.append(special)
        super().__init__(all_places)
        self.source = source
        self.sink = sink

    def initial_marking(self) -> Marking:
        """One token on the source place."""
        return self.marking({self.source: 1})

    def final_marking(self) -> Marking:
        """One token on the sink place."""
        return self.marking({self.sink: 1})

    def soundness_report(self, max_markings: int = 50_000) -> dict:
        """Evaluate the three classical soundness conditions.

        Returns a dict with keys ``option_to_complete``, ``proper_completion``,
        ``no_dead_transitions`` and ``sound``.
        """
        graph = self.reachability_graph(self.initial_marking(), max_markings)
        final = self.final_marking()
        reachable = graph.reachable()
        to_final = graph.backward_reachable({final} if final in graph.states else set())
        option_to_complete = final in graph.states and reachable <= to_final

        sink_index = self._index[self.sink]
        proper_completion = all(
            sum(marking) == marking[sink_index]
            for marking in reachable
            if marking[sink_index] > 0
        )

        fired = {transition.action for transition in graph.transitions}
        no_dead_transitions = fired >= {t.name for t in self.transitions}

        return {
            "option_to_complete": option_to_complete,
            "proper_completion": proper_completion,
            "no_dead_transitions": no_dead_transitions,
            "sound": option_to_complete and proper_completion and no_dead_transitions,
        }

    def is_sound(self, max_markings: int = 50_000) -> bool:
        """Classical soundness of the workflow net."""
        return self.soundness_report(max_markings)["sound"]


def depth1_form_to_workflow_net(guarded_form) -> WorkflowNet:
    """Translate a depth-1 guarded form into a workflow net over its canonical
    states.

    Every reachable canonical state becomes a place; every allowed update
    becomes a transition moving the single token between the corresponding
    places; an extra ``complete`` transition moves the token from each
    completion state to the sink.  The resulting net is a state-machine-shaped
    workflow net whose *option to complete* condition coincides with the
    paper's semi-soundness of the guarded form (proper completion holds
    trivially because there is a single token; classical soundness adds the
    no-dead-transition requirement on top) — the relationship footnote 1 of
    the paper describes, demonstrated by the examples.
    """
    from repro.analysis.statespace import explore_depth1

    graph = explore_depth1(guarded_form)
    state_names = {state: "p_" + ("_".join(sorted(state)) or "empty") for state in graph.states}
    net = WorkflowNet(state_names.values())
    net.add_transition("start", [net.source], [state_names[graph.initial]])
    seen_actions: set[str] = set()
    for state, transitions in graph.transitions.items():
        for index, transition in enumerate(transitions):
            name = f"{transition.kind}_{transition.label}_from_{state_names[state]}_{index}"
            if name in seen_actions:
                continue
            seen_actions.add(name)
            net.add_transition(
                name, [state_names[state]], [state_names[transition.target]]
            )
    for state in graph.satisfying_states(guarded_form.is_complete):
        net.add_transition(
            f"complete_{state_names[state]}", [state_names[state]], [net.sink]
        )
    return net
