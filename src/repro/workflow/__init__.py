"""Workflow views of guarded forms.

The paper's central observation is that instance-dependent access rules imply
a workflow: the states are the (canonical) instances and the transitions the
allowed updates.  This package makes that workflow explicit:

* :mod:`repro.workflow.lts` — labelled transition systems and analyses on
  them (reachability, deadlocks, traces);
* :mod:`repro.workflow.extraction` — extracting the LTS implied by a guarded
  form;
* :mod:`repro.workflow.soundness` — semi-soundness, soundness and
  dead-transition analysis phrased on LTSs (footnote 1 relates the paper's
  semi-soundness to the classical soundness of workflow nets);
* :mod:`repro.workflow.petri` — a small place/transition-net substrate with
  classical workflow-net soundness checking, used to relate the two notions.
"""

from repro.workflow.extraction import extract_workflow
from repro.workflow.lts import LabelledTransitionSystem, Transition
from repro.workflow.petri import PetriNet, WorkflowNet
from repro.workflow.soundness import (
    WorkflowDiagnostics,
    analyse_workflow,
    dead_transitions,
    is_semi_sound,
    is_sound,
)

__all__ = [
    "LabelledTransitionSystem",
    "Transition",
    "extract_workflow",
    "PetriNet",
    "WorkflowNet",
    "WorkflowDiagnostics",
    "analyse_workflow",
    "dead_transitions",
    "is_semi_sound",
    "is_sound",
]
