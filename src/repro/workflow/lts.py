"""Labelled transition systems (the explicit form of an implied workflow).

An LTS has named states, labelled transitions, an initial state and a set of
accepting ("complete") states.  The workflow implied by a guarded form is
extracted into this representation by :mod:`repro.workflow.extraction`; the
correctness notions of :mod:`repro.workflow.soundness` are then ordinary
graph computations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Optional

from repro.exceptions import AnalysisError

StateId = Hashable


@dataclass(frozen=True)
class Transition:
    """A labelled transition ``source --action--> target``."""

    source: StateId
    action: str
    target: StateId


@dataclass
class LabelledTransitionSystem:
    """A finite labelled transition system.

    Attributes:
        initial: the initial state.
        states: all states (automatically extended by :meth:`add_transition`).
        transitions: the transition list.
        accepting: the accepting / complete states.
        state_annotations: optional per-state payloads (e.g. the instance a
            state represents), kept out of equality comparisons.
    """

    initial: StateId
    states: set = field(default_factory=set)
    transitions: list[Transition] = field(default_factory=list)
    accepting: set = field(default_factory=set)
    state_annotations: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.states.add(self.initial)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_state(self, state: StateId, accepting: bool = False, annotation: object = None) -> None:
        """Add a state (idempotent)."""
        self.states.add(state)
        if accepting:
            self.accepting.add(state)
        if annotation is not None:
            self.state_annotations[state] = annotation

    def add_transition(self, source: StateId, action: str, target: StateId) -> Transition:
        """Add a transition, creating missing states."""
        self.states.add(source)
        self.states.add(target)
        transition = Transition(source, action, target)
        self.transitions.append(transition)
        return transition

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    def successors(self, state: StateId) -> list[Transition]:
        """Outgoing transitions of *state*."""
        return [t for t in self.transitions if t.source == state]

    def predecessors(self, state: StateId) -> list[Transition]:
        """Incoming transitions of *state*."""
        return [t for t in self.transitions if t.target == state]

    def actions(self) -> set:
        """The set of action labels."""
        return {t.action for t in self.transitions}

    def reachable(self, start: Optional[StateId] = None) -> set:
        """States reachable from *start* (default: the initial state)."""
        origin = self.initial if start is None else start
        adjacency = self._adjacency()
        seen = {origin}
        frontier = deque([origin])
        while frontier:
            state = frontier.popleft()
            for target in adjacency.get(state, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def backward_reachable(self, targets: Iterable[StateId]) -> set:
        """States from which some state in *targets* is reachable."""
        reverse: dict[StateId, set] = {}
        for transition in self.transitions:
            reverse.setdefault(transition.target, set()).add(transition.source)
        closure = set(targets)
        frontier = deque(closure)
        while frontier:
            state = frontier.popleft()
            for source in reverse.get(state, ()):
                if source not in closure:
                    closure.add(source)
                    frontier.append(source)
        return closure

    def deadlock_states(self) -> set:
        """Reachable states without outgoing transitions that are not accepting."""
        outgoing = {t.source for t in self.transitions}
        return {
            state
            for state in self.reachable()
            if state not in outgoing and state not in self.accepting
        }

    def path_to(self, target: StateId) -> Optional[list[Transition]]:
        """A shortest path (as transitions) from the initial state to *target*."""
        if target == self.initial:
            return []
        parents: dict[StateId, Transition] = {}
        seen = {self.initial}
        frontier = deque([self.initial])
        while frontier:
            state = frontier.popleft()
            for transition in self.successors(state):
                if transition.target in seen:
                    continue
                seen.add(transition.target)
                parents[transition.target] = transition
                if transition.target == target:
                    path = []
                    current = target
                    while current != self.initial:
                        step = parents[current]
                        path.append(step)
                        current = step.source
                    path.reverse()
                    return path
                frontier.append(transition.target)
        return None

    def trace_to(self, target: StateId) -> Optional[list[str]]:
        """The action sequence of :meth:`path_to`."""
        path = self.path_to(target)
        if path is None:
            return None
        return [transition.action for transition in path]

    def iter_traces(self, max_length: int) -> Iterator[list[str]]:
        """Enumerate action traces from the initial state up to *max_length*
        transitions (may repeat states; intended for small systems/tests)."""
        frontier: deque[tuple[StateId, list[str]]] = deque([(self.initial, [])])
        while frontier:
            state, trace = frontier.popleft()
            yield trace
            if len(trace) >= max_length:
                continue
            for transition in self.successors(state):
                frontier.append((transition.target, trace + [transition.action]))

    def __len__(self) -> int:
        return len(self.states)

    def _adjacency(self) -> dict:
        adjacency: dict[StateId, set] = {}
        for transition in self.transitions:
            adjacency.setdefault(transition.source, set()).add(transition.target)
        return adjacency

    def validate(self) -> None:
        """Check internal consistency (accepting ⊆ states, transitions between
        known states)."""
        if not self.accepting <= self.states:
            raise AnalysisError("accepting states must be states of the LTS")
        for transition in self.transitions:
            if transition.source not in self.states or transition.target not in self.states:
                raise AnalysisError("transition endpoints must be states of the LTS")
