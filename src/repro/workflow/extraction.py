"""Extracting the workflow implied by a guarded form.

The access rules of a guarded form induce a transition system over instances
(Section 3.4 / Definition 3.11).  :func:`extract_workflow` materialises it as
a :class:`~repro.workflow.lts.LabelledTransitionSystem`:

* for depth-1 forms the states are the reachable canonical instances (label
  sets), which by Lemma 4.3 is an exact representation of the workflow;
* for deeper forms the states are isomorphism classes of reachable instances
  explored up to the supplied limits, mirroring
  :func:`repro.analysis.statespace.explore_bounded`.

State names are human-readable (sorted field lists for depth-1 forms, a
numbered ``s<i>`` plus the field multiset otherwise) so the extracted LTS can
be rendered directly with :mod:`repro.io.dot`.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.results import ExplorationLimits
from repro.analysis.statespace import explore_bounded, explore_depth1
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.schema import format_schema_path
from repro.workflow.lts import LabelledTransitionSystem


def extract_workflow(
    guarded_form: GuardedForm,
    start: Optional[Instance] = None,
    limits: Optional[ExplorationLimits] = None,
) -> LabelledTransitionSystem:
    """Build the labelled transition system implied by *guarded_form*.

    Accepting states are those whose instance satisfies the completion
    formula.  For non-depth-1 forms the system may be a truncated
    under-approximation; the ``truncated`` key of the returned system's
    ``state_annotations["__meta__"]`` records whether that happened.
    """
    if guarded_form.schema_depth() <= 1:
        return _extract_depth1(guarded_form, start)
    return _extract_bounded(guarded_form, start, limits)


def _depth1_state_name(state: frozenset) -> str:
    return "{" + ", ".join(sorted(state)) + "}" if state else "{}"


def _extract_depth1(guarded_form: GuardedForm, start: Optional[Instance]) -> LabelledTransitionSystem:
    graph = explore_depth1(guarded_form, start=start)
    lts = LabelledTransitionSystem(initial=_depth1_state_name(graph.initial))
    complete = graph.satisfying_states(guarded_form.is_complete)
    for state in graph.states:
        lts.add_state(
            _depth1_state_name(state),
            accepting=state in complete,
            annotation=state,
        )
    for state, transitions in graph.transitions.items():
        for transition in transitions:
            action = f"{'add' if transition.kind == 'add' else 'delete'} {transition.label}"
            lts.add_transition(
                _depth1_state_name(state), action, _depth1_state_name(transition.target)
            )
    lts.state_annotations["__meta__"] = {"truncated": False, "representation": "canonical"}
    return lts


def _extract_bounded(
    guarded_form: GuardedForm,
    start: Optional[Instance],
    limits: Optional[ExplorationLimits],
) -> LabelledTransitionSystem:
    graph = explore_bounded(guarded_form, start=start, limits=limits)
    names: dict = {}
    for index, key in enumerate(sorted(graph.representatives, key=repr)):
        instance = graph.representatives[key]
        fields = sorted(
            format_schema_path(node.label_path())
            for node in instance.nodes()
            if not node.is_root()
        )
        names[key] = f"s{index}:" + ("{" + ", ".join(fields) + "}" if fields else "{}")

    lts = LabelledTransitionSystem(initial=names[graph.initial_key])
    for key, instance in graph.iter_states():
        lts.add_state(
            names[key],
            accepting=guarded_form.is_complete(instance),
            annotation=instance,
        )
    for key, edges in graph.transitions.items():
        source_instance = graph.representatives[key]
        for update, target_key in edges:
            if target_key not in names:
                continue
            lts.add_transition(names[key], update.describe(source_instance), names[target_key])
    lts.state_annotations["__meta__"] = {
        "truncated": graph.truncated,
        "representation": "isomorphism",
    }
    return lts
