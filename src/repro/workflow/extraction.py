"""Extracting the workflow implied by a guarded form.

The access rules of a guarded form induce a transition system over instances
(Section 3.4 / Definition 3.11).  :func:`extract_workflow` materialises it as
a :class:`~repro.workflow.lts.LabelledTransitionSystem`:

* for depth-1 forms the states are the reachable canonical instances (label
  sets), which by Lemma 4.3 is an exact representation of the workflow;
* for deeper forms the states are isomorphism classes of reachable instances
  explored up to the supplied limits.

Both extractions run on the unified
:class:`~repro.engine.ExplorationEngine`; passing the engine used by a prior
analysis of the same form reuses its interned shapes, memoized expansions and
guard evaluations, so extracting the workflow after an ``analyze`` pass is
almost free.

State names are human-readable (sorted field lists for depth-1 forms, a
numbered ``s<i>`` plus the field multiset otherwise) so the extracted LTS can
be rendered directly with :mod:`repro.io.dot`.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.completability import delegate_to_request
from repro.analysis.results import ExplorationLimits
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.schema import format_schema_path
from repro.engine import ExplorationEngine, StateStore, engine_for
from repro.exceptions import RequestError
from repro.workflow.lts import LabelledTransitionSystem


def extract_workflow(
    guarded_form: Optional[GuardedForm] = None,
    start: Optional[Instance] = None,
    limits: Optional[ExplorationLimits] = None,
    frontier: Optional[str] = None,
    engine: Optional[ExplorationEngine] = None,
    store: Optional[StateStore] = None,
    resume: bool = False,
    workers: int = 1,
    resident_budget: Optional[int] = None,
    step_limit: Optional[int] = None,
    request=None,
):
    """Build the labelled transition system implied by *guarded_form*.

    Accepting states are those whose instance satisfies the completion
    formula.  For non-depth-1 forms the system may be a truncated
    under-approximation; the ``truncated`` key of the returned system's
    ``state_annotations["__meta__"]`` records whether that happened.

    A persistent *store* backs the exploration (interned shapes, guard
    values, checkpoints); *resume* continues an interrupted bounded
    extraction from its checkpoint.  ``workers > 1`` runs the bounded
    exploration on a frontier worker pool
    (:mod:`repro.engine.parallel`); the extracted system is identical.

    Alternatively pass a single ``request`` of kind ``"workflow"``; the call
    then delegates to :func:`repro.service.dispatch.run_analysis` and returns
    its :class:`~repro.analysis.results.AnalysisResult` (the extracted system
    rides in ``stats["lts"]`` as its wire dict).
    """
    if request is not None:
        return delegate_to_request("extract_workflow", "workflow", request, guarded_form)
    if guarded_form is None:
        raise RequestError("extract_workflow needs a guarded form or request=")
    owns_engine = engine is None
    engine = engine_for(
        guarded_form, engine, frontier, store=store, workers=workers,
        resident_budget=resident_budget,
    )
    try:
        if guarded_form.schema_depth() <= 1:
            return _extract_depth1(engine, guarded_form, start, frontier)
        return _extract_bounded(
            engine, guarded_form, start, limits, frontier, resume, step_limit
        )
    finally:
        if owns_engine:
            engine.shutdown_workers()


def _depth1_state_name(state: frozenset) -> str:
    return "{" + ", ".join(sorted(state)) + "}" if state else "{}"


def _extract_depth1(
    engine: ExplorationEngine,
    guarded_form: GuardedForm,
    start: Optional[Instance],
    frontier: Optional[str],
) -> LabelledTransitionSystem:
    graph = engine.explore_depth1(start=start, strategy=frontier)
    lts = LabelledTransitionSystem(initial=_depth1_state_name(graph.initial))
    complete = engine.complete_depth1_states(graph)
    for state in graph.states:
        lts.add_state(
            _depth1_state_name(state),
            accepting=state in complete,
            annotation=state,
        )
    for state, transitions in graph.transitions.items():
        for transition in transitions:
            action = f"{'add' if transition.kind == 'add' else 'delete'} {transition.label}"
            lts.add_transition(
                _depth1_state_name(state), action, _depth1_state_name(transition.target)
            )
    lts.state_annotations["__meta__"] = {"truncated": False, "representation": "canonical"}
    return lts


def _extract_bounded(
    engine: ExplorationEngine,
    guarded_form: GuardedForm,
    start: Optional[Instance],
    limits: Optional[ExplorationLimits],
    frontier: Optional[str],
    resume: bool = False,
    step_limit: Optional[int] = None,
) -> LabelledTransitionSystem:
    graph = engine.explore(
        start=start, limits=limits, strategy=frontier, resume=resume,
        step_limit=step_limit,
    )
    names: dict = {}
    for index, state_id in enumerate(
        sorted(graph.states, key=lambda state_id: repr(graph.shape_of(state_id)))
    ):
        instance = graph.representative(state_id)
        fields = sorted(
            format_schema_path(node.label_path())
            for node in instance.nodes()
            if not node.is_root()
        )
        names[state_id] = f"s{index}:" + ("{" + ", ".join(fields) + "}" if fields else "{}")

    complete = engine.complete_ids(graph)
    lts = LabelledTransitionSystem(initial=names[graph.initial_id])
    for state_id, instance in graph.iter_states():
        lts.add_state(
            names[state_id],
            accepting=state_id in complete,
            annotation=instance,
        )
    for state_id, edges in graph.transitions.items():
        source_instance = graph.representative(state_id)
        for update, target_id in edges:
            if target_id not in names:
                continue
            lts.add_transition(names[state_id], update.describe(source_instance), names[target_id])
    lts.state_annotations["__meta__"] = {
        "truncated": graph.truncated,
        "representation": "isomorphism",
    }
    return lts
