"""Filesystem KV backend: one file per entry, shared by atomic rename.

Two pods on one host point at the same directory and share entries with no
daemon and no lock: writes go to a temp file in the same directory and are
published with :func:`os.replace`, so a reader either sees the whole entry
or the previous one — never a torn write.  Each entry file embeds its own
key (keys are hashed into filenames, so the name alone cannot recover
them), which is what lets :meth:`scan` enumerate a namespace.
"""

from __future__ import annotations

import hashlib
import os
import struct
import time
import uuid
from pathlib import Path
from typing import Iterator, Optional

from repro.cache.kv import KVCache

#: Entry file magic + layout version. Layout after the magic: an 8-byte
#: big-endian float expiry (NaN = no expiry), a 4-byte big-endian key
#: length, the key bytes, then the value bytes to EOF.
_MAGIC = b"RKV1"

_NO_EXPIRY = float("nan")


class DirKV(KVCache):
    """A one-file-per-key directory cache (no daemon, cross-process)."""

    backend = "dir"

    def __init__(self, path: "str | Path", clock=time.time) -> None:
        super().__init__(clock=clock)
        self.root = Path(path)
        self.root.mkdir(parents=True, exist_ok=True)
        self.spec = f"dir://{self.root}"

    def _entry_path(self, namespace: str, key: bytes) -> Path:
        return self.root / namespace / hashlib.sha256(key).hexdigest()

    @staticmethod
    def _parse(blob: bytes) -> Optional[tuple[bytes, bytes, Optional[float]]]:
        """``(key, value, expires_at)`` from an entry file, or ``None``."""
        if len(blob) < 16 or not blob.startswith(_MAGIC):
            return None
        (expiry,) = struct.unpack(">d", blob[4:12])
        (key_len,) = struct.unpack(">I", blob[12:16])
        if len(blob) < 16 + key_len:
            return None
        key = blob[16 : 16 + key_len]
        value = blob[16 + key_len :]
        return key, value, None if expiry != expiry else expiry

    def _read(self, path: Path) -> Optional[tuple[bytes, bytes, Optional[float]]]:
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        return self._parse(blob)

    def _get_entry(self, namespace: str, key: bytes) -> Optional[tuple[bytes, Optional[float]]]:
        entry = self._read(self._entry_path(namespace, key))
        if entry is None or entry[0] != key:
            return None
        return entry[1], entry[2]

    def _put_entry(
        self, namespace: str, key: bytes, value: bytes, expires_at: Optional[float]
    ) -> None:
        path = self._entry_path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        expiry = _NO_EXPIRY if expires_at is None else expires_at
        blob = _MAGIC + struct.pack(">d", expiry) + struct.pack(">I", len(key)) + key + value
        tmp = path.parent / f".{path.name}.{uuid.uuid4().hex}.tmp"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError:
            # a full disk or a concurrently removed directory must not take
            # down the computation the cache is merely observing
            try:
                tmp.unlink()
            except OSError:
                pass

    def _drop_entry(self, namespace: str, key: bytes) -> bool:
        try:
            self._entry_path(namespace, key).unlink()
            return True
        except OSError:
            return False

    def _scan_entries(self, namespace: str) -> Iterator[tuple[bytes, bytes, Optional[float]]]:
        ns_dir = self.root / namespace
        try:
            names = os.listdir(ns_dir)
        except OSError:
            return
        for name in names:
            if name.startswith("."):
                continue  # in-flight temp files
            entry = self._read(ns_dir / name)
            if entry is not None:
                yield entry
