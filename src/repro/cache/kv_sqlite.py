"""Sqlite KV backend: one WAL database shared by processes on a host.

Reuses the engine's :class:`~repro.engine.sqlite_base.SqliteBacked` plumbing
(standard pragmas, ``meta`` identity table) and its write discipline: puts
buffer in memory and commit in batches, so the exploration hot path never
pays a per-row transaction.  Reads check the buffer first, so a writer sees
its own unflushed entries; other processes see entries at batch boundaries —
the same visibility contract as the state store's WAL sync.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.cache.kv import KVCache
from repro.engine.sqlite_base import SqliteBacked

#: Version stamp written to cache metadata; bumped on layout changes.
CACHE_SCHEMA_VERSION = "1"


class SqliteKV(SqliteBacked, KVCache):
    """A sqlite3-backed :class:`KVCache` (WAL, batch-committed, thread-safe).

    The connection is shared across threads behind a lock (the pod server's
    job workers all talk to one cache instance), and across processes
    through WAL — two pods on one host pointing ``--cache`` at the same
    file share entries with no daemon.
    """

    backend = "sqlite"

    _DB_ROLE = "sqlite kv cache"

    _TABLES = (
        "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)",
        "CREATE TABLE IF NOT EXISTS entries ("
        "namespace TEXT NOT NULL, key BLOB NOT NULL, value BLOB NOT NULL, "
        "expires_at REAL, PRIMARY KEY (namespace, key))",
    )

    def __init__(
        self, path: "str | Path", batch_size: int = 256, clock=time.time
    ) -> None:
        KVCache.__init__(self, clock=clock)
        self.batch_size = max(1, batch_size)
        self._lock = threading.RLock()
        self._pending: dict[tuple[str, bytes], tuple[bytes, Optional[float]]] = {}
        self.flushes = 0
        self._open_sqlite(path, check_same_thread=False)
        version = self._get_meta("cache_schema_version")
        if version is None:
            self._set_meta("cache_schema_version", CACHE_SCHEMA_VERSION)
            self._conn.commit()
        self.spec = f"sqlite://{self.path}"

    # -- entry primitives ----------------------------------------------- #

    def _get_entry(self, namespace: str, key: bytes) -> Optional[tuple[bytes, Optional[float]]]:
        with self._lock:
            pending = self._pending.get((namespace, key))
            if pending is not None:
                return pending
            row = self._conn.execute(
                "SELECT value, expires_at FROM entries WHERE namespace = ? AND key = ?",
                (namespace, key),
            ).fetchone()
        if row is None:
            return None
        return bytes(row[0]), row[1]

    def _put_entry(
        self, namespace: str, key: bytes, value: bytes, expires_at: Optional[float]
    ) -> None:
        with self._lock:
            self._pending[(namespace, key)] = (value, expires_at)
            if len(self._pending) >= self.batch_size:
                self._flush_locked()

    def _drop_entry(self, namespace: str, key: bytes) -> bool:
        with self._lock:
            existed = self._pending.pop((namespace, key), None) is not None
            cursor = self._conn.execute(
                "DELETE FROM entries WHERE namespace = ? AND key = ?", (namespace, key)
            )
            self._conn.commit()
            return existed or cursor.rowcount > 0

    def _scan_entries(self, namespace: str) -> Iterator[tuple[bytes, bytes, Optional[float]]]:
        with self._lock:
            self._flush_locked()
            rows = self._conn.execute(
                "SELECT key, value, expires_at FROM entries WHERE namespace = ?",
                (namespace,),
            ).fetchall()
        for key, value, expires_at in rows:
            yield bytes(key), bytes(value), expires_at

    # -- batching -------------------------------------------------------- #

    def mput(
        self,
        namespace: str,
        items: Iterable[tuple[bytes, bytes]],
        ttl: Optional[float] = None,
    ) -> None:
        # one buffer pass + at most one commit, instead of a put() per row
        expires_at = None if ttl is None else self._clock() + ttl
        counters = self._ns_counters(namespace)
        with self._lock:
            for key, value in items:
                self._pending[(namespace, key)] = (value, expires_at)
                counters["puts"] += 1
            if len(self._pending) >= self.batch_size:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._pending:
            return
        self._conn.executemany(
            "INSERT OR REPLACE INTO entries (namespace, key, value, expires_at) "
            "VALUES (?, ?, ?, ?)",
            [
                (namespace, key, value, expires_at)
                for (namespace, key), (value, expires_at) in self._pending.items()
            ],
        )
        self._conn.commit()
        self._pending.clear()
        self.flushes += 1

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        with self._lock:
            self._flush_locked()
            self._conn.close()
