"""In-process KV backend: one bounded LRU over every namespace."""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Iterator, Optional

from repro.cache.kv import KVCache


class MemoryKV(KVCache):
    """A bounded least-recently-used in-memory cache.

    The bound covers all namespaces together (*capacity* entries), so one
    hot namespace can use the whole budget; evictions are charged to the
    namespace of the entry that fell out.  Process-local by definition —
    ``spec`` stays the portable ``"memory"`` string, but two processes
    opening it get distinct caches.
    """

    backend = "memory"
    spec = "memory"

    def __init__(self, capacity: int = 65536, clock=time.time) -> None:
        super().__init__(clock=clock)
        if capacity < 1:
            raise ValueError("MemoryKV capacity must be positive")
        self.capacity = capacity
        self._items: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def _get_entry(self, namespace: str, key: bytes) -> Optional[tuple[bytes, Optional[float]]]:
        with self._lock:
            entry = self._items.get((namespace, key))
            if entry is not None:
                self._items.move_to_end((namespace, key))
            return entry

    def _put_entry(
        self, namespace: str, key: bytes, value: bytes, expires_at: Optional[float]
    ) -> None:
        with self._lock:
            self._items[(namespace, key)] = (value, expires_at)
            self._items.move_to_end((namespace, key))
            if len(self._items) > self.capacity:
                (evicted_ns, _key), _entry = self._items.popitem(last=False)
                self._ns_counters(evicted_ns)["evictions"] += 1

    def _drop_entry(self, namespace: str, key: bytes) -> bool:
        with self._lock:
            return self._items.pop((namespace, key), None) is not None

    def _scan_entries(self, namespace: str) -> Iterator[tuple[bytes, bytes, Optional[float]]]:
        with self._lock:
            snapshot = list(self._items.items())
        for (entry_ns, key), (value, expires_at) in snapshot:
            if entry_ns == namespace:
                yield key, value, expires_at

    def __len__(self) -> int:
        return len(self._items)
