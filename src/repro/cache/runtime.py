"""Cache resolution: spec strings, ambient defaults, ``REPRO_CACHE``.

Mirrors the telemetry runtime (:mod:`repro.obs.tracing`): callers that were
handed an explicit cache use it; everything else asks :func:`default_cache`,
which resolves the innermost :func:`use_cache` context, then the
``REPRO_CACHE`` environment variable (memoized per process so every layer
shares one backend instance), then "no cache" (``None``).  Worker processes
inherit ``REPRO_CACHE`` through the environment for free; caches opened
from a ``--cache`` flag travel to workers as their ``spec`` string.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Optional

from repro.cache.kv import KVCache
from repro.cache.kv_dir import DirKV
from repro.cache.kv_memory import MemoryKV
from repro.cache.kv_sqlite import SqliteKV
from repro.exceptions import StoreError


def open_kv(spec: str, clock=time.time) -> KVCache:
    """The cache backend for *spec* (the ``--cache DIR|URL`` grammar).

    * ``memory`` — a process-local bounded LRU (:class:`MemoryKV`).
    * ``sqlite://PATH`` — a shared sqlite database (:class:`SqliteKV`).
    * ``dir://PATH`` — a one-file-per-key directory (:class:`DirKV`).
    * a bare path ending in ``.db``/``.sqlite`` — :class:`SqliteKV` on it.
    * any other bare path — a cache *directory*: :class:`SqliteKV` on
      ``PATH/cache.db`` (created on demand), the recommended default for
      sharing between processes on one host.
    """
    spec = spec.strip()
    if not spec:
        raise StoreError("empty cache spec")
    if spec in ("memory", "memory://"):
        return MemoryKV(clock=clock)
    if spec.startswith("sqlite://"):
        return SqliteKV(spec[len("sqlite://") :], clock=clock)
    if spec.startswith("dir://"):
        return DirKV(spec[len("dir://") :], clock=clock)
    if "://" in spec:
        scheme = spec.split("://", 1)[0]
        raise StoreError(
            f"unknown cache backend {scheme!r} in {spec!r} "
            "(expected memory, sqlite://PATH, dir://PATH, or a path)"
        )
    if spec.endswith((".db", ".sqlite")):
        return SqliteKV(spec, clock=clock)
    os.makedirs(spec, exist_ok=True)
    return SqliteKV(os.path.join(spec, "cache.db"), clock=clock)


#: Innermost-wins stack of ambient caches pushed by :func:`use_cache`.
_default_stack: list[KVCache] = []

#: Memoized ``REPRO_CACHE`` backend, keyed by the env value it was opened
#: for — a process-wide singleton so the guard, shape and result layers all
#: share one connection and one counter set.
_env_cache: Optional[KVCache] = None
_env_cache_spec: Optional[str] = None


def _cache_from_env() -> Optional[KVCache]:
    global _env_cache, _env_cache_spec
    spec = os.environ.get("REPRO_CACHE")
    if not spec:
        return None
    if _env_cache is None or _env_cache_spec != spec:
        _env_cache = open_kv(spec)
        _env_cache_spec = spec
    return _env_cache


def default_cache() -> Optional[KVCache]:
    """The ambient cache: ``use_cache`` context, else ``REPRO_CACHE``, else none."""
    if _default_stack:
        return _default_stack[-1]
    return _cache_from_env()


def reset_cache_runtime() -> None:
    """Forget all ambient cache state (context stack + memoized env backend).

    Called at the top of forked worker processes: a fork inherits the
    parent's stack and memoized ``REPRO_CACHE`` backend, and an sqlite
    connection must never be driven from two processes — the child drops
    the inherited objects unused and re-opens its own from the spec/env.
    (Also the test suite's isolation hook.)
    """
    global _env_cache, _env_cache_spec
    _default_stack.clear()
    _env_cache = None
    _env_cache_spec = None


@contextmanager
def use_cache(cache: Optional[KVCache]):
    """Make *cache* the ambient default within the block.

    ``None`` is a true no-op (the ambient default is left alone, it does
    **not** mask an outer cache), so call sites can unconditionally wrap:
    ``with use_cache(maybe_cache): ...``.
    """
    if cache is None:
        yield None
        return
    _default_stack.append(cache)
    try:
        yield cache
    finally:
        _default_stack.pop()
