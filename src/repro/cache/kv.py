"""The KV-cache protocol: namespaced byte pairs with TTL and counters.

A :class:`KVCache` is the one interface behind every cache the system keeps
outside a single engine's process: shared guard evaluations, interned-shape
read-through rows, and memoized analysis results.  The shape of the protocol
is deliberately redis-like — ``get``/``put``/``mget``/``mput``/``delete``/
``scan`` over byte keys and byte values, partitioned by a short string
*namespace*, with an optional per-entry TTL — so a real network backend can
drop in behind the same calls later.

Design constraints the backends share:

* **Pure observer.**  A cache answer must be byte-identical to what the
  writer put in, and a cache may drop any entry at any time (eviction, TTL,
  a concurrent delete).  Callers therefore treat every ``get`` miss as "go
  compute it" — correctness never depends on an entry being present.
* **Bytes in, bytes out.**  Values are opaque; the binary row codecs from
  :mod:`repro.io.serialization` are reused verbatim as values, so nothing is
  re-serialised at this layer.
* **Counted.**  Every backend keeps per-namespace hit/miss/put/eviction
  counters (:meth:`KVCache.stats`), surfaced on the service ``/metricsz``
  endpoint and in ``repro store info``.
* **Testable time.**  TTL expiry consults an injectable ``clock`` (defaults
  to :func:`time.time`), so the property suite fakes the passage of time
  instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Optional

#: The namespaces the system writes today.  Free-form strings are accepted —
#: this tuple exists so reporting surfaces can render stable zero rows.
KNOWN_NAMESPACES = ("guards", "shapes", "results")

_COUNTER_KEYS = ("hits", "misses", "puts", "deletes", "evictions", "expirations")


class KVCache:
    """Base class: counter bookkeeping, TTL arithmetic, mget/mput defaults.

    Subclasses implement the single-key primitives (:meth:`_get_entry`,
    :meth:`_put_entry`, :meth:`delete`, :meth:`scan`) over ``(value,
    expires_at)`` entries; the base class turns them into the counted,
    TTL-checked public surface.  ``mget``/``mput`` default to loops —
    backends with a cheaper batch path override them.
    """

    #: Short backend name used in stats payloads.
    backend = "kv"

    #: How to reopen this cache elsewhere (another process, a worker): the
    #: spec string understood by :func:`repro.cache.open_kv`, or ``None``
    #: for process-local backends that cannot be shared by spec.
    spec: Optional[str] = None

    def __init__(self, clock=time.time) -> None:
        self._clock = clock
        self.counters: dict[str, dict[str, int]] = {}

    # -- counter bookkeeping -------------------------------------------- #

    def _ns_counters(self, namespace: str) -> dict[str, int]:
        counters = self.counters.get(namespace)
        if counters is None:
            counters = self.counters[namespace] = dict.fromkeys(_COUNTER_KEYS, 0)
        return counters

    # -- primitives subclasses provide ---------------------------------- #

    def _get_entry(self, namespace: str, key: bytes) -> Optional[tuple[bytes, Optional[float]]]:
        """The stored ``(value, expires_at)`` entry, or ``None``."""
        raise NotImplementedError

    def _put_entry(
        self, namespace: str, key: bytes, value: bytes, expires_at: Optional[float]
    ) -> None:
        raise NotImplementedError

    def _drop_entry(self, namespace: str, key: bytes) -> bool:
        """Remove one entry; ``True`` when it existed."""
        raise NotImplementedError

    def _scan_entries(
        self, namespace: str
    ) -> Iterator[tuple[bytes, bytes, Optional[float]]]:
        """All ``(key, value, expires_at)`` entries of a namespace."""
        raise NotImplementedError

    # -- public protocol ------------------------------------------------ #

    def get(self, namespace: str, key: bytes) -> Optional[bytes]:
        """The cached value, or ``None`` on a miss (absent or expired)."""
        counters = self._ns_counters(namespace)
        entry = self._get_entry(namespace, key)
        if entry is not None:
            value, expires_at = entry
            if expires_at is None or expires_at > self._clock():
                counters["hits"] += 1
                return value
            # lazily reap the expired entry so scans and backends stay tidy
            self._drop_entry(namespace, key)
            counters["expirations"] += 1
        counters["misses"] += 1
        return None

    def put(
        self, namespace: str, key: bytes, value: bytes, ttl: Optional[float] = None
    ) -> None:
        """Store *value* under *key*, optionally expiring after *ttl* seconds."""
        expires_at = None if ttl is None else self._clock() + ttl
        self._put_entry(namespace, key, value, expires_at)
        self._ns_counters(namespace)["puts"] += 1

    def mget(self, namespace: str, keys: Iterable[bytes]) -> list[Optional[bytes]]:
        """Values for *keys* in order, ``None`` per miss."""
        return [self.get(namespace, key) for key in keys]

    def mput(
        self,
        namespace: str,
        items: Iterable[tuple[bytes, bytes]],
        ttl: Optional[float] = None,
    ) -> None:
        """Store every ``(key, value)`` pair of *items*."""
        for key, value in items:
            self.put(namespace, key, value, ttl=ttl)

    def delete(self, namespace: str, key: bytes) -> bool:
        """Drop one entry; ``True`` when it existed."""
        existed = self._drop_entry(namespace, key)
        if existed:
            self._ns_counters(namespace)["deletes"] += 1
        return existed

    def scan(self, namespace: str) -> Iterator[tuple[bytes, bytes]]:
        """All live ``(key, value)`` pairs of a namespace (order unspecified).

        Expired entries are skipped (and may be reaped as a side effect);
        entries added mid-scan may or may not appear.
        """
        now = self._clock()
        for key, value, expires_at in list(self._scan_entries(namespace)):
            if expires_at is None or expires_at > now:
                yield key, value

    # -- lifecycle ------------------------------------------------------- #

    def flush(self) -> None:
        """Persist buffered writes (no-op for unbuffered backends)."""

    def close(self) -> None:
        """Flush and release backing resources."""
        self.flush()

    # -- reporting -------------------------------------------------------- #

    def stats(self) -> dict:
        """Per-namespace counter snapshot.

        Always renders the well-known namespaces (zeroed when untouched) so
        reporting surfaces show stable rows, plus any ad-hoc namespaces that
        saw traffic.
        """
        namespaces = {}
        for namespace in KNOWN_NAMESPACES:
            namespaces[namespace] = dict(self._ns_counters(namespace))
        for namespace, counters in self.counters.items():
            if namespace not in namespaces:
                namespaces[namespace] = dict(counters)
        return {"backend": self.backend, "spec": self.spec, "namespaces": namespaces}
