"""Pluggable KV-cache tier shared by guards, shapes, and analysis results.

One redis-shaped protocol (:class:`KVCache`: ``get``/``put``/``mget``/
``mput``/``delete``/``scan`` over namespaced byte pairs, optional TTL,
per-namespace counters) behind three backends:

* :class:`MemoryKV` — a process-local bounded LRU.
* :class:`SqliteKV` — a WAL sqlite database, batch-committed, shared by
  threads and by processes on one host.
* :class:`DirKV` — one file per key, published by atomic rename, so two
  pods share a directory with no daemon.

Resolution: pass a cache explicitly, push one with :func:`use_cache`, or
set ``REPRO_CACHE`` (see :func:`default_cache` / :func:`open_kv` for the
``--cache DIR|URL`` spec grammar).
"""

from repro.cache.kv import KNOWN_NAMESPACES, KVCache
from repro.cache.kv_dir import DirKV
from repro.cache.kv_memory import MemoryKV
from repro.cache.kv_sqlite import SqliteKV
from repro.cache.runtime import default_cache, open_kv, use_cache

__all__ = [
    "DirKV",
    "KNOWN_NAMESPACES",
    "KVCache",
    "MemoryKV",
    "SqliteKV",
    "default_cache",
    "open_kv",
    "use_cache",
]
