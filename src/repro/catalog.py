"""The built-in form catalogue, addressable by name.

Form *references* appear in three places that must agree: CLI positional
arguments, :class:`~repro.service.AnalysisRequest.form` fields travelling
over the service wire, and library calls.  This module is the single
resolver behind all three:

* a **catalogue name** (``leave-application``, ``tax-declaration``, …, plus
  the ``bench-*`` benchgen families) builds the named example form;
* a **dict** is decoded as the JSON form format of
  :mod:`repro.io.serialization` (this is how forms travel over the service
  wire — the client inlines the file so the server never needs the client's
  filesystem);
* any other **string** is treated as a path to a JSON form file.

Historically the catalogue lived in :mod:`repro.cli`, which re-exports it
for compatibility.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.core.guarded_form import GuardedForm
from repro.exceptions import RequestError
from repro.fbwis.catalog import (
    leave_application,
    leave_application_incompletable,
    leave_application_not_semisound,
    purchase_order,
    tax_declaration,
)
from repro.io.serialization import guarded_form_from_dict, load_guarded_form


def _bench_counter_machine() -> GuardedForm:
    from repro.benchgen.families import counter_machine_family

    return counter_machine_family(3)[0]


def _bench_positive_deep() -> GuardedForm:
    from repro.benchgen.families import positive_deep_family

    return positive_deep_family(4, width=2)


def _bench_positive_chain() -> GuardedForm:
    from repro.benchgen.families import positive_chain_family

    return positive_chain_family(16)


def _bench_sat() -> GuardedForm:
    from repro.benchgen.families import sat_completability_family

    return sat_completability_family(8, seed=8)[0]


#: Built-in forms addressable by name on the command line and in service
#: requests.  The ``bench-*`` entries expose benchgen workload families (the
#: counter machine is the deepest — its unbounded state space is the intended
#: target for ``analyze --store … --max-states N`` / ``--resume`` sessions).
CATALOG: dict[str, Callable[[], GuardedForm]] = {
    "leave-application": lambda: leave_application(single_period=False),
    "leave-application-finite": lambda: leave_application(single_period=True),
    "leave-application-incompletable": lambda: leave_application_incompletable(single_period=True),
    "leave-application-not-semisound": lambda: leave_application_not_semisound(single_period=True),
    "tax-declaration": tax_declaration,
    "purchase-order": purchase_order,
    "bench-counter-machine": _bench_counter_machine,
    "bench-positive-deep": _bench_positive_deep,
    "bench-positive-chain": _bench_positive_chain,
    "bench-sat": _bench_sat,
}


def resolve_form(ref: "str | dict | GuardedForm") -> GuardedForm:
    """Materialise a form reference: name, inline dict, path, or the form.

    Raises:
        RequestError: the reference is neither a catalogue name, an inline
            form dict, an existing JSON file, nor a
            :class:`~repro.core.guarded_form.GuardedForm` — the
            ``malformed-form`` case of the service error taxonomy.
    """
    if isinstance(ref, GuardedForm):
        return ref
    if isinstance(ref, dict):
        return guarded_form_from_dict(ref)
    if not isinstance(ref, str):
        raise RequestError(
            f"a form reference must be a catalogue name, a form dict or a "
            f"file path, not {type(ref).__name__}"
        )
    if ref in CATALOG:
        return CATALOG[ref]()
    path = Path(ref)
    if not path.exists():
        raise RequestError(
            f"{ref!r} is neither a catalogue form ({', '.join(sorted(CATALOG))}) "
            "nor an existing file"
        )
    return load_guarded_form(path)
