"""The fb-wis form engine: registration, analysis-on-registration, sessions.

The paper's premise is that forms created in an ad hoc manner by
unsophisticated users are analysed automatically "such that forms with an
incorrect workflow will be rejected by the fb-wis and users can be told how
they should modify their form's definition" (Section 1).  :class:`FormEngine`
implements that behaviour: every registered guarded form is analysed for
completability and (optionally) semi-soundness, and the registration policy
decides whether problematic forms are rejected, accepted with a warning, or
accepted silently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.completability import decide_completability
from repro.analysis.results import AnalysisResult, ExplorationLimits
from repro.analysis.semisoundness import decide_semisoundness
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.fbwis.session import FormSession
from repro.exceptions import EngineError


class FormPolicy(enum.Enum):
    """What the engine does with forms whose analysis is negative/undecided."""

    #: reject forms that are not completable or not semi-sound; undecided
    #: analyses are treated as failures (the safest policy).
    STRICT = "strict"
    #: reject forms that are provably broken, accept undecided ones with a
    #: warning recorded on the registration.
    WARN = "warn"
    #: register everything; analyses are still run and recorded.
    PERMISSIVE = "permissive"


@dataclass
class RegisteredForm:
    """A form accepted by the engine, together with its analysis results."""

    form_id: str
    guarded_form: GuardedForm
    completability: AnalysisResult
    semisoundness: Optional[AnalysisResult]
    warnings: list[str] = field(default_factory=list)


class FormEngine:
    """Registry of guarded forms plus instance/session management."""

    def __init__(
        self,
        policy: FormPolicy = FormPolicy.STRICT,
        check_semisoundness: bool = True,
        limits: Optional[ExplorationLimits] = None,
    ) -> None:
        self.policy = policy
        self.check_semisoundness = check_semisoundness
        self.limits = limits
        self._forms: dict[str, RegisteredForm] = {}
        self._sessions: dict[str, FormSession] = {}
        self._session_counter = 0

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(self, form_id: str, guarded_form: GuardedForm) -> RegisteredForm:
        """Analyse and register *guarded_form* under *form_id*.

        Raises:
            EngineError: when the id is taken, or when the policy rejects the
                form because its workflow is incorrect (or could not be shown
                correct, under the strict policy).
        """
        if form_id in self._forms:
            raise EngineError(f"a form with id {form_id!r} is already registered")

        completability = decide_completability(guarded_form, limits=self.limits)
        semisoundness = (
            decide_semisoundness(guarded_form, limits=self.limits)
            if self.check_semisoundness
            else None
        )
        warnings: list[str] = []

        self._enforce_policy(form_id, "completability", completability, warnings)
        if semisoundness is not None:
            self._enforce_policy(form_id, "semi-soundness", semisoundness, warnings)

        registered = RegisteredForm(form_id, guarded_form, completability, semisoundness, warnings)
        self._forms[form_id] = registered
        return registered

    def _enforce_policy(
        self,
        form_id: str,
        property_name: str,
        result: AnalysisResult,
        warnings: list[str],
    ) -> None:
        if result.decided and result.answer:
            return
        if result.decided and not result.answer:
            message = f"form {form_id!r} fails {property_name}"
            if self.policy in (FormPolicy.STRICT, FormPolicy.WARN):
                raise EngineError(
                    message + "; fix the access rules or the completion formula"
                )
            warnings.append(message)
            return
        # undecided
        message = (
            f"the {property_name} analysis of form {form_id!r} was inconclusive "
            "within the configured exploration limits"
        )
        if self.policy is FormPolicy.STRICT:
            raise EngineError(message)
        warnings.append(message)

    # ------------------------------------------------------------------ #
    # lookup and sessions
    # ------------------------------------------------------------------ #

    def forms(self) -> list[str]:
        """Identifiers of all registered forms."""
        return sorted(self._forms)

    def registration(self, form_id: str) -> RegisteredForm:
        """The registration record of *form_id*."""
        try:
            return self._forms[form_id]
        except KeyError as exc:
            raise EngineError(f"no form registered under id {form_id!r}") from exc

    def open_session(
        self,
        form_id: str,
        instance: Optional[Instance] = None,
        actor: str = "user",
    ) -> tuple[str, FormSession]:
        """Open an editing session for a new (or supplied) instance of a form.

        Returns ``(session_id, session)``.
        """
        registration = self.registration(form_id)
        self._session_counter += 1
        session_id = f"{form_id}#{self._session_counter}"
        session = FormSession(registration.guarded_form, instance=instance, actor=actor)
        self._sessions[session_id] = session
        return session_id, session

    def session(self, session_id: str) -> FormSession:
        """Look up an open session."""
        try:
            return self._sessions[session_id]
        except KeyError as exc:
            raise EngineError(f"no session with id {session_id!r}") from exc

    def sessions(self) -> list[str]:
        """Identifiers of all open sessions."""
        return sorted(self._sessions)

    def close_session(self, session_id: str) -> FormSession:
        """Close a session and return its final state."""
        try:
            return self._sessions.pop(session_id)
        except KeyError as exc:
            raise EngineError(f"no session with id {session_id!r}") from exc
