"""Live editing sessions for a form instance.

A :class:`FormSession` wraps one instance of a guarded form and enforces the
access rules on every user update.  It is the executable counterpart of the
paper's usage scenario — staff edit a web form and the system only offers the
fields that the instance-dependent access rules currently allow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.guarded_form import Addition, Deletion, GuardedForm, Update
from repro.core.instance import Instance
from repro.core.runs import Run
from repro.core.schema import format_schema_path
from repro.core.tree import Node
from repro.exceptions import EngineError, UpdateNotAllowedError


@dataclass(frozen=True)
class AuditEntry:
    """One entry of a session's audit trail."""

    step: int
    actor: str
    description: str


class FormSession:
    """An editing session over one instance of a guarded form.

    The session keeps the current instance, the run (update sequence) that
    produced it, and an audit trail.  All mutation goes through
    :meth:`add_field` / :meth:`delete_field` / :meth:`apply`, which refuse
    updates the access rules do not allow.
    """

    def __init__(
        self,
        guarded_form: GuardedForm,
        instance: Optional[Instance] = None,
        actor: str = "user",
    ) -> None:
        self._form = guarded_form
        self._instance = (instance or guarded_form.initial_instance()).copy()
        self._instance.validate()
        self._run = Run(guarded_form, [], start=self._instance.copy())
        self._audit: list[AuditEntry] = []
        self.default_actor = actor

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def guarded_form(self) -> GuardedForm:
        """The guarded form this session edits."""
        return self._form

    def instance(self) -> Instance:
        """A copy of the current instance."""
        return self._instance.copy()

    def run(self) -> Run:
        """A copy of the run performed so far."""
        return Run(self._form, list(self._run.updates), start=self._run.start.copy())

    def audit_trail(self) -> list[AuditEntry]:
        """The audit entries recorded so far."""
        return list(self._audit)

    def is_complete(self) -> bool:
        """Whether the current instance satisfies the completion formula."""
        return self._form.is_complete(self._instance)

    def permitted_updates(self) -> list[Update]:
        """The updates the access rules currently allow (what a UI would
        offer to the user)."""
        return self._form.enabled_updates(self._instance)

    def describe_permitted_updates(self) -> list[str]:
        """Human-readable versions of :meth:`permitted_updates`."""
        return [update.describe(self._instance) for update in self.permitted_updates()]

    def find(self, path: str) -> Optional[Node]:
        """Find a node of the current instance by label path (first match)."""
        return self._instance.find_path(path)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def apply(self, update: Update, actor: Optional[str] = None) -> None:
        """Apply *update* if the access rules allow it.

        Raises:
            UpdateNotAllowedError: when the rules forbid the update.
        """
        if not self._form.is_update_allowed(self._instance, update):
            raise UpdateNotAllowedError(
                f"{update.describe(self._instance)} is not allowed in the "
                "current state"
            )
        description = update.describe(self._instance)
        self._form.apply_unchecked(self._instance, update, in_place=True)
        self._run.updates.append(update)
        self._audit.append(
            AuditEntry(len(self._audit) + 1, actor or self.default_actor, description)
        )

    def add_field(self, parent_path: str, label: str, actor: Optional[str] = None) -> Node:
        """Add a *label* field under the (first) node at *parent_path*.

        Returns the created node.
        """
        parent = self._instance.find_path(parent_path)
        if parent is None:
            raise EngineError(
                f"the current instance has no node at path {parent_path!r}"
            )
        update = Addition(parent.node_id, label)
        self.apply(update, actor=actor)
        added = parent.children_with_label(label)[-1]
        return added

    def delete_field(self, path: str, actor: Optional[str] = None) -> None:
        """Delete the (first) leaf node at *path*."""
        node = self._instance.find_path(path)
        if node is None:
            raise EngineError(f"the current instance has no node at path {path!r}")
        self.apply(Deletion(node.node_id), actor=actor)

    def summary(self) -> str:
        """A short textual summary of the session state."""
        fields = sorted(
            format_schema_path(node.label_path())
            for node in self._instance.nodes()
            if not node.is_root()
        )
        status = "complete" if self.is_complete() else "in progress"
        return (
            f"{self._form.name}: {status}; fields present: "
            + (", ".join(fields) if fields else "(none)")
        )
