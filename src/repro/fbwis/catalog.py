"""Ready-made guarded forms used by the examples, tests and benchmarks.

The central entry is :func:`leave_application`, a faithful transcription of
the paper's running example (Figure 1 for the schema, Example 3.12 for the
access rules, completion formula ``f``).  Variants reproduce the two
"incorrect" forms discussed in Section 3.5:

* :func:`leave_application_incompletable` — completion formula ``f ∧ ¬s``;
  no complete run exists because ``s`` can never be deleted once added and
  ``f`` requires a decision which requires ``s``.
* :func:`leave_application_not_semisound` — the modified rules that allow
  marking the form final before a decision is entered, after which the
  decision can no longer be added.

Each constructor accepts ``single_period=True`` to restrict the application
to one period field (``A(add, a/p)`` additionally requires ``¬p``).  The
faithful form allows arbitrarily many periods, which makes its reachable
state space infinite; the single-period variant is finite-state and therefore
amenable to exhaustive analysis, which the integration tests exploit.

Two further forms (:func:`tax_declaration`, :func:`purchase_order`) model the
e-government and procurement scenarios the introduction motivates; they are
used by the domain-specific examples.
"""

from __future__ import annotations

from repro.core.access import RuleTable
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.schema import Schema

#: The leave application schema of Figure 1, with labels abbreviated to their
#: first letter exactly as the paper does (``application`` → ``a``,
#: ``decision`` → ``d``, the ``reason`` below ``reject`` → ``r``, …).
LEAVE_APPLICATION_SCHEMA = {
    "a": {"n": {}, "d": {}, "p": {"b": {}, "e": {}}},
    "s": {},
    "d": {"a": {}, "r": {"r": {}}},
    "f": {},
}


def _leave_application_schema() -> Schema:
    return Schema.from_dict(LEAVE_APPLICATION_SCHEMA)


def _leave_application_rules(schema: Schema, single_period: bool) -> RuleTable:
    period_add = "¬../s ∧ ¬p" if single_period else "¬../s"
    return RuleTable.from_dict(
        schema,
        {
            "a": ("¬a", "¬a"),
            "a/n": ("¬../s ∧ ¬n", "¬../s"),
            "a/d": ("¬../s ∧ ¬d", "¬../s"),
            "a/p": (period_add, "¬../s"),
            "a/p/b": ("¬../../s ∧ ¬b", "¬../../s"),
            "a/p/e": ("¬../../s ∧ ¬e", "¬../../s"),
            "s": ("¬s ∧ a[n ∧ d ∧ p] ∧ ¬a/p[¬b ∨ ¬e]", "¬s"),
            "d": ("s ∧ ¬d", "¬f"),
            "d/a": ("¬(a ∨ r)", "¬../f"),
            "d/r": ("¬(a ∨ r)", "¬../f"),
            "d/r/r": ("¬r", "¬../../f"),
            "f": ("d[a ∨ r] ∧ ¬f", "¬f"),
        },
    )


def leave_application(single_period: bool = False) -> GuardedForm:
    """The leave application of Figure 1 / Example 3.12.

    The initial instance is the empty form (only the root) and the completion
    formula is ``f`` (the final field has been marked).  This guarded form is
    completable and, as far as the exhaustive analysis of its single-period
    variant can tell, semi-sound.
    """
    schema = _leave_application_schema()
    rules = _leave_application_rules(schema, single_period)
    return GuardedForm(
        schema,
        rules,
        completion="f",
        initial_instance=Instance.empty(schema),
        name="leave application" + (" (single period)" if single_period else ""),
    )


def leave_application_incompletable(single_period: bool = False) -> GuardedForm:
    """The Section 3.5 variant with completion formula ``f ∧ ¬s``.

    Marking the form final requires a decision, a decision requires the
    application to have been submitted, and the submission field can never be
    deleted afterwards (``A(del, s) = ¬s``), so no reachable instance
    satisfies ``f ∧ ¬s`` — the form is not completable.
    """
    base = leave_application(single_period)
    return base.with_completion(
        "f ∧ ¬s",
        name="leave application (incompletable variant)",
    )


def leave_application_not_semisound(single_period: bool = False) -> GuardedForm:
    """The Section 3.5 variant that is completable but not semi-sound.

    The rules are modified so that the final field only requires a decision
    field to exist (``A(add, f) = d ∧ ¬f``) while approving or rejecting is
    forbidden once the form is final (``… ∧ ¬../f``).  A user can therefore
    reach an instance with ``f`` but no approval/rejection, from which the
    completion formula ``f ∧ d[a ∨ r]`` can never be satisfied.
    """
    schema = _leave_application_schema()
    rules = _leave_application_rules(schema, single_period)
    rules.set_add_rule("f", "d ∧ ¬f")
    rules.set_add_rule("d/a", "¬(a ∨ r) ∧ ¬../f")
    rules.set_add_rule("d/r", "¬(a ∨ r) ∧ ¬../f")
    return GuardedForm(
        schema,
        rules,
        completion="f ∧ d[a ∨ r]",
        initial_instance=Instance.empty(schema),
        name="leave application (not semi-sound variant)",
    )


def tax_declaration() -> GuardedForm:
    """A simplified e-government tax declaration (introduction scenario).

    The citizen fills in an ``income`` section (salary and optional
    deductions), then lodges the declaration; the administration performs an
    ``assessment`` (either accepting it or issuing an ``audit`` with a
    finding), after which a ``notice`` is issued and the declaration is
    closed.  The form is finite-state: every field is single-valued.
    """
    schema = Schema.from_dict(
        {
            "income": {"salary": {}, "deduction": {"receipt": {}}},
            "lodged": {},
            "assessment": {"accept": {}, "audit": {"finding": {}}},
            "notice": {},
            "closed": {},
        }
    )
    rules = RuleTable.from_dict(
        schema,
        {
            "income": ("¬income", "¬lodged"),
            "income/salary": ("¬../lodged ∧ ¬salary", "¬../lodged"),
            "income/deduction": ("¬../lodged ∧ ¬deduction", "¬../lodged"),
            "income/deduction/receipt": ("¬../../lodged ∧ ¬receipt", "¬../../lodged"),
            "lodged": ("¬lodged ∧ income[salary] ∧ ¬income/deduction[¬receipt]", "¬lodged"),
            "assessment": ("lodged ∧ ¬assessment", "¬notice"),
            "assessment/accept": ("¬(accept ∨ audit)", "¬../notice"),
            "assessment/audit": ("¬(accept ∨ audit)", "¬../notice"),
            "assessment/audit/finding": ("¬finding", "¬../../notice"),
            "notice": ("assessment[accept ∨ audit[finding]] ∧ ¬notice", "¬closed"),
            "closed": ("notice ∧ ¬closed", "¬closed"),
        },
    )
    return GuardedForm(
        schema,
        rules,
        completion="closed",
        initial_instance=Instance.empty(schema),
        name="tax declaration",
    )


def purchase_order() -> GuardedForm:
    """A purchase-order approval workflow (procurement scenario).

    A requester describes the order (item and cost estimate), submits it, a
    manager approves or declines, and for approved orders a purchase is
    recorded before the order is archived.  Declined orders can be archived
    immediately — the workflow has two alternative completion branches, which
    the workflow-extraction example visualises.
    """
    schema = Schema.from_dict(
        {
            "order": {"item": {}, "estimate": {}},
            "submitted": {},
            "review": {"approve": {}, "decline": {"justification": {}}},
            "purchase": {"invoice": {}},
            "archived": {},
        }
    )
    rules = RuleTable.from_dict(
        schema,
        {
            "order": ("¬order", "¬submitted"),
            "order/item": ("¬../submitted ∧ ¬item", "¬../submitted"),
            "order/estimate": ("¬../submitted ∧ ¬estimate", "¬../submitted"),
            "submitted": ("¬submitted ∧ order[item ∧ estimate]", "¬submitted"),
            "review": ("submitted ∧ ¬review", "¬archived"),
            "review/approve": ("¬(approve ∨ decline)", "¬../archived"),
            "review/decline": ("¬(approve ∨ decline)", "¬../archived"),
            "review/decline/justification": ("¬justification", "¬../../archived"),
            "purchase": ("review[approve] ∧ ¬purchase", "¬archived"),
            "purchase/invoice": ("¬invoice", "¬../archived"),
            "archived": (
                "(purchase[invoice] ∨ review[decline[justification]]) ∧ ¬archived",
                "¬archived",
            ),
        },
    )
    return GuardedForm(
        schema,
        rules,
        completion="archived",
        initial_instance=Instance.empty(schema),
        name="purchase order",
    )
