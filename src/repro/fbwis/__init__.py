"""A small form-based web information system (fb-wis) built on guarded forms.

The paper motivates its analysis problems with a server-side system in which
unsophisticated users define forms (schema + instance-dependent access rules)
and the system automatically manages the implied workflow, rejecting forms
whose workflow is incorrect (Section 1).  This package provides that
application layer:

* :mod:`repro.fbwis.engine` — a registry of form definitions that analyses
  every form on registration and can be configured to reject forms that are
  not completable or not semi-sound;
* :mod:`repro.fbwis.session` — a live editing session for one form instance,
  exposing exactly the updates the access rules allow and keeping an audit
  trail;
* :mod:`repro.fbwis.catalog` — ready-made example forms, including the
  paper's leave application (Figure 1 / Example 3.12) and its intentionally
  broken variants from Section 3.5.
"""

from repro.fbwis.catalog import (
    leave_application,
    leave_application_incompletable,
    leave_application_not_semisound,
    purchase_order,
    tax_declaration,
)
from repro.fbwis.engine import FormEngine, FormPolicy, RegisteredForm
from repro.fbwis.session import FormSession

__all__ = [
    "leave_application",
    "leave_application_incompletable",
    "leave_application_not_semisound",
    "purchase_order",
    "tax_declaration",
    "FormEngine",
    "FormPolicy",
    "RegisteredForm",
    "FormSession",
]
