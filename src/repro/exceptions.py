"""Exception hierarchy for the guarded-forms library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library errors with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class LabelError(ReproError):
    """An invalid node label was supplied (empty, reserved, or malformed)."""


class SchemaError(ReproError):
    """A schema violates Definition 3.1 (duplicate sibling labels, bad root)."""


class InstanceError(ReproError):
    """An instance tree is not homomorphic to its schema, or an update is
    structurally impossible (e.g. deleting a non-leaf node)."""


class FormulaParseError(ReproError):
    """The formula text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class FormulaError(ReproError):
    """A formula is malformed or used in an unsupported way."""


class AccessRuleError(ReproError):
    """An access-rule table refers to an unknown schema edge or right."""


class UpdateNotAllowedError(ReproError):
    """An update was applied that the access rules do not permit."""


class RunError(ReproError):
    """A run (sequence of updates) is invalid for its guarded form."""


class AnalysisError(ReproError):
    """A decision procedure was invoked on an unsupported fragment."""


class ExplorationLimitError(ReproError):
    """A bounded state-space exploration exceeded its configured limits and
    the caller requested strict behaviour instead of an undecided result."""


class ReductionError(ReproError):
    """A reduction input (counter machine, CNF, QBF, deadlock problem) is
    malformed."""


class SerializationError(ReproError):
    """A serialized object could not be decoded."""


class WireFormatError(SerializationError):
    """A binary wire frame is unusable: truncated, corrupt, carrying an
    unknown version byte, or inconsistent with its own length framing."""


class StoreError(ReproError):
    """A persistent state store is unusable: it belongs to a different guarded
    form, its schema version is unknown, or the backing file is corrupt."""


class ExplorationInterrupted(ReproError):
    """A bounded exploration stopped before exhausting its frontier (step
    budget reached or interrupted); its progress was checkpointed to the
    engine's state store and can be picked up with ``resume=True``."""

    def __init__(self, message: str, states_explored: int = 0, frontier_size: int = 0) -> None:
        super().__init__(message)
        self.states_explored = states_explored
        self.frontier_size = frontier_size


class EngineError(ReproError):
    """The form-based web information system engine rejected an operation."""


class CampaignError(ReproError):
    """A scenario campaign is misconfigured or its store is unusable: unknown
    family or oracle names, or a resume whose configuration (families, count,
    seed, oracle stack) does not match what the campaign store recorded."""


class ServiceError(ReproError):
    """Base class for analysis-service failures.

    Service errors carry the stable error taxonomy the HTTP layer and
    ``run_analysis`` share (see :mod:`repro.service.errors`): a machine
    ``code``, the HTTP status the server answers with, and whether retrying
    the identical request can succeed (``retryable``).  Library exceptions
    outside this hierarchy are classified by
    :func:`repro.service.errors.classify_error`.
    """

    code = "internal"
    http_status = 500
    retryable = False


class RequestError(ServiceError):
    """An :class:`~repro.service.AnalysisRequest` is malformed: unknown
    analysis kind, missing formula, bad field types, an unresolvable form
    reference, or an unsupported codec version."""

    code = "bad-request"
    http_status = 400


class UnknownJobError(ServiceError):
    """A job id names no job the service knows about."""

    code = "unknown-job"
    http_status = 404


class JobNotReadyError(ServiceError):
    """A job's result was requested before the job reached a terminal
    state; polling again later can succeed."""

    code = "not-ready"
    http_status = 409
    retryable = True


class EvictionError(ServiceError):
    """A job was evicted as stalled more times than the pod tolerates.

    Each eviction re-queued the job to resume from its checkpoint, so a
    retry elsewhere (or with a larger budget) can still succeed."""

    code = "evicted"
    http_status = 500
    retryable = True


class AdmissionError(ServiceError):
    """The pod rejected a job at admission: the queue is full, or the
    declared resident budget can never fit under
    ``capacity * overcommit``."""

    code = "admission-rejected"
    http_status = 429
    retryable = True
