"""Exception hierarchy for the guarded-forms library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library errors with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class LabelError(ReproError):
    """An invalid node label was supplied (empty, reserved, or malformed)."""


class SchemaError(ReproError):
    """A schema violates Definition 3.1 (duplicate sibling labels, bad root)."""


class InstanceError(ReproError):
    """An instance tree is not homomorphic to its schema, or an update is
    structurally impossible (e.g. deleting a non-leaf node)."""


class FormulaParseError(ReproError):
    """The formula text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class FormulaError(ReproError):
    """A formula is malformed or used in an unsupported way."""


class AccessRuleError(ReproError):
    """An access-rule table refers to an unknown schema edge or right."""


class UpdateNotAllowedError(ReproError):
    """An update was applied that the access rules do not permit."""


class RunError(ReproError):
    """A run (sequence of updates) is invalid for its guarded form."""


class AnalysisError(ReproError):
    """A decision procedure was invoked on an unsupported fragment."""


class ExplorationLimitError(ReproError):
    """A bounded state-space exploration exceeded its configured limits and
    the caller requested strict behaviour instead of an undecided result."""


class ReductionError(ReproError):
    """A reduction input (counter machine, CNF, QBF, deadlock problem) is
    malformed."""


class SerializationError(ReproError):
    """A serialized object could not be decoded."""


class WireFormatError(SerializationError):
    """A binary wire frame is unusable: truncated, corrupt, carrying an
    unknown version byte, or inconsistent with its own length framing."""


class StoreError(ReproError):
    """A persistent state store is unusable: it belongs to a different guarded
    form, its schema version is unknown, or the backing file is corrupt."""


class ExplorationInterrupted(ReproError):
    """A bounded exploration stopped before exhausting its frontier (step
    budget reached or interrupted); its progress was checkpointed to the
    engine's state store and can be picked up with ``resume=True``."""

    def __init__(self, message: str, states_explored: int = 0, frontier_size: int = 0) -> None:
        super().__init__(message)
        self.states_explored = states_explored
        self.frontier_size = frontier_size


class EngineError(ReproError):
    """The form-based web information system engine rejected an operation."""


class CampaignError(ReproError):
    """A scenario campaign is misconfigured or its store is unusable: unknown
    family or oracle names, or a resume whose configuration (families, count,
    seed, oracle stack) does not match what the campaign store recorded."""
