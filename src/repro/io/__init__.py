"""Serialisation and rendering utilities.

* :mod:`repro.io.serialization` — dict/JSON round-tripping of schemas,
  instances, rule tables and guarded forms;
* :mod:`repro.io.render` — ASCII rendering of trees (regenerating the paper's
  Figures 1–3 as text), rule tables and Table 1;
* :mod:`repro.io.dot` — Graphviz DOT export of schemas, instances and
  extracted workflows.
"""

from repro.io.dot import instance_to_dot, lts_to_dot, schema_to_dot
from repro.io.render import (
    render_instance,
    render_rule_table,
    render_schema,
    render_table,
    render_table1,
)
from repro.io.serialization import (
    guarded_form_from_dict,
    guarded_form_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_guarded_form,
    save_guarded_form,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    "schema_to_dot",
    "instance_to_dot",
    "lts_to_dot",
    "render_schema",
    "render_instance",
    "render_rule_table",
    "render_table",
    "render_table1",
    "schema_to_dict",
    "schema_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "guarded_form_to_dict",
    "guarded_form_from_dict",
    "save_guarded_form",
    "load_guarded_form",
]
