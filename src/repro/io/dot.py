"""Graphviz DOT export.

The fb-wis setting calls for showing users the workflow their access rules
imply; these helpers produce DOT text for schemas, instances and extracted
workflow LTSs that can be rendered with any Graphviz installation (the
library itself never shells out — it only produces text).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.tree import LabelledTree

if TYPE_CHECKING:  # import-time dependency would cycle: io -> workflow ->
    # engine -> io (the engine's store uses the io codecs)
    from repro.workflow.lts import LabelledTransitionSystem


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def tree_to_dot(tree: LabelledTree, name: str = "tree") -> str:
    """DOT digraph of a rooted node-labelled tree."""
    lines = [f'digraph "{_escape(name)}" {{', "  node [shape=ellipse];"]
    for node in tree.nodes():
        lines.append(f'  n{node.node_id} [label="{_escape(node.label)}"];')
    for parent, child in tree.edges():
        lines.append(f"  n{parent.node_id} -> n{child.node_id};")
    lines.append("}")
    return "\n".join(lines)


def schema_to_dot(schema: LabelledTree, name: str = "schema") -> str:
    """DOT rendering of a schema."""
    return tree_to_dot(schema, name)


def instance_to_dot(instance: LabelledTree, name: str = "instance") -> str:
    """DOT rendering of an instance."""
    return tree_to_dot(instance, name)


def lts_to_dot(lts: LabelledTransitionSystem, name: str = "workflow") -> str:
    """DOT rendering of an extracted workflow LTS.

    The initial state is drawn with a double border, accepting (complete)
    states are filled.
    """
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;", "  node [shape=box];"]
    ids = {state: f"s{index}" for index, state in enumerate(sorted(lts.states, key=repr))}
    for state, node_id in ids.items():
        attributes = [f'label="{_escape(str(state))}"']
        if state == lts.initial:
            attributes.append("peripheries=2")
        if state in lts.accepting:
            attributes.append('style=filled, fillcolor="lightgrey"')
        lines.append(f"  {node_id} [{', '.join(attributes)}];")
    for transition in lts.transitions:
        lines.append(
            f"  {ids[transition.source]} -> {ids[transition.target]} "
            f'[label="{_escape(transition.action)}"];'
        )
    lines.append("}")
    return "\n".join(lines)
