"""Dict/JSON serialisation of the core objects.

The serialised representations are deliberately plain (nested dicts, formula
strings in the concrete syntax of :mod:`repro.core.formulas.parser`) so that
form definitions can be stored, versioned and exchanged — the fb-wis setting
assumes form definitions travel between peers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.core.access import RuleTable
from repro.core.guarded_form import GuardedForm
from repro.core.instance import Instance
from repro.core.labels import ROOT_LABEL
from repro.core.schema import Schema
from repro.core.tree import Node, Shape
from repro.exceptions import SerializationError


# --------------------------------------------------------------------------- #
# schemas
# --------------------------------------------------------------------------- #


def schema_to_dict(schema: Schema) -> dict:
    """Nested-dict representation of a schema (inverse of ``Schema.from_dict``)."""
    return schema.to_dict()


def schema_from_dict(data: dict) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    if not isinstance(data, dict):
        raise SerializationError("a schema must be encoded as a nested dict")
    return Schema.from_dict(data)


# --------------------------------------------------------------------------- #
# instances
# --------------------------------------------------------------------------- #


def _node_to_dict(node: Node) -> dict:
    return {"label": node.label, "children": [_node_to_dict(child) for child in node.children]}


def instance_to_dict(instance: Instance) -> dict:
    """Nested-dict representation of an instance tree."""
    return _node_to_dict(instance.root)


def _dict_to_shape(data: dict) -> Shape:
    try:
        label = data["label"]
        children = data.get("children", [])
    except (TypeError, KeyError) as exc:
        raise SerializationError("an instance node needs a 'label' key") from exc
    return (label, tuple(sorted(_dict_to_shape(child) for child in children)))


def instance_from_dict(data: dict, schema: Schema) -> Instance:
    """Rebuild an instance (validated against *schema*)."""
    shape = _dict_to_shape(data)
    if shape[0] != ROOT_LABEL:
        raise SerializationError(f"instance root must be labelled {ROOT_LABEL!r}")
    return Instance.from_shape(schema, shape)


# --------------------------------------------------------------------------- #
# guarded forms
# --------------------------------------------------------------------------- #


def guarded_form_to_dict(guarded_form: GuardedForm) -> dict:
    """Serialise a guarded form (schema, rules, initial instance, completion)."""
    return {
        "name": guarded_form.name,
        "schema": schema_to_dict(guarded_form.schema),
        "rules": {
            path: list(pair) for path, pair in guarded_form.rules.to_dict().items()
        },
        "initial_instance": instance_to_dict(guarded_form.initial_instance()),
        "completion": guarded_form.completion.to_text(unicode_ops=False),
    }


def guarded_form_from_dict(data: dict) -> GuardedForm:
    """Rebuild a guarded form from :func:`guarded_form_to_dict` output."""
    try:
        schema = schema_from_dict(data["schema"])
        rules_data = data["rules"]
        completion = data["completion"]
    except KeyError as exc:
        raise SerializationError(f"guarded form serialisation misses key {exc}") from exc
    rules = RuleTable.from_dict(schema, {path: tuple(pair) for path, pair in rules_data.items()})
    initial: Optional[Instance] = None
    if data.get("initial_instance") is not None:
        initial = instance_from_dict(data["initial_instance"], schema)
    return GuardedForm(
        schema,
        rules,
        completion=completion,
        initial_instance=initial,
        name=data.get("name", "guarded form"),
    )


def save_guarded_form(guarded_form: GuardedForm, path: "str | Path") -> None:
    """Write a guarded form to a JSON file."""
    Path(path).write_text(
        json.dumps(guarded_form_to_dict(guarded_form), indent=2, sort_keys=True),
        encoding="utf-8",
    )


def load_guarded_form(path: "str | Path") -> GuardedForm:
    """Load a guarded form from a JSON file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON: {exc}") from exc
    return guarded_form_from_dict(data)
