"""Dict/JSON serialisation of the core objects.

The serialised representations are deliberately plain (nested dicts, formula
strings in the concrete syntax of :mod:`repro.core.formulas.parser`) so that
form definitions can be stored, versioned and exchanged — the fb-wis setting
assumes form definitions travel between peers.

Besides the user-facing form format, this module provides the compact codecs
the persistent :mod:`repro.engine.store` backends use for their rows:

* :func:`encode_shape` / :func:`decode_shape` — isomorphism-invariant tree
  shapes as nested JSON arrays;
* :func:`encode_instance_with_ids` / :func:`decode_instance_with_ids` —
  canonical representative instances *including their node identifiers* (the
  engine records transitions against representative node ids, so a resumed
  exploration must rebuild representatives id-for-id);
* :func:`encode_guard_key` / :func:`decode_guard_key` — the heterogeneous
  tuple keys of the guard cache (tuples, frozensets, shapes, ints, strings)
  as deterministic tagged JSON — plus the **binary guard rows**
  (:func:`encode_guard_key_binary` / :func:`decode_guard_key_binary` /
  :func:`decode_guard_row`, auto-detecting either format) built on the wire
  frames' tagged term codec (:func:`write_term` / :func:`read_term`), which
  profiles showed ~30× cheaper to decode than the JSON rows during
  store-backed engine hydration;
* the **binary shape framing** shared with the parallel wire codec
  (:mod:`repro.engine.wire`): :func:`write_uvarint` / :func:`read_uvarint`
  and :func:`write_str` / :func:`read_str` primitives, the recursive
  :func:`write_shape` / :func:`read_shape` framing, and the store-row codec
  :func:`encode_shape_binary` / :func:`decode_shape_binary` /
  :func:`decode_shape_row` (auto-detecting JSON text vs. binary rows, so a
  :class:`~repro.engine.store.SqliteStore` can hold either format), plus
  :func:`stable_shape_hash`, the process-stable CRC digest shared by the
  parallel engine's worker sharding and the store's ``shape_hash``
  reverse-lookup column;
* :func:`encode_update` / :func:`decode_update` — the leaf additions and
  deletions stored in exploration checkpoints;
* :func:`form_fingerprint` — a digest of a guarded form's definition, used by
  the stores to refuse resuming against the wrong form.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from pathlib import Path
from typing import Optional

from repro.core.access import RuleTable
from repro.core.guarded_form import Addition, Deletion, GuardedForm, Update
from repro.core.instance import Instance
from repro.core.labels import ROOT_LABEL
from repro.core.schema import Schema
from repro.core.tree import Node, Shape
from repro.exceptions import SerializationError, WireFormatError


# --------------------------------------------------------------------------- #
# schemas
# --------------------------------------------------------------------------- #


def schema_to_dict(schema: Schema) -> dict:
    """Nested-dict representation of a schema (inverse of ``Schema.from_dict``)."""
    return schema.to_dict()


def schema_from_dict(data: dict) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    if not isinstance(data, dict):
        raise SerializationError("a schema must be encoded as a nested dict")
    return Schema.from_dict(data)


# --------------------------------------------------------------------------- #
# instances
# --------------------------------------------------------------------------- #


def _node_to_dict(node: Node) -> dict:
    return {"label": node.label, "children": [_node_to_dict(child) for child in node.children]}


def instance_to_dict(instance: Instance) -> dict:
    """Nested-dict representation of an instance tree."""
    return _node_to_dict(instance.root)


def _dict_to_shape(data: dict) -> Shape:
    try:
        label = data["label"]
        children = data.get("children", [])
    except (TypeError, KeyError) as exc:
        raise SerializationError("an instance node needs a 'label' key") from exc
    return (label, tuple(sorted(_dict_to_shape(child) for child in children)))


def instance_from_dict(data: dict, schema: Schema) -> Instance:
    """Rebuild an instance (validated against *schema*)."""
    shape = _dict_to_shape(data)
    if shape[0] != ROOT_LABEL:
        raise SerializationError(f"instance root must be labelled {ROOT_LABEL!r}")
    return Instance.from_shape(schema, shape)


# --------------------------------------------------------------------------- #
# guarded forms
# --------------------------------------------------------------------------- #


def guarded_form_to_dict(guarded_form: GuardedForm) -> dict:
    """Serialise a guarded form (schema, rules, initial instance, completion)."""
    return {
        "name": guarded_form.name,
        "schema": schema_to_dict(guarded_form.schema),
        "rules": {
            path: list(pair) for path, pair in guarded_form.rules.to_dict().items()
        },
        "initial_instance": instance_to_dict(guarded_form.initial_instance()),
        "completion": guarded_form.completion.to_text(unicode_ops=False),
    }


def guarded_form_from_dict(data: dict) -> GuardedForm:
    """Rebuild a guarded form from :func:`guarded_form_to_dict` output."""
    try:
        schema = schema_from_dict(data["schema"])
        rules_data = data["rules"]
        completion = data["completion"]
    except KeyError as exc:
        raise SerializationError(f"guarded form serialisation misses key {exc}") from exc
    rules = RuleTable.from_dict(schema, {path: tuple(pair) for path, pair in rules_data.items()})
    initial: Optional[Instance] = None
    if data.get("initial_instance") is not None:
        initial = instance_from_dict(data["initial_instance"], schema)
    return GuardedForm(
        schema,
        rules,
        completion=completion,
        initial_instance=initial,
        name=data.get("name", "guarded form"),
    )


def save_guarded_form(guarded_form: GuardedForm, path: "str | Path") -> None:
    """Write a guarded form to a JSON file."""
    Path(path).write_text(
        json.dumps(guarded_form_to_dict(guarded_form), indent=2, sort_keys=True),
        encoding="utf-8",
    )


def load_guarded_form(path: "str | Path") -> GuardedForm:
    """Load a guarded form from a JSON file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON: {exc}") from exc
    return guarded_form_from_dict(data)


# --------------------------------------------------------------------------- #
# engine-store codecs (shapes, representatives, guard keys, updates)
# --------------------------------------------------------------------------- #

_JSON_COMPACT = {"separators": (",", ":")}


def _shape_to_json(shape: Shape) -> list:
    label, children = shape
    return [label, [_shape_to_json(child) for child in children]]


def _shape_from_json(data) -> Shape:
    try:
        label, children = data
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"malformed shape encoding: {data!r}") from exc
    return (label, tuple(_shape_from_json(child) for child in children))


def encode_shape(shape: Shape) -> str:
    """Compact JSON text for a :data:`~repro.core.tree.Shape` tuple."""
    return json.dumps(_shape_to_json(shape), **_JSON_COMPACT)


def decode_shape(text: str) -> Shape:
    """Inverse of :func:`encode_shape`.

    Child order is preserved verbatim, so round-tripping an already
    order-normalised shape returns an equal shape.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"shape row is not valid JSON: {exc}") from exc
    return _shape_from_json(data)


def encode_instance_with_ids(instance: Instance) -> str:
    """Serialise an instance tree *including node ids* and the id counter.

    The engine's transitions and witness parent chains record updates against
    the node ids of canonical representative instances; a store-backed resume
    must therefore restore representatives with identical ids (and an
    identical id counter, so successor instances derived from them also get
    the same ids as in the original process).
    """

    def node_spec(node: Node) -> list:
        return [node.node_id, node.label, [node_spec(child) for child in node.children]]

    return json.dumps(
        {"next": instance.next_node_id(), "root": node_spec(instance.root)},
        **_JSON_COMPACT,
    )


def decode_instance_with_ids(text: str, schema: Schema) -> Instance:
    """Inverse of :func:`encode_instance_with_ids` (child order preserved)."""
    try:
        data = json.loads(text)
        next_id = data["next"]
        root_spec = data["root"]
    except (json.JSONDecodeError, TypeError, KeyError) as exc:
        raise SerializationError(f"malformed representative row: {exc}") from exc
    return Instance.from_node_specs(schema, root_spec, next_id)


#: Tags for the non-JSON-native containers occurring in guard-cache keys.
_TUPLE_TAG = "t"
_FROZENSET_TAG = "f"


def _guard_term_to_json(term):
    if isinstance(term, tuple):
        return [_TUPLE_TAG, *(_guard_term_to_json(item) for item in term)]
    if isinstance(term, frozenset):
        return [_FROZENSET_TAG, *sorted(_guard_term_to_json(item) for item in term)]
    if term is None or isinstance(term, (str, int)):
        return term
    raise SerializationError(f"unsupported guard-key term {term!r}")


def _guard_term_from_json(data):
    if isinstance(data, list):
        tag, *items = data
        if tag == _TUPLE_TAG:
            return tuple(_guard_term_from_json(item) for item in items)
        if tag == _FROZENSET_TAG:
            return frozenset(_guard_term_from_json(item) for item in items)
        raise SerializationError(f"unknown guard-key container tag {tag!r}")
    return data


def encode_guard_key(key: tuple) -> str:
    """Deterministic text encoding of a guard-cache key tuple.

    Keys mix strings, ints, ``None``, nested shape tuples and frozenset
    projections; tuples and frozensets are encoded as tagged JSON arrays
    (frozensets with sorted elements, so equal keys always encode equally and
    can serve as a primary key).
    """
    return json.dumps(_guard_term_to_json(key), **_JSON_COMPACT)


def decode_guard_key(text: str) -> tuple:
    """Inverse of :func:`encode_guard_key`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"guard row is not valid JSON: {exc}") from exc
    key = _guard_term_from_json(data)
    if not isinstance(key, tuple):
        raise SerializationError(f"guard key did not decode to a tuple: {text!r}")
    return key


# --------------------------------------------------------------------------- #
# binary guard-key term codec (shared with the parallel wire codec)
# --------------------------------------------------------------------------- #

# Tag bytes of the guard-key term codec.
_TERM_NONE = 0
_TERM_FALSE = 1
_TERM_TRUE = 2
_TERM_INT = 3
_TERM_STR = 4
_TERM_TUPLE = 5
_TERM_FROZENSET = 6


def write_term(out: bytearray, term) -> None:
    """Append one guard-key term: ``None``/bool/int/str/tuple/frozenset.

    Signed integers use zigzag varints; frozensets are ordered by their
    encoded bytes, so equal keys always encode identically (the property the
    JSON guard-key codec guarantees by sorting encoded elements).
    """
    if term is None:
        out.append(_TERM_NONE)
    elif term is True:
        out.append(_TERM_TRUE)
    elif term is False:
        out.append(_TERM_FALSE)
    elif isinstance(term, int):
        out.append(_TERM_INT)
        write_uvarint(out, (term << 1) if term >= 0 else ((-term) << 1) - 1)
    elif isinstance(term, str):
        out.append(_TERM_STR)
        write_str(out, term)
    elif isinstance(term, tuple):
        out.append(_TERM_TUPLE)
        write_uvarint(out, len(term))
        for item in term:
            write_term(out, item)
    elif isinstance(term, frozenset):
        out.append(_TERM_FROZENSET)
        write_uvarint(out, len(term))
        encoded = []
        for item in term:
            item_out = bytearray()
            write_term(item_out, item)
            encoded.append(bytes(item_out))
        for blob in sorted(encoded):
            out.extend(blob)
    else:
        raise WireFormatError(f"unsupported guard-key term {term!r}")


def read_term(data: bytes, pos: int) -> tuple:
    """Read one term at *pos*; return ``(term, new pos)``."""
    if pos >= len(data):
        raise WireFormatError("truncated guard-key term")
    tag = data[pos]
    pos += 1
    if tag == _TERM_NONE:
        return None, pos
    if tag == _TERM_TRUE:
        return True, pos
    if tag == _TERM_FALSE:
        return False, pos
    if tag == _TERM_INT:
        raw, pos = read_uvarint(data, pos)
        return (raw >> 1) ^ -(raw & 1), pos
    if tag == _TERM_STR:
        return read_str(data, pos)
    if tag == _TERM_TUPLE:
        count, pos = read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = read_term(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _TERM_FROZENSET:
        count, pos = read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = read_term(data, pos)
            items.append(item)
        return frozenset(items), pos
    raise WireFormatError(f"unknown guard-key term tag {tag}")


#: Extra tags used only inside wire frames (never in store rows):
#: ``_TERM_LABEL_REF`` ships a string as an index into the guard section's
#: string table instead of inline UTF-8; ``_TERM_REF`` ships a whole
#: composite term (tuple/frozenset) as an index into the section's term
#: table — guard keys repeat rule-path tuples and subtree shapes heavily, so
#: both tables cut guard bytes and guard decode time together.
#: :func:`read_term` rejects both tags, keeping store rows self-contained.
_TERM_LABEL_REF = 7
_TERM_REF = 8


def write_term_interned(out: bytearray, term, label_ref, term_refs: dict) -> None:
    """:func:`write_term`, with strings and composite terms interned.

    *label_ref* maps a string to its index in a shared string table,
    appending it on first use.  *term_refs* maps the **canonical**
    (:func:`write_term`) encoding of every tuple/frozenset already written
    structurally to its sequential ref id — repeats ship as a one-varint
    :data:`_TERM_REF`.  Keys are canonical encodings, not the terms
    themselves, because term equality is too coarse (``(1,) == (True,)``)
    while the codec must preserve bool vs int exactly.  Ref ids are assigned
    in completion (post-)order, which is exactly the order
    :func:`read_guard_entries` closes containers in.  Frozensets are ordered
    by their canonical encodings, so the emitted bytes do not depend on set
    iteration order.
    """
    if term is None:
        out.append(_TERM_NONE)
    elif term is True:
        out.append(_TERM_TRUE)
    elif term is False:
        out.append(_TERM_FALSE)
    elif isinstance(term, int):
        out.append(_TERM_INT)
        write_uvarint(out, (term << 1) if term >= 0 else ((-term) << 1) - 1)
    elif isinstance(term, str):
        out.append(_TERM_LABEL_REF)
        write_uvarint(out, label_ref(term))
    elif isinstance(term, (tuple, frozenset)):
        canonical = bytearray()
        write_term(canonical, term)
        key = bytes(canonical)
        ref = term_refs.get(key)
        if ref is not None:
            out.append(_TERM_REF)
            write_uvarint(out, ref)
            return
        if isinstance(term, tuple):
            out.append(_TERM_TUPLE)
            write_uvarint(out, len(term))
            for item in term:
                write_term_interned(out, item, label_ref, term_refs)
        else:
            out.append(_TERM_FROZENSET)
            write_uvarint(out, len(term))
            ordered = []
            for item in term:
                item_canonical = bytearray()
                write_term(item_canonical, item)
                ordered.append((bytes(item_canonical), item))
            for _canonical, item in sorted(ordered, key=lambda pair: pair[0]):
                write_term_interned(out, item, label_ref, term_refs)
        term_refs[key] = len(term_refs)
    else:
        raise WireFormatError(f"unsupported guard-key term {term!r}")


def read_guard_entries(data, pos: int, count: int, labels) -> tuple[list, int]:
    """Batch-decode *count* wire guard entries (interned term + value byte).

    This is the coordinator's guard-section hot path: one iterative decoder
    with an explicit container stack replaces a recursive :func:`read_term`
    call per term (profiles showed the recursion dominating frame decode on
    guard-heavy workloads).  String terms arrive as :data:`_TERM_LABEL_REF`
    indices into *labels* (the guard section's string table), so each
    distinct string is decoded once per frame no matter how many keys
    mention it.

    Composite terms decode into a per-call term table in the same completion
    order :func:`write_term_interned` assigned ref ids, so a
    :data:`_TERM_REF` resolves to the *same object* every time it repeats —
    repeated path tuples and subtree shapes are built once per frame.

    Returns ``([(key tuple, bool), ...], new pos)``.
    """
    entries = []
    terms: list = []  # composite terms in completion order (= encoder ref ids)
    size = len(data)
    label_count = len(labels)
    for _ in range(count):
        stack: list = []  # [tag, remaining, items] frames for open containers
        while True:
            if pos >= size:
                raise WireFormatError("truncated guard-key term")
            tag = data[pos]
            pos += 1
            if tag == _TERM_LABEL_REF:
                if pos < size and data[pos] < 0x80:
                    index = data[pos]
                    pos += 1
                else:
                    index, pos = read_uvarint(data, pos)
                if index >= label_count:
                    raise WireFormatError(
                        f"guard term references label {index}, table has {label_count}"
                    )
                value = labels[index]
            elif tag == _TERM_REF:
                if pos < size and data[pos] < 0x80:
                    index = data[pos]
                    pos += 1
                else:
                    index, pos = read_uvarint(data, pos)
                if index >= len(terms):
                    raise WireFormatError(
                        f"guard term references term {index}, table has {len(terms)}"
                    )
                value = terms[index]
            elif tag == _TERM_TUPLE or tag == _TERM_FROZENSET:
                if pos < size and data[pos] < 0x80:
                    need = data[pos]
                    pos += 1
                else:
                    need, pos = read_uvarint(data, pos)
                if need:
                    stack.append([tag, need, []])
                    continue
                value = () if tag == _TERM_TUPLE else frozenset()
                terms.append(value)
            elif tag == _TERM_INT:
                raw, pos = read_uvarint(data, pos)
                value = (raw >> 1) ^ -(raw & 1)
            elif tag == _TERM_STR:
                value, pos = read_str(data, pos)
            elif tag == _TERM_NONE:
                value = None
            elif tag == _TERM_TRUE:
                value = True
            elif tag == _TERM_FALSE:
                value = False
            else:
                raise WireFormatError(f"unknown guard-key term tag {tag}")
            # feed the completed value into the innermost open container,
            # closing containers (and feeding them upward) as they fill
            closed = True
            while stack:
                frame = stack[-1]
                frame[2].append(value)
                frame[1] -= 1
                if frame[1]:
                    closed = False
                    break
                stack.pop()
                value = tuple(frame[2]) if frame[0] == _TERM_TUPLE else frozenset(frame[2])
                terms.append(value)
            if closed:
                break
        if not isinstance(value, tuple):
            raise WireFormatError(f"guard key decoded to {type(value).__name__}, not tuple")
        if pos >= size:
            raise WireFormatError("truncated guard value byte")
        flag = data[pos]
        pos += 1
        if flag > 1:
            raise WireFormatError(f"guard value byte must be 0 or 1, got {flag}")
        entries.append((value, flag == 1))
    return entries, pos


#: Leading byte of a binary guard row; bumped on layout changes.  JSON guard
#: rows always start with ``[`` (0x5B), so both formats also stay
#: distinguishable by content, not just by sqlite column type.
GUARD_BINARY_VERSION = 1


def encode_guard_key_binary(key: tuple) -> bytes:
    """Binary store-row encoding of a guard-cache key (version byte + term).

    The term codec is the wire frames' — far cheaper to decode than the
    tagged-JSON rows, which profiles showed dominating store-backed engine
    hydration.  Equal keys encode identically (frozensets order-normalised by
    encoded bytes), so the encoding can serve as a primary key.
    """
    out = bytearray([GUARD_BINARY_VERSION])
    write_term(out, key)
    return bytes(out)


def decode_guard_key_binary(data: bytes) -> tuple:
    """Inverse of :func:`encode_guard_key_binary` (full consumption enforced)."""
    if not data:
        raise WireFormatError("empty binary guard row")
    if data[0] != GUARD_BINARY_VERSION:
        raise WireFormatError(
            f"binary guard row has version byte {data[0]}, "
            f"this build reads version {GUARD_BINARY_VERSION}"
        )
    key, pos = read_term(data, 1)
    if pos != len(data):
        raise WireFormatError(f"binary guard row carries {len(data) - pos} trailing bytes")
    if not isinstance(key, tuple):
        raise WireFormatError(f"binary guard row decoded to {type(key).__name__}, not tuple")
    return key


def decode_guard_row(row: "str | bytes") -> tuple:
    """Decode a store guard-key row in either format (JSON text or binary).

    Mirrors :func:`decode_shape_row`: the sqlite store writes whichever
    format it was configured with, the read path accepts both per row.
    """
    if isinstance(row, (bytes, bytearray, memoryview)):
        return decode_guard_key_binary(bytes(row))
    return decode_guard_key(row)


# --------------------------------------------------------------------------- #
# binary shape framing (shared with the parallel wire codec)
# --------------------------------------------------------------------------- #

#: Leading byte of a binary shape row; bumped on layout changes.  JSON shape
#: rows always start with ``[`` (0x5B), so the two formats are also
#: distinguishable by content, not just by sqlite column type.
SHAPE_BINARY_VERSION = 1


def write_uvarint(out: bytearray, value: int) -> None:
    """Append *value* as an unsigned LEB128 varint."""
    if value < 0:
        raise SerializationError(f"uvarint cannot encode negative value {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint at *pos*; return ``(value, new pos)``.

    Raises:
        WireFormatError: when the buffer ends mid-varint (truncation).
    """
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise WireFormatError("truncated varint: buffer ended mid-value")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def write_str(out: bytearray, text: str) -> None:
    """Append a length-prefixed UTF-8 string."""
    encoded = text.encode("utf-8")
    write_uvarint(out, len(encoded))
    out.extend(encoded)


def read_str(data: bytes, pos: int) -> tuple[str, int]:
    """Read a length-prefixed UTF-8 string at *pos*."""
    length, pos = read_uvarint(data, pos)
    end = pos + length
    if end > len(data):
        raise WireFormatError("truncated string: buffer ended mid-text")
    try:
        return data[pos:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"corrupt string payload: {exc}") from exc


def write_shape(out: bytearray, shape: Shape) -> None:
    """Append the recursive binary framing of a shape: label, child count,
    children (already order-normalised — the framing preserves child order
    verbatim, exactly like :func:`encode_shape`)."""
    label, children = shape
    write_str(out, label)
    write_uvarint(out, len(children))
    for child in children:
        write_shape(out, child)


def read_shape(data: bytes, pos: int, cons=None) -> tuple[Shape, int]:
    """Read one binary-framed shape at *pos*; return ``(shape, new pos)``.

    Args:
        cons: optional hash-consing function applied **bottom-up** — to every
            decoded subtree, not just the root — so a consumer sharing the
            engine's interner gets back canonical subtree objects with the
            identity-short-circuit equality the interner's invariant promises.
    """
    label, pos = read_str(data, pos)
    count, pos = read_uvarint(data, pos)
    children = []
    for _ in range(count):
        child, pos = read_shape(data, pos, cons)
        children.append(child)
    shape: Shape = (label, tuple(children))
    return (cons(shape) if cons is not None else shape), pos


def encode_shape_binary(shape: Shape) -> bytes:
    """Binary store-row encoding of a shape (version byte + framing)."""
    out = bytearray([SHAPE_BINARY_VERSION])
    write_shape(out, shape)
    return bytes(out)


def decode_shape_binary(data: bytes) -> Shape:
    """Inverse of :func:`encode_shape_binary` (full consumption enforced)."""
    if not data:
        raise WireFormatError("empty binary shape row")
    if data[0] != SHAPE_BINARY_VERSION:
        raise WireFormatError(
            f"binary shape row has version byte {data[0]}, "
            f"this build reads version {SHAPE_BINARY_VERSION}"
        )
    shape, pos = read_shape(data, 1)
    if pos != len(data):
        raise WireFormatError(
            f"binary shape row carries {len(data) - pos} trailing bytes"
        )
    return shape


def decode_shape_row(row: "str | bytes") -> Shape:
    """Decode a store shape row in either format (JSON text or binary).

    The sqlite store writes whichever format it was configured with, but its
    read path accepts both, so stores written by older (JSON-only) builds and
    binary-row stores are interchangeable.
    """
    if isinstance(row, (bytes, bytearray, memoryview)):
        return decode_shape_binary(bytes(row))
    return decode_shape(row)


def stable_shape_hash(shape: Shape) -> int:
    """A shape digest stable across processes and interpreter runs.

    ``hash()`` on nested label tuples varies with ``PYTHONHASHSEED``, so both
    the parallel engine's worker sharding and the store's ``shape_hash``
    reverse-lookup column use a CRC of the canonical binary shape encoding
    instead; the encoding is order-normalised, hence equal shapes always get
    the same digest (and land on the same shard).
    """
    return zlib.crc32(encode_shape_binary(shape))


def stable_shape_hash_of_encoding(encoded: bytes) -> int:
    """:func:`stable_shape_hash` given the canonical binary encoding directly
    (what the shape arena caches per row) — one CRC, no re-encode."""
    return zlib.crc32(encoded)


def encode_update(update: Update) -> list:
    """JSON-ready encoding of a checkpointed update."""
    if isinstance(update, Addition):
        return ["add", update.parent_id, update.label]
    if isinstance(update, Deletion):
        return ["del", update.node_id]
    raise SerializationError(f"unsupported update {update!r}")


def decode_update(data: list) -> Update:
    """Inverse of :func:`encode_update`."""
    try:
        kind = data[0]
        if kind == "add":
            return Addition(data[1], data[2])
        if kind == "del":
            return Deletion(data[1])
    except (TypeError, IndexError) as exc:
        raise SerializationError(f"malformed update encoding {data!r}") from exc
    raise SerializationError(f"unknown update kind {data!r}")


def form_fingerprint(guarded_form: GuardedForm) -> str:
    """A stable digest of a guarded form's full definition.

    Persistent stores record it on first use and refuse to attach to a
    different form: interned shapes, guard values and checkpoints are only
    meaningful for the exact form that produced them.
    """
    canonical = json.dumps(guarded_form_to_dict(guarded_form), sort_keys=True, **_JSON_COMPACT)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
