"""ASCII rendering of trees, rule tables and result tables.

The paper's three figures are tree drawings (the leave-application schema and
instances, and a canonical-instance example); :func:`render_schema` and
:func:`render_instance` regenerate them as indented ASCII trees, which is what
the quickstart example and the Figure benchmarks print.  :func:`render_table1`
prints the paper's Table 1 (from :data:`repro.core.fragments.TABLE1`) and
:func:`render_table` is a small generic column formatter used by the benchmark
harness for its "paper vs. measured" reports.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.access import RuleTable
from repro.core.fragments import table1_rows
from repro.core.schema import format_schema_path
from repro.core.tree import LabelledTree, Node


def render_tree(tree: LabelledTree, title: str = "") -> str:
    """Indented ASCII drawing of a rooted node-labelled tree."""
    lines: list[str] = []
    if title:
        lines.append(title)

    def draw(node: Node, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(node.label)
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + node.label)
        child_prefix = prefix if is_root else prefix + ("    " if is_last else "|   ")
        children = node.children
        for index, child in enumerate(children):
            draw(child, child_prefix, index == len(children) - 1, False)

    draw(tree.root, "", True, True)
    return "\n".join(lines)


def render_schema(schema: LabelledTree, title: str = "Schema") -> str:
    """ASCII rendering of a schema (regenerates Figure 1 for the catalogue's
    leave application)."""
    return render_tree(schema, title)


def render_instance(instance: LabelledTree, title: str = "Instance") -> str:
    """ASCII rendering of an instance (regenerates Figure 2 / Figure 3)."""
    return render_tree(instance, title)


def render_rule_table(rules: RuleTable, title: str = "Access rules") -> str:
    """Tabular rendering of an access-rule table (Example 3.12 style)."""
    rows = []
    for right, path, formula in rules.items():
        rows.append((f"A({right}, {format_schema_path(path)})", formula.to_text()))
    return render_table(["rule", "formula"], rows, title=title)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in materialised)
    return "\n".join(lines)


def render_table1() -> str:
    """The paper's Table 1 (complexity of the two decision problems)."""
    rows = []
    for fragment, entry in table1_rows():
        completability = entry.completability + (" (open)" if entry.completability_open else "")
        semisoundness = entry.semisoundness + (" (open)" if entry.semisoundness_open else "")
        rows.append((fragment.name, completability, semisoundness))
    return render_table(
        ["Fragment", "Completability", "Semi-Soundness"],
        rows,
        title="Table 1: Summary of the complexity results",
    )
