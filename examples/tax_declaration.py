#!/usr/bin/env python3
"""E-government scenario: a tax declaration processed by two parties.

The paper's introduction motivates guarded forms with e-government forms such
as tax declarations, where "various parts of the e-form may only be completed
by certain persons and then only depending on information that has already
been entered".  This example models that scenario:

* the citizen enters income data and lodges the declaration;
* the administration either accepts it directly or opens an audit (which must
  record a finding) before issuing the assessment notice;
* the declaration is closed once the notice exists.

The script registers the form with the fb-wis engine (which verifies the
implied workflow automatically), replays both processing paths through
editing sessions, and uses invariant queries to certify ordering properties
of the workflow.

Run with:  python examples/tax_declaration.py
"""

from repro import (
    ExplorationLimits,
    FormEngine,
    FormPolicy,
    always_holds,
    can_reach,
    render_schema,
    tax_declaration,
)

LIMITS = ExplorationLimits(max_states=40_000, max_instance_nodes=30)


def register_form(engine: FormEngine) -> None:
    registration = engine.register("tax-declaration", tax_declaration())
    print(render_schema(registration.guarded_form.schema, "Tax declaration schema"))
    print()
    print("registration analysis:")
    print(f"  completability : {registration.completability.describe()}")
    print(f"  semi-soundness : {registration.semisoundness.describe()}")
    print()


def direct_acceptance_path(engine: FormEngine) -> None:
    print("== path 1: declaration accepted directly ==")
    _, session = engine.open_session("tax-declaration", actor="citizen")
    for actor, parent, label in [
        ("citizen", "", "income"),
        ("citizen", "income", "salary"),
        ("citizen", "", "lodged"),
        ("tax office", "", "assessment"),
        ("tax office", "assessment", "accept"),
        ("tax office", "", "notice"),
        ("tax office", "", "closed"),
    ]:
        session.add_field(parent, label, actor=actor)
    print("  " + session.summary())
    for entry in session.audit_trail():
        print(f"    {entry.step:2d}. [{entry.actor}] {entry.description}")
    print()


def audit_path(engine: FormEngine) -> None:
    print("== path 2: declaration with deductions triggers an audit ==")
    _, session = engine.open_session("tax-declaration", actor="citizen")
    for actor, parent, label in [
        ("citizen", "", "income"),
        ("citizen", "income", "salary"),
        ("citizen", "income", "deduction"),
        ("citizen", "income/deduction", "receipt"),
        ("citizen", "", "lodged"),
        ("tax office", "", "assessment"),
        ("tax office", "assessment", "audit"),
        ("auditor", "assessment/audit", "finding"),
        ("tax office", "", "notice"),
        ("tax office", "", "closed"),
    ]:
        session.add_field(parent, label, actor=actor)
    print("  " + session.summary())
    print(f"  complete: {session.is_complete()}")
    print()


def certify_workflow_properties() -> None:
    print("== workflow invariants (checked via completability queries) ==")
    form = tax_declaration()
    checks = [
        ("a notice always follows a completed assessment",
         always_holds(form, "¬notice ∨ assessment[accept ∨ audit[finding]]", limits=LIMITS)),
        ("the declaration is never assessed before lodgement",
         always_holds(form, "¬assessment ∨ lodged", limits=LIMITS)),
        ("income data is frozen after lodgement (deductions need receipts)",
         always_holds(form, "¬lodged ∨ ¬income/deduction[¬receipt]", limits=LIMITS)),
        ("an audit without a finding can occur transiently",
         can_reach(form, "assessment[audit[¬finding]]", limits=LIMITS)),
        ("but the declaration can never be closed in that state",
         always_holds(form, "¬closed ∨ ¬assessment[audit[¬finding]]", limits=LIMITS)),
    ]
    for description, result in checks:
        print(f"  {description:62s} -> {result.answer}")
    print()


def main() -> None:
    engine = FormEngine(policy=FormPolicy.STRICT, limits=LIMITS)
    register_form(engine)
    direct_acceptance_path(engine)
    audit_path(engine)
    certify_workflow_properties()


if __name__ == "__main__":
    main()
