#!/usr/bin/env python3
"""A guided tour of the paper's formal machinery (Section 3).

This example is aimed at readers of the paper who want to see each definition
as executable code:

* Definition 3.1 — schemas, instances and the homomorphism between them
  (Proposition 3.3: it is unique);
* Definitions 3.4/3.5 — the formula language and its semantics, including the
  three example formulas of Example 3.6;
* Definitions 3.7/3.8 — formula equivalence and canonical instances
  (Figure 3);
* Definition 3.11 — guarded forms, allowed updates and runs;
* Section 3.5 — the fragments F(A, φ, d) and the paper's Table 1.

Run with:  python examples/formalism_tour.py
"""

from repro import (
    Instance,
    Schema,
    canonical_instance,
    classify,
    leave_application,
    lookup_complexity,
    parse_formula,
    render_instance,
    render_table1,
)
from repro.core.equivalence import are_formula_equivalent
from repro.core.formulas.normalize import to_single_step_form
from repro.core.formulas.semantics import evaluate
from repro.core.homomorphism import find_homomorphism
from repro.core.runs import greedy_random_run


def schemas_and_instances() -> None:
    print("== Definition 3.1: schemas, instances, homomorphisms ==")
    schema = Schema.from_dict(
        {"a": {"n": {}, "d": {}, "p": {"b": {}, "e": {}}}, "s": {}, "d": {"a": {}, "r": {"r": {}}}, "f": {}}
    )
    instance = Instance.from_paths(schema, ["a/n", "a/d", "a/p/b", "a/p/e", "s"])
    print(f"  schema: {schema.size() - 1} fields, depth {schema.depth()}")
    print(f"  instance: {instance.size() - 1} fields")
    homomorphism = find_homomorphism(instance, schema)
    begin = instance.find_path("a/p/b")
    print(f"  the unique homomorphism maps the b-node to schema path "
          f"{'/'.join(homomorphism[begin.node_id])}")
    print()


def formulas_and_semantics() -> None:
    print("== Definitions 3.4/3.5 and Example 3.6: formulas ==")
    schema = leave_application().schema
    complete = Instance.from_paths(schema, ["a/n", "a/d", "a/p/b", "a/p/e", "s", "d/r", "f"])
    partial = Instance.from_paths(schema, ["a/n", "a/p/b", "f"])
    examples = [
        ("¬a/p[¬b ∨ ¬e]", "all periods have begin and end dates"),
        ("¬f ∨ d[a ∨ r]", "the application cannot be final unless decided"),
        ("d[¬(a ∧ r)]", "a decision is not both approved and rejected"),
    ]
    for text, gloss in examples:
        formula = parse_formula(text)
        print(f"  {text:18s} ({gloss})")
        print(f"      on a decided form : {evaluate(complete.root, formula)}")
        print(f"      on a partial form : {evaluate(partial.root, formula)}")
        print(f"      Lemma 4.4 normal form: {to_single_step_form(formula).to_text()}")
    print()


def canonical_instances() -> None:
    print("== Definitions 3.7/3.8 and Figure 3: canonical instances ==")
    schema = leave_application().schema
    instance = Instance.empty(schema)
    application = instance.add_field(instance.root, "a")
    for _ in range(3):  # three identical periods
        period = instance.add_field(application, "p")
        instance.add_field(period, "b")
        instance.add_field(period, "e")
    print(render_instance(instance, "  an instance with three identical periods").replace("\n", "\n  "))
    canonical = canonical_instance(instance)
    print(render_instance(canonical, "  its canonical instance").replace("\n", "\n  "))
    print(f"  formula equivalent to the original? {are_formula_equivalent(instance, canonical)}")
    print()


def guarded_forms_and_runs() -> None:
    print("== Definition 3.11: guarded forms and runs ==")
    form = leave_application(single_period=True)
    run = greedy_random_run(form, max_steps=12, seed=42)
    print(f"  a random run of {len(run)} allowed updates:")
    for step in run.describe():
        print(f"    - {step}")
    print(f"  final instance complete? {form.is_complete(run.final_instance())}")
    print()


def fragments_and_table1() -> None:
    print("== Section 3.5: fragments and Table 1 ==")
    form = leave_application(single_period=True)
    fragment = classify(form)
    entry = lookup_complexity(fragment)
    print(f"  the leave application lies in {fragment.name}")
    print(f"    completability is {entry.completability}, semi-soundness is {entry.semisoundness}")
    print()
    print(render_table1())
    print()


def main() -> None:
    schemas_and_instances()
    formulas_and_semantics()
    canonical_instances()
    guarded_forms_and_runs()
    fragments_and_table1()


if __name__ == "__main__":
    main()
