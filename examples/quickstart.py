#!/usr/bin/env python3
"""Quickstart: the paper's leave application from definition to analysis.

This example reproduces the running example of the paper end to end:

1. the schema of Figure 1 and the access rules of Example 3.12;
2. the two instances of Figure 2;
3. an interactive editing session that walks the implied workflow
   (staff fills the form, submits, a manager decides, the form is finalised);
4. the automatic analysis — completability and semi-soundness — for the
   correct form and for the two incorrect variants discussed in Section 3.5;
5. the fb-wis engine rejecting the incorrect variants at registration time.

Run with:  python examples/quickstart.py
"""

from repro import (
    ExplorationLimits,
    FormEngine,
    FormPolicy,
    decide_completability,
    decide_semisoundness,
    leave_application,
    leave_application_incompletable,
    leave_application_not_semisound,
    render_instance,
    render_rule_table,
    render_schema,
)
from repro.exceptions import EngineError
from repro.fbwis.session import FormSession

LIMITS = ExplorationLimits(max_states=40_000, max_instance_nodes=30)


def show_figures() -> None:
    """Print Figure 1 (the schema) and Figure 2 (two instances)."""
    form = leave_application()
    print(render_schema(form.schema, "Figure 1 — the leave application schema"))
    print()

    submitted = form.initial_instance()
    application = submitted.add_field(submitted.root, "a")
    submitted.add_field(application, "n")
    submitted.add_field(application, "d")
    for _ in range(2):  # two periods, as in Figure 2(a)
        period = submitted.add_field(application, "p")
        submitted.add_field(period, "b")
        submitted.add_field(period, "e")
    submitted.add_field(submitted.root, "s")
    print(render_instance(submitted, "Figure 2(a) — a submitted two-period application"))
    print()

    rejected = leave_application().initial_instance()
    app = rejected.add_field(rejected.root, "a")
    rejected.add_field(app, "n")
    rejected.add_field(app, "d")
    p = rejected.add_field(app, "p")
    rejected.add_field(p, "b")
    rejected.add_field(p, "e")
    rejected.add_field(rejected.root, "s")
    decision = rejected.add_field(rejected.root, "d")
    rejected.add_field(decision, "r")
    rejected.add_field(rejected.root, "f")
    print(render_instance(rejected, "Figure 2(b) — a rejected, finalised application"))
    print()


def show_rules() -> None:
    """Print the access rules of Example 3.12."""
    form = leave_application()
    print(render_rule_table(form.rules, title="Example 3.12 — access rules"))
    print(f"\ncompletion formula: {form.completion.to_text()}")
    print()


def walk_the_workflow() -> None:
    """Drive the implied workflow through a user-facing editing session."""
    print("== walking the implied workflow ==")
    session = FormSession(leave_application(single_period=True), actor="staff")
    steps = [
        ("staff", "", "a"), ("staff", "a", "n"), ("staff", "a", "d"),
        ("staff", "a", "p"), ("staff", "a/p", "b"), ("staff", "a/p", "e"),
        ("staff", "", "s"),
        ("manager", "", "d"), ("manager", "d", "a"), ("manager", "", "f"),
    ]
    for actor, parent, label in steps:
        session.add_field(parent, label, actor=actor)
        print(f"  {actor:8s} {session.audit_trail()[-1].description:22s} "
              f"-> permitted next: {len(session.permitted_updates())} updates")
    print(f"  form complete? {session.is_complete()}")
    print()


def analyse_everything() -> None:
    """Run the paper's two analyses on the correct and incorrect variants."""
    print("== analysis (Definitions 3.13 / 3.14) ==")
    variants = [
        ("leave application (Example 3.12)", leave_application(single_period=True)),
        ("completion f ∧ ¬s (Section 3.5)", leave_application_incompletable(single_period=True)),
        ("weakened rules (Section 3.5)", leave_application_not_semisound(single_period=True)),
    ]
    for name, form in variants:
        completability = decide_completability(form, limits=LIMITS)
        semisoundness = decide_semisoundness(form, limits=LIMITS)
        print(f"  {name:38s} completable={completability.answer!s:5s} "
              f"semi-sound={semisoundness.answer}")
        if semisoundness.answer is False and semisoundness.counterexample is not None:
            fields = sorted(
                "/".join(node.label_path())
                for node in semisoundness.counterexample.nodes()
                if not node.is_root()
            )
            print(f"      stuck reachable instance: {{{', '.join(fields)}}}")
    print()


def engine_rejects_incorrect_forms() -> None:
    """The fb-wis registers correct forms and rejects incorrect ones."""
    print("== fb-wis registration policy ==")
    engine = FormEngine(policy=FormPolicy.STRICT, limits=LIMITS)
    engine.register("leave", leave_application(single_period=True))
    print("  'leave' registered (completable and semi-sound)")
    for name, form in [
        ("leave-incompletable", leave_application_incompletable(single_period=True)),
        ("leave-not-semisound", leave_application_not_semisound(single_period=True)),
    ]:
        try:
            engine.register(name, form)
        except EngineError as error:
            print(f"  {name!r} rejected: {error}")
    print()


def main() -> None:
    show_figures()
    show_rules()
    walk_the_workflow()
    analyse_everything()
    engine_rejects_incorrect_forms()


if __name__ == "__main__":
    main()
