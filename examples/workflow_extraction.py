#!/usr/bin/env python3
"""Extracting and inspecting the workflow implied by access rules.

The paper's key observation is that instance-dependent access rules *imply* a
workflow.  This example makes that workflow explicit for the purchase-order
form of the catalogue:

* the reachable states and allowed transitions are extracted into a labelled
  transition system;
* the workflow is analysed for semi-soundness, soundness, deadlocks and dead
  transitions (the classical notions footnote 1 of the paper refers to);
* the depth-1 SAT-reduction form is additionally translated into a classical
  workflow net to show how the paper's semi-soundness corresponds to the
  "option to complete" condition of workflow-net soundness;
* the extracted workflow is exported to Graphviz DOT (written next to this
  script) for visual inspection.

Run with:  python examples/workflow_extraction.py
"""

from pathlib import Path

from repro import ExplorationLimits, purchase_order
from repro.io.dot import lts_to_dot
from repro.logic.propositional import CnfFormula
from repro.reductions.sat_reductions import sat_to_completability
from repro.workflow.extraction import extract_workflow
from repro.workflow.petri import depth1_form_to_workflow_net
from repro.workflow.soundness import analyse_workflow

LIMITS = ExplorationLimits(max_states=40_000, max_instance_nodes=30)
OUTPUT_DIR = Path(__file__).resolve().parent


def extract_purchase_order_workflow() -> None:
    form = purchase_order()
    print(f"== workflow implied by {form.name!r} ==")
    lts = extract_workflow(form, limits=LIMITS)
    report = analyse_workflow(lts)
    print(f"  states               : {len(lts)}")
    print(f"  transitions          : {len(lts.transitions)}")
    print(f"  complete (accepting) : {len(lts.accepting)}")
    print(f"  diagnostics          : {report.summary()}")
    print()

    print("  a shortest complete trace:")
    target = sorted(lts.accepting, key=lambda state: len(lts.trace_to(state) or []))[0]
    for action in lts.trace_to(target) or []:
        print(f"    - {action}")
    print()

    dot_path = OUTPUT_DIR / "purchase_order_workflow.dot"
    dot_path.write_text(lts_to_dot(lts, "purchase_order"), encoding="utf-8")
    print(f"  DOT export written to {dot_path}")
    print("  (render with: dot -Tpdf purchase_order_workflow.dot -o workflow.pdf)")
    print()


def relate_to_workflow_nets() -> None:
    print("== relation to classical workflow nets (footnote 1) ==")
    # a small depth-1 guarded form (Theorem 5.1's reduction applied to a tiny
    # CNF) translated into a workflow net
    cnf = CnfFormula.from_ints([[1, 2], [-1, 2]])
    form = sat_to_completability(cnf)
    net = depth1_form_to_workflow_net(form)
    report = net.soundness_report()
    print(f"  guarded form: {form.name}")
    print(f"  places={len(net.places)}, transitions={len(net.transitions)}")
    for key, value in report.items():
        print(f"    {key:22s}: {value}")
    print("  (the 'option to complete' condition is exactly the paper's")
    print("   semi-soundness; dead transitions are allowed by semi-soundness")
    print("   but not by full soundness)")
    print()


def main() -> None:
    extract_purchase_order_workflow()
    relate_to_workflow_nets()


if __name__ == "__main__":
    main()
